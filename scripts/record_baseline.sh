#!/usr/bin/env bash
# Regenerates BENCH_baseline.json: runs the criterion benches with JSON
# output enabled, then merges them (computing serial-vs-parallel speedups)
# with the `baseline` bin.
set -euo pipefail
cd "$(dirname "$0")/.."

# Absolute path: cargo runs bench binaries with the package dir as cwd.
export CRITERION_JSON_DIR="$PWD/target/criterion-json"
rm -rf "$CRITERION_JSON_DIR"

cargo bench --bench substrate
cargo bench --bench pipeline
cargo bench --bench ablation

cargo run --release -p deepmorph-bench --bin baseline -- "$CRITERION_JSON_DIR" BENCH_baseline.json
