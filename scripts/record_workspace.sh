#!/usr/bin/env bash
# Regenerates BENCH_workspace.json: runs the criterion benches and records
# the steady-state (workspace-arena) medians plus their speedups versus the
# committed BENCH_baseline.json (the PR 1 allocate-per-call kernels).
set -euo pipefail
cd "$(dirname "$0")/.."

export CRITERION_JSON_DIR="$PWD/target/criterion-json-workspace"
rm -rf "$CRITERION_JSON_DIR"

# Every id the workspace report compares lives in the substrate bench;
# keeping the timed window short makes the record robust against the
# bursty host-level contention of the shared build machines.
cargo bench --bench substrate

cargo run --release -p deepmorph-bench --bin bench_compare -- \
  "$CRITERION_JSON_DIR" BENCH_baseline.json --write BENCH_workspace.json \
  --threshold "${BENCH_THRESHOLD:-0.15}"
