#!/usr/bin/env bash
# Runs the criterion benches and fails (exit 1) if any bench id regresses
# more than 15% (median) against the committed BENCH_baseline.json.
# Used by the CI bench-smoke job.
#
# Shared runners have bursty host contention that can inflate a median
# several-fold, so a failing comparison is retried with a fresh bench run
# (BENCH_RETRIES attempts, default 3): a genuine regression fails every
# run, while a contention spike passes on retry.
set -euo pipefail
cd "$(dirname "$0")/.."

export CRITERION_JSON_DIR="${CRITERION_JSON_DIR:-$PWD/target/criterion-json}"

run_once() {
  rm -rf "$CRITERION_JSON_DIR"
  cargo bench --bench substrate
  cargo bench --bench pipeline
  cargo bench --bench ablation
  cargo run --release -p deepmorph-bench --bin bench_compare -- \
    "$CRITERION_JSON_DIR" BENCH_baseline.json --threshold "${BENCH_THRESHOLD:-0.15}"
}

attempts="${BENCH_RETRIES:-3}"
for i in $(seq 1 "$attempts"); do
  if run_once; then
    exit 0
  fi
  echo "bench compare attempt $i/$attempts failed (possible host contention)" >&2
  sleep 10
done
echo "bench compare failed on all $attempts attempts — treating as a real regression" >&2
exit 1
