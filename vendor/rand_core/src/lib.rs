//! Minimal offline stand-in for the `rand_core` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! external RNG crates are vendored as API-compatible shims covering exactly
//! the surface the workspace uses. Only determinism and statistical sanity
//! are promised — the byte streams do **not** match upstream `rand_core`.

/// A source of random `u32`/`u64` values.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// An RNG constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed byte array type (e.g. `[u8; 32]`).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64`, expanded with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u32);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.0 = self.0.wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn next_u64_combines_two_u32() {
        let mut c = Counter(0);
        assert_eq!(c.next_u64(), (1u64 << 32) | 2);
    }

    #[test]
    fn fill_bytes_handles_remainder() {
        let mut c = Counter(0);
        let mut buf = [0u8; 7];
        c.fill_bytes(&mut buf);
        assert_eq!(&buf[..4], &1u32.to_le_bytes());
        assert_eq!(&buf[4..], &2u32.to_le_bytes()[..3]);
    }
}
