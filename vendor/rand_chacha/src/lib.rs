//! Offline-vendored ChaCha8 RNG.
//!
//! Implements the real ChaCha8 block function (RFC 8439 state layout, 8
//! rounds), seeded through [`rand_core::SeedableRng`]. Deterministic across
//! platforms; the stream does not match upstream `rand_chacha` (which uses a
//! different word order for output), but nothing in this workspace depends
//! on upstream byte streams — only on determinism.

pub use rand_core;

use rand_core::{RngCore, SeedableRng};

/// A ChaCha stream cipher RNG with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    buf: [u32; 16],
    /// Next unread word in `buf` (16 ⇒ exhausted).
    idx: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // One double round: 4 column + 4 diagonal quarter rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.buf.iter_mut().zip(working.iter().zip(&self.state)) {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12–13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.idx = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let v = self.buf[self.idx];
        self.idx += 1;
        v
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(99);
        let mut b = ChaCha8Rng::seed_from_u64(99);
        let mut c = ChaCha8Rng::seed_from_u64(100);
        let xs: Vec<u32> = (0..40).map(|_| a.next_u32()).collect();
        let ys: Vec<u32> = (0..40).map(|_| b.next_u32()).collect();
        let zs: Vec<u32> = (0..40).map(|_| c.next_u32()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn stream_crosses_block_boundaries() {
        // 40 words > one 16-word block, so refill and the counter both run.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn clone_continues_identically() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..10 {
            rng.next_u32();
        }
        let mut fork = rng.clone();
        assert_eq!(
            (0..20).map(|_| rng.next_u32()).collect::<Vec<_>>(),
            (0..20).map(|_| fork.next_u32()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn output_is_roughly_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let ones: u32 = (0..2048).map(|_| rng.next_u32().count_ones()).sum();
        let total = 2048 * 32;
        let ratio = f64::from(ones) / f64::from(total);
        assert!((0.48..0.52).contains(&ratio), "bit ratio {ratio}");
    }
}
