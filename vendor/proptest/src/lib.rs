//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro, numeric-range / tuple / [`Just`](strategy::Just) / `prop_oneof!`
//! strategies, `prop_map` / `prop_flat_map`, [`collection::vec`], and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! generated inputs' debug output unavailable — the assertion message plus
//! the deterministic per-test seed make failures reproducible), and value
//! streams do not match upstream. Case generation is seeded from the test
//! function name (override with `PROPTEST_SEED`), so runs are reproducible
//! across machines and CI.

pub mod test_runner {
    //! Runner plumbing used by the [`proptest!`](crate::proptest) macro.

    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// RNG handed to strategies during generation.
    pub struct TestRng(pub ChaCha8Rng);

    impl TestRng {
        /// Deterministic RNG for a named test, honoring `PROPTEST_SEED`.
        pub fn for_test(test_name: &str) -> Self {
            let base = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0xBEEF_CAFE);
            // FNV-1a over the test name so each test gets its own stream.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(ChaCha8Rng::seed_from_u64(base ^ h))
        }
    }

    /// Why a generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed — retry with a fresh case.
        Reject(String),
        /// `prop_assert*` failed — the property is violated.
        Fail(String),
    }

    /// Per-`proptest!`-block configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of passing cases required.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<T: Strategy, F: Fn(Self::Value) -> T>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, f }
        }

        /// Erases the strategy type (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A heap-allocated, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// Uniformly picks one of several strategies per case (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.0.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E)(
        A, B, C, D, E, F
    ));
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A vector length: fixed or sampled from a range.
    #[derive(Clone)]
    pub enum SizeRange {
        /// Exactly this many elements.
        Fixed(usize),
        /// Uniform in `[start, end)`.
        Range(usize, usize),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Fixed(n)
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange::Range(r.start, r.end)
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            SizeRange::Range(lo, hi + 1)
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = match self.size {
                SizeRange::Fixed(n) => n,
                SizeRange::Range(lo, hi) => rng.0.gen_range(lo..hi),
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! The glob import used by test files.
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests. See the crate docs for supported forms.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal: expands each `fn` item inside [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).max(1000);
            while passed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest {}: too many rejected cases ({} attempts, {} passed)",
                    stringify!($name),
                    attempts,
                    passed
                );
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name),
                            passed,
                            msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{:?}` == `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(lhs == rhs, $($fmt)*);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(lhs != rhs, "assertion failed: `{:?}` != `{:?}`", lhs, rhs);
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniformly picks one of several same-valued strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -1.0f32..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn vec_and_tuple_strategies_compose(
            v in crate::collection::vec((0usize..4, 0.0f32..1.0), 1..6),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            for (i, f) in v {
                prop_assert!(i < 4 && (0.0..1.0).contains(&f));
            }
        }

        #[test]
        fn oneof_and_maps_compose(
            x in prop_oneof![Just(1usize), Just(2), Just(3)],
            y in (1usize..4).prop_flat_map(|n| crate::collection::vec(0usize..10, n)),
        ) {
            prop_assert!((1..=3).contains(&x));
            prop_assert!((1..4).contains(&y.len()));
        }
    }

    #[test]
    fn deterministic_given_same_name_seed() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        let s = 0usize..1000;
        let xs: Vec<usize> = (0..16).map(|_| s.generate(&mut a)).collect();
        let ys: Vec<usize> = (0..16).map(|_| s.generate(&mut b)).collect();
        assert_eq!(xs, ys);
    }
}
