//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Supports the subset this workspace's benches use: `criterion_group!` /
//! `criterion_main!`, [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and `sample_size`.
//!
//! Harness behavior:
//!
//! * `cargo bench -- --test` runs every routine exactly once (compile +
//!   smoke), which is what the CI bench-smoke job uses.
//! * Any other non-flag argument is a substring filter on bench ids.
//! * When `CRITERION_JSON_DIR` is set, each bench binary writes
//!   `<dir>/<binary>.json` with per-bench median/mean nanoseconds — the
//!   input for `BENCH_baseline.json`.

use std::io::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One measured benchmark, collected for the JSON report.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Full bench id (`group/name` or the literal id).
    pub id: String,
    /// Median per-iteration time in nanoseconds.
    pub median_ns: f64,
    /// Mean per-iteration time in nanoseconds.
    pub mean_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

static RECORDS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// How `iter_batched` amortizes setup cost. The shim always re-runs setup
/// per iteration (i.e. `PerIteration` semantics), which is correct for every
/// variant, just slower to measure than upstream for `SmallInput`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// Fresh setup for every iteration.
    PerIteration,
}

/// Passed to bench closures; runs and times the routine.
pub struct Bencher<'a> {
    criterion: &'a Criterion,
    id: String,
}

impl Bencher<'_> {
    /// Times `routine` with no per-iteration setup.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.run(|| {
            black_box(routine());
        });
    }

    /// Times `routine` over inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.criterion.test_mode {
            black_box(routine(setup()));
            return;
        }
        // Time each call individually so setup stays untimed.
        let mut time_one = || {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            start.elapsed()
        };
        // Warmup.
        time_one();
        let samples = self.criterion.sample_size.max(2);
        let mut times: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            times.push(time_one().as_nanos() as f64);
        }
        self.finish_sampling(times, 1);
    }

    fn run(&mut self, mut routine: impl FnMut()) {
        if self.criterion.test_mode {
            routine();
            return;
        }
        // Estimate the per-iteration cost from one warmup call, then pick
        // an iteration count giving ≥2ms per sample.
        let start = Instant::now();
        routine();
        let est = start.elapsed().max(Duration::from_nanos(20));
        let target = Duration::from_millis(2);
        let iters: u64 = (target.as_nanos() / est.as_nanos()).clamp(1, 1_000_000) as u64;
        let samples = self.criterion.sample_size.max(2);
        let mut times: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters {
                routine();
            }
            times.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.finish_sampling(times, iters);
    }

    fn finish_sampling(&self, mut times: Vec<f64>, iters: u64) {
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        println!(
            "{:<48} time: [median {} mean {}] ({} samples x {} iters)",
            self.id,
            fmt_ns(median),
            fmt_ns(mean),
            times.len(),
            iters
        );
        RECORDS.lock().expect("records lock").push(BenchRecord {
            id: self.id.clone(),
            median_ns: median,
            mean_ns: mean,
            samples: times.len(),
            iters_per_sample: iters,
        });
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filters = Vec::new();
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                test_mode = true;
            } else if !arg.starts_with('-') {
                filters.push(arg);
            }
            // Other flags (--bench, --nocapture, …) are accepted and ignored.
        }
        Criterion {
            sample_size: 20,
            test_mode,
            filters,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per bench.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: impl Into<String>, mut f: F) {
        let id = id.into();
        if !self.matches(&id) {
            return;
        }
        if self.test_mode {
            println!("Testing {id} ... ");
        }
        let mut b = Bencher {
            criterion: self,
            id,
        };
        f(&mut b);
        if self.test_mode {
            println!("ok");
        }
    }

    /// Starts a named group; bench ids become `group/name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing an id prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: impl Into<String>, f: F) {
        let id = format!("{}/{}", self.name, id.into());
        self.criterion.bench_function(id, f);
    }

    /// Overrides the sample count for the rest of the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Writes collected records as JSON when `CRITERION_JSON_DIR` is set.
/// Called by `criterion_main!` — not intended for direct use.
#[doc(hidden)]
pub fn finalize() {
    let Ok(dir) = std::env::var("CRITERION_JSON_DIR") else {
        return;
    };
    let records = RECORDS.lock().expect("records lock");
    let binary = std::env::args()
        .next()
        .map(|p| {
            std::path::Path::new(&p)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| "bench".into())
        })
        .unwrap_or_else(|| "bench".into());
    // Strip the -<hash> suffix cargo appends to bench binaries.
    let name = match binary.rsplit_once('-') {
        Some((stem, hash)) if hash.len() == 16 && hash.chars().all(|c| c.is_ascii_hexdigit()) => {
            stem.to_string()
        }
        _ => binary,
    };
    let mut json = String::from("{\n  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"id\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}{}\n",
            r.id.replace('"', "'"),
            r.median_ns,
            r.mean_ns,
            r.samples,
            r.iters_per_sample,
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = std::path::Path::new(&dir).join(format!("{name}.json"));
        if let Ok(mut f) = std::fs::File::create(&path) {
            let _ = f.write_all(json.as_bytes());
            println!("wrote {}", path.display());
        }
    }
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group then writing the
/// optional JSON report.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_result() {
        let mut c = Criterion {
            sample_size: 3,
            test_mode: false,
            filters: vec![],
        };
        c.bench_function("shim/self_test", |b| b.iter(|| black_box(2u64 + 2)));
        let records = RECORDS.lock().unwrap();
        let r = records
            .iter()
            .find(|r| r.id == "shim/self_test")
            .expect("record present");
        assert!(r.median_ns > 0.0);
        assert_eq!(r.samples, 3);
    }

    #[test]
    fn filters_skip_nonmatching_ids() {
        let mut c = Criterion {
            sample_size: 2,
            test_mode: false,
            filters: vec!["only_this".into()],
        };
        let mut ran = false;
        c.bench_function("something_else", |_b| ran = true);
        assert!(!ran);
        c.bench_function("group/only_this_one", |_b| ran = true);
        assert!(ran);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            sample_size: 50,
            test_mode: true,
            filters: vec![],
        };
        let mut count = 0;
        c.bench_function("smoke", |b| b.iter(|| count += 1));
        assert_eq!(count, 1);
        let mut batched = 0;
        c.bench_function("smoke_batched", |b| {
            b.iter_batched(|| 1, |x| batched += x, BatchSize::SmallInput)
        });
        assert_eq!(batched, 1);
    }
}
