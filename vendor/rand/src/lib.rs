//! Minimal offline stand-in for the `rand` crate.
//!
//! Covers the surface this workspace uses: [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`seq::SliceRandom::shuffle`] / `choose`, and the
//! `RngCore`/`SeedableRng` re-exports. Value streams are deterministic per
//! RNG but do **not** match upstream `rand`.

pub use rand_core::{RngCore, SeedableRng};

pub mod distributions {
    //! Sampling traits mirroring `rand::distributions`.

    use crate::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Samples one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution for a type: uniform over all values for
    /// integers, uniform on `[0, 1)` for floats.
    pub struct Standard;

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Distribution<u8> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
            (rng.next_u32() >> 24) as u8
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            // 24 high bits → uniform on [0, 1).
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use distributions::{Distribution, Standard};

/// A type [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "gen_range: empty range");
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let unit: $t = Standard.sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// A range argument accepted by [`Rng::gen_range`].
///
/// Implemented generically over the element type (like upstream `rand`), so
/// type inference can flow from how the sampled value is used back into an
/// otherwise-unannotated range literal.
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_between(lo, hi, true, rng)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit: f64 = Standard.sample(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Slice sampling helpers mirroring `rand::seq`.

    use crate::{Rng, RngCore};

    /// Extension methods for slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly picks one element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    //! Common re-exports.
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);

    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (self.0 >> 32) as u32
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Lcg(42);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f32 = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut rng = Lcg(7);
        let mut max = 0.0f32;
        for _ in 0..1000 {
            let v: f32 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            max = max.max(v);
        }
        assert!(max > 0.9);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut rng = Lcg(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 50 elements left them in order");
    }
}
