//! Cross-crate substrate integration: every model family must train on
//! every compatible dataset through the real data pipeline, and the
//! instrumentation must work on all of them.

use deepmorph::instrument::{InstrumentedModel, ProbeTrainingConfig};
use deepmorph_data::DataGenerator;
use deepmorph_repro::prelude::*;
use deepmorph_tensor::init::stream_rng;

fn tiny_dataset(kind: DatasetKind, per_class: usize, seed: u64) -> deepmorph_data::Dataset {
    let mut rng = stream_rng(seed, "test-data");
    match kind {
        DatasetKind::Digits => SynthDigits::new().generate(per_class, &mut rng),
        DatasetKind::Objects => SynthObjects::new().generate(per_class, &mut rng),
    }
}

#[test]
fn every_family_trains_one_epoch_on_its_dataset() {
    for family in ModelFamily::all() {
        let kind = match family {
            ModelFamily::LeNet | ModelFamily::AlexNet => DatasetKind::Digits,
            _ => DatasetKind::Objects,
        };
        let data = tiny_dataset(kind, 8, 1);
        let spec = ModelSpec::new(
            family,
            ModelScale::Tiny,
            [kind.channels(), kind.side(), kind.side()],
            kind.num_classes(),
        );
        let mut rng = stream_rng(2, "test-model");
        let mut model = build_model(&spec, &mut rng).unwrap();
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 1,
            batch_size: 16,
            ..TrainConfig::default()
        });
        let report = trainer
            .fit(&mut model.graph, data.images(), data.labels(), &mut rng)
            .unwrap_or_else(|e| panic!("{family}: {e}"));
        assert!(report.final_loss().is_finite(), "{family} loss diverged");
    }
}

#[test]
fn instrumentation_works_for_every_family() {
    for family in ModelFamily::all() {
        let kind = match family {
            ModelFamily::LeNet | ModelFamily::AlexNet => DatasetKind::Digits,
            _ => DatasetKind::Objects,
        };
        let data = tiny_dataset(kind, 6, 3);
        let spec = ModelSpec::new(
            family,
            ModelScale::Tiny,
            [kind.channels(), kind.side(), kind.side()],
            kind.num_classes(),
        );
        let mut rng = stream_rng(4, "test-model");
        let model = build_model(&spec, &mut rng).unwrap();
        let probes = model.probes.len();
        let config = ProbeTrainingConfig {
            epochs: 2,
            ..Default::default()
        };
        let mut inst = InstrumentedModel::build(model, data.images(), data.labels(), 10, &config)
            .unwrap_or_else(|e| panic!("{family}: {e}"));
        let fps = inst.footprints(data.images()).unwrap();
        assert_eq!(fps.len(), data.len(), "{family}");
        assert_eq!(fps.depth(), probes, "{family}");
        // Every probe emits proper distributions for every case.
        for fp in fps.iter() {
            for l in 0..fp.depth() {
                let sum: f32 = fp.layer(l).iter().sum();
                assert!((sum - 1.0).abs() < 1e-3, "{family} layer {l} sums {sum}");
            }
        }
    }
}

#[test]
fn defect_injection_composes_with_training() {
    // Inject each defect kind and confirm the resulting dataset/model pair
    // still trains without errors.
    let data = tiny_dataset(DatasetKind::Digits, 10, 5);
    for defect in [
        DefectSpec::insufficient_training_data(vec![0], 0.9),
        DefectSpec::unreliable_training_data(1, 2, 0.5),
        DefectSpec::structure_defect(2),
    ] {
        let mut rng = stream_rng(6, "test-inject");
        let injected = defect.apply_to_dataset(&data, &mut rng).unwrap();
        let spec = defect.apply_to_model_spec(ModelSpec::new(
            ModelFamily::LeNet,
            ModelScale::Tiny,
            [1, 16, 16],
            10,
        ));
        let mut model_rng = stream_rng(7, "test-model");
        let mut model = build_model(&spec, &mut model_rng).unwrap();
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 1,
            batch_size: 16,
            ..TrainConfig::default()
        });
        trainer
            .fit(
                &mut model.graph,
                injected.images(),
                injected.labels(),
                &mut model_rng,
            )
            .unwrap_or_else(|e| panic!("{defect}: {e}"));
    }
}

#[test]
fn generated_datasets_are_learnable_by_probes_alone() {
    // Sanity link between data and instrumentation: a probe fitted on raw
    // (GAP-free) flattened logits of an untrained LeNet should beat chance
    // on digits — the datasets carry linear signal.
    let data = tiny_dataset(DatasetKind::Digits, 20, 8);
    let spec = ModelSpec::new(ModelFamily::LeNet, ModelScale::Tiny, [1, 16, 16], 10);
    let mut rng = stream_rng(9, "test-model");
    let model = build_model(&spec, &mut rng).unwrap();
    let mut inst = InstrumentedModel::build(
        model,
        data.images(),
        data.labels(),
        10,
        &ProbeTrainingConfig::default(),
    )
    .unwrap();
    let accs = inst.probe_accuracies();
    assert!(
        accs.iter().any(|&a| a > 0.3),
        "probe accuracies {accs:?} all near chance"
    );
    let _ = inst.footprints(data.images()).unwrap();
}
