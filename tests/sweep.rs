//! Acceptance tests for the staged scenario engine and the concurrent
//! sweep runner: a severity sweep must train the shared base stages once
//! (proven by store counters), run cells concurrently, and produce
//! per-cell reports bitwise identical to running each scenario alone,
//! serially, with no store at all.

use deepmorph_repro::prelude::*;

fn sweep_base() -> ScenarioBuilder {
    Scenario::builder(ModelFamily::LeNet, DatasetKind::Digits)
        .seed(31)
        .train_per_class(30)
        .test_per_class(10)
        .train_config(TrainConfig {
            epochs: 3,
            batch_size: 32,
            learning_rate: 0.05,
            lr_decay: 0.9,
            ..TrainConfig::default()
        })
}

const FRACTIONS: [f32; 5] = [0.3, 0.45, 0.6, 0.75, 0.9];

fn severity_plan() -> ExperimentPlan {
    ExperimentPlan::from_defects(
        sweep_base(),
        FRACTIONS
            .iter()
            .map(|&f| DefectSpec::unreliable_training_data(3, 5, f)),
    )
    .expect("plan builds")
}

fn fresh_store(name: &str) -> ArtifactStore {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    ArtifactStore::open(dir).expect("store dir")
}

#[test]
fn five_point_severity_sweep_shares_base_and_matches_solo_runs() {
    let plan = severity_plan();
    let runner = SweepRunner::new(fresh_store("sweep-acceptance"));
    let cold = runner.run(&plan);

    // --- base-training sharing, proven by the store counters ----------
    // Cold sweep: the healthy twin (shared base) misses once and is then
    // hit by every cell; each cell misses stage 1, and each *diagnosed*
    // cell misses stages 2–4 as well. Nothing else touches the store.
    let succeeded = cold.succeeded() as u64;
    let cells = plan.len() as u64;
    assert!(succeeded >= 3, "sweep too mild to be meaningful: {cold:?}");
    assert_eq!(
        cold.store.hits, cells,
        "every cell must load (not retrain) the shared base: {}",
        cold.store
    );
    assert_eq!(
        cold.store.misses,
        1 + cells + 3 * succeeded,
        "one base training + per-cell cold stages: {}",
        cold.store
    );
    assert_eq!(cold.store.writes, cold.store.misses);

    // Every cell saw the same healthy baseline.
    let baselines: Vec<f32> = cold
        .cells
        .iter()
        .filter_map(|c| c.baseline_test_accuracy)
        .collect();
    assert_eq!(baselines.len(), plan.len());
    assert!(baselines.windows(2).all(|w| w[0] == w[1]));

    // --- bitwise identity with solo serial runs ------------------------
    // Each scenario run alone (disabled store, no sweep concurrency)
    // must produce the identical outcome, bit for bit.
    for (cell, scenario) in cold.cells.iter().zip(plan.cells()) {
        match (&cell.outcome, scenario.run()) {
            (Ok(from_sweep), Ok(solo)) => {
                assert_eq!(from_sweep.report, solo.report, "{}", cell.subject);
                assert_eq!(
                    from_sweep.test_accuracy.to_bits(),
                    solo.test_accuracy.to_bits()
                );
                assert_eq!(
                    from_sweep.train_accuracy.to_bits(),
                    solo.train_accuracy.to_bits()
                );
                assert_eq!(from_sweep.faulty_count, solo.faulty_count);
            }
            (Err(DeepMorphError::NoFaultyCases), Err(DeepMorphError::NoFaultyCases)) => {}
            (sweep_out, solo_out) => {
                panic!(
                    "sweep/solo disagree for {}: {sweep_out:?} vs {solo_out:?}",
                    cell.subject
                )
            }
        }
    }

    // --- warm rerun: pure cache, identical output ----------------------
    let warm = runner.run(&plan);
    assert_eq!(
        warm.store.misses, 0,
        "warm sweep recomputed: {}",
        warm.store
    );
    assert_eq!(
        warm.store.writes, 0,
        "warm sweep rewrote artifacts: {}",
        warm.store
    );
    assert_eq!(
        warm.cells, cold.cells,
        "cached cells diverged from computed cells"
    );
}

#[test]
fn engine_with_store_matches_ephemeral_engine() {
    // A single scenario driven stage-by-stage through a real store (cold,
    // then warm) must equal the plain `Scenario::run`.
    let scenario = sweep_base()
        .inject(DefectSpec::insufficient_training_data(vec![0, 1, 2], 0.98))
        .build()
        .unwrap();
    let plain = scenario.run().expect("plain run");

    let engine = StagedEngine::new(fresh_store("engine-vs-ephemeral"));
    let cold = engine.run(&scenario).expect("cold staged run");
    let warm = engine.run(&scenario).expect("warm staged run");
    assert_eq!(cold, plain);
    assert_eq!(warm, plain);

    let stats = engine.store().stats();
    assert_eq!(stats.misses, 4, "cold run misses each stage once: {stats}");
    assert_eq!(stats.hits, 4, "warm run loads each stage: {stats}");
}

#[test]
fn sweep_cells_are_schedule_independent() {
    // Running the same plan twice against independent stores must agree
    // exactly — per-cell seeding makes results independent of which
    // worker ran which cell in which order.
    let plan = ExperimentPlan::from_defects(
        sweep_base(),
        [0.5f32, 0.9].map(|f| DefectSpec::unreliable_training_data(3, 5, f)),
    )
    .unwrap();
    let a = SweepRunner::new(fresh_store("sweep-sched-a")).run(&plan);
    let b = SweepRunner::new(fresh_store("sweep-sched-b")).run(&plan);
    assert_eq!(a.cells, b.cells);
}

#[test]
fn repair_through_the_engine_matches_solo_repair() {
    let scenario = sweep_base()
        .inject(DefectSpec::insufficient_training_data(vec![0, 1, 2], 0.98))
        .build()
        .unwrap();
    let (solo_outcome, solo_repair) = scenario.run_with_repair().expect("solo repair");

    let plan = ExperimentPlan::new()
        .with_cell(scenario.clone())
        .with_repair(true)
        .with_baseline(false);
    let sweep = SweepRunner::new(fresh_store("sweep-repair")).run(&plan);
    let cell = &sweep.cells[0];
    let outcome = cell.outcome.as_ref().expect("cell diagnosed");
    let repair = cell.repair.as_ref().expect("cell repaired");
    assert_eq!(*outcome, solo_outcome);
    assert_eq!(*repair, solo_repair);
}
