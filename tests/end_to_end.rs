//! Cross-crate integration tests: the full generate → inject → train →
//! diagnose pipeline at reduced scale.
//!
//! These train real (tiny) models, so each test keeps its dataset small;
//! the statistically demanding sweeps live in the `table1` binary.

use deepmorph_repro::prelude::*;

fn fast_train_config() -> TrainConfig {
    TrainConfig {
        epochs: 6,
        batch_size: 32,
        learning_rate: 0.05,
        lr_decay: 0.9,
        ..TrainConfig::default()
    }
}

fn scenario(family: ModelFamily, dataset: DatasetKind, defect: DefectSpec) -> Scenario {
    Scenario::builder(family, dataset)
        .seed(7)
        .train_per_class(60)
        .test_per_class(20)
        .train_config(fast_train_config())
        .inject(defect)
        .build()
        .expect("valid scenario")
}

#[test]
fn healthy_lenet_reaches_good_accuracy() {
    let s = scenario(ModelFamily::LeNet, DatasetKind::Digits, DefectSpec::Healthy);
    match s.run() {
        Ok(outcome) => {
            assert!(
                outcome.test_accuracy > 0.8,
                "healthy LeNet accuracy {}",
                outcome.test_accuracy
            );
        }
        // A perfect model is an acceptable healthy outcome.
        Err(DeepMorphError::NoFaultyCases) => {}
        Err(e) => panic!("unexpected error: {e}"),
    }
}

#[test]
fn itd_injection_is_diagnosed_on_lenet() {
    let s = scenario(
        ModelFamily::LeNet,
        DatasetKind::Digits,
        DefectSpec::insufficient_training_data(vec![0, 1, 2], 0.98),
    );
    let outcome = s.run().expect("scenario runs");
    assert_eq!(
        outcome.report.dominant(),
        Some(DefectKind::InsufficientTrainingData),
        "report: {}",
        outcome.report
    );
    // The ITD injection leaves classes 0-2 nearly unlearned, so the faulty
    // cases should be dominated by those classes.
    let from_starved = outcome
        .report
        .cases
        .iter()
        .filter(|c| c.true_label <= 2)
        .count();
    assert!(from_starved * 2 > outcome.report.num_cases);
}

#[test]
fn utd_injection_is_diagnosed_on_lenet() {
    let s = scenario(
        ModelFamily::LeNet,
        DatasetKind::Digits,
        DefectSpec::unreliable_training_data(3, 5, 0.5),
    );
    let outcome = s.run().expect("scenario runs");
    assert_eq!(
        outcome.report.dominant(),
        Some(DefectKind::UnreliableTrainingData),
        "report: {}",
        outcome.report
    );
}

#[test]
fn sd_injection_is_diagnosed_on_lenet() {
    let s = scenario(
        ModelFamily::LeNet,
        DatasetKind::Digits,
        DefectSpec::structure_defect(6),
    );
    let outcome = s.run().expect("scenario runs");
    assert_eq!(
        outcome.report.dominant(),
        Some(DefectKind::StructureDefect),
        "report: {}",
        outcome.report
    );
    // A structure-defective model separates its own training data poorly.
    assert!(outcome.report.model_health < 0.9);
}

#[test]
fn ratios_always_form_a_distribution() {
    for defect in [
        DefectSpec::insufficient_training_data(vec![4], 0.95),
        DefectSpec::unreliable_training_data(1, 2, 0.5),
    ] {
        let s = scenario(ModelFamily::LeNet, DatasetKind::Digits, defect);
        if let Ok(outcome) = s.run() {
            let sum: f32 = outcome.report.ratios.as_array().iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-4,
                "ratios {:?}",
                outcome.report.ratios
            );
            assert_eq!(outcome.report.cases.len(), outcome.report.num_cases);
        }
    }
}

#[test]
fn reports_serialize_to_json() {
    let s = scenario(
        ModelFamily::LeNet,
        DatasetKind::Digits,
        DefectSpec::insufficient_training_data(vec![0, 1, 2], 0.98),
    );
    let outcome = s.run().expect("scenario runs");
    let json = outcome.report.to_json();
    assert!(json.contains("ratios"));
    let back = DefectReport::from_json(&json).expect("round trip");
    assert_eq!(back, outcome.report);
}

#[test]
fn scenario_is_deterministic_given_seed() {
    let make = || {
        scenario(
            ModelFamily::LeNet,
            DatasetKind::Digits,
            DefectSpec::insufficient_training_data(vec![0, 1, 2], 0.98),
        )
        .run()
        .expect("scenario runs")
    };
    let a = make();
    let b = make();
    assert_eq!(a.report.ratios.as_array(), b.report.ratios.as_array());
    assert_eq!(a.test_accuracy, b.test_accuracy);
}
