//! Allocation-regression guard for the workspace arena.
//!
//! The tensor workspace (`deepmorph_tensor::workspace`) promises a
//! zero-allocation steady state: once a hot loop has warmed the
//! thread-local arena, every kernel draws its buffers from free lists and
//! recycles them back. This test pins that contract with a counting global
//! allocator: after warm-up, a full conv forward+backward training step
//! and a dispatching matmul must perform **zero** heap allocations.
//!
//! The whole file is a single `#[test]` so no sibling test can allocate
//! concurrently; worker-pool threads only ever process borrowed chunks
//! (they never allocate), so the global counter is quiet during the
//! measured window on both feature configurations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use deepmorph_nn::prelude::*;
use deepmorph_telemetry::{Stage, TelemetryConfig, Trace, STAGE_COUNT};
use deepmorph_tensor::init::stream_rng;
use deepmorph_tensor::{workspace, Tensor};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System`, only adding a counter.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

/// Deterministic activations in `[-1, 1]`, never exactly zero (mirrors the
/// bench generator so the GEMM zero-skip branch stays cold).
fn synth_tensor(shape: &[usize], salt: u64) -> Tensor {
    let len: usize = shape.iter().product();
    let data: Vec<f32> = (0..len)
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(salt);
            ((h >> 40) as f32 / (1u64 << 24) as f32).mul_add(2.0, -1.0) + 1e-4
        })
        .collect();
    Tensor::from_vec(data, shape).unwrap()
}

/// One full conv training step (forward in train mode + backward),
/// recycling everything it retires — the shape a graph-driven step has.
fn conv_step(layer: &mut Conv2d, x: &Tensor, grad: &Tensor) {
    let y = layer.forward(&[x], Mode::Train).unwrap();
    workspace::recycle_tensor(y);
    let gx = layer.backward(grad).unwrap().into_first();
    workspace::recycle_tensor(gx);
}

fn matmul_step(a: &Tensor, b: &Tensor) {
    let c = a.matmul(b).unwrap();
    workspace::recycle_tensor(c);
}

#[test]
fn warm_conv_step_and_matmul_do_not_allocate() {
    // Batch 64 exceeds every parallel grain, so with the `parallel`
    // feature this exercises the worker-pool dispatch path too.
    let mut rng = stream_rng(1, "alloc-regression");
    let mut layer = Conv2d::new(8, 16, 16, 16, 3, 1, 1, &mut rng).unwrap();
    let x = synth_tensor(&[64, 8, 16, 16], 3);
    let grad = Tensor::ones(&[64, 16, 16, 16]);
    let a = synth_tensor(&[128, 128], 5);
    let b = synth_tensor(&[128, 128], 6);

    // Warm-up: spawns the worker pool (parallel builds), sizes the arena's
    // free lists, and settles optimizer-free layer caches. Two rounds so
    // the cached-cols swap cycle reaches steady state.
    for _ in 0..3 {
        conv_step(&mut layer, &x, &grad);
        matmul_step(&a, &b);
    }

    // Measured window: a warm conv forward+backward step.
    let before = allocations();
    conv_step(&mut layer, &x, &grad);
    let after_conv = allocations();
    assert_eq!(
        after_conv - before,
        0,
        "warm conv forward+backward step allocated"
    );

    // Measured window: a warm dispatching matmul (includes the workspace
    // packing buffers and the pooled result).
    let c = a.matmul(&b).unwrap();
    workspace::recycle_tensor(c);
    let after_matmul = allocations();
    assert_eq!(after_matmul - after_conv, 0, "warm matmul allocated");

    // The serial reference entry point shares the same arena.
    let c = a.matmul_serial(&b).unwrap();
    workspace::recycle_tensor(c);
    let after_serial = allocations();
    assert_eq!(
        after_serial - after_matmul,
        0,
        "warm serial matmul allocated"
    );

    // Telemetry hot path: with the registry armed, recording request
    // latencies, stage spans, cached per-version counters, and trace
    // offers must stay allocation-free — these run inside the serving
    // data path. First-touch costs (the `version()` stats slot, the
    // trace ring filling to capacity) are paid before the window.
    let telemetry = deepmorph_telemetry::install(TelemetryConfig { slow_traces: 4 });
    let version = telemetry.version("alloc-regression-v1");
    for id in 0..4 {
        telemetry.offer_trace(Trace {
            id,
            total_us: 0,
            stages: [1; STAGE_COUNT],
        });
    }
    let before_telemetry = allocations();
    for i in 0..1024u64 {
        telemetry.record_request(i);
        telemetry.record_stage(Stage::Compute, i);
        telemetry.record_stage(Stage::QueueWait, i);
        version.requests.add(1);
        version.labeled.add(1);
        // The ring is at capacity, so winning offers replace the
        // fastest incumbent in place and losing offers are dropped —
        // both paths must be allocation-free.
        telemetry.offer_trace(Trace {
            id: i,
            total_us: i,
            stages: [i; STAGE_COUNT],
        });
    }
    assert_eq!(
        allocations() - before_telemetry,
        0,
        "armed telemetry recording allocated"
    );
    deepmorph_telemetry::clear();

    // Sanity: the counter itself works.
    let v: Vec<u8> = Vec::with_capacity(1024);
    assert!(allocations() > after_serial, "allocation counter is dead");
    drop(v);
}
