//! Determinism guard for the `parallel` feature.
//!
//! The parallel kernels promise *bitwise* identical results to the serial
//! path: every output element accumulates its terms in the same order; only
//! the thread that computes it changes. These tests pin that contract:
//!
//! 1. kernel-level: the dispatching matmuls equal both their pinned serial
//!    entry points and an independent naive per-element reference bit for
//!    bit (the serial entry points share the unified GEMM kernel, so the
//!    naive reference is what actually pins the accumulation order:
//!    `p` ascending per element, zero-skip on the `A` coefficient for
//!    NN/TN, no skip for NT),
//! 2. scenario-level: a fixed-seed LeNet/Digits diagnosis is identical
//!    run-to-run in one process, and
//! 3. build-level: the report digest is recorded under `target/` and
//!    compared across feature configurations — running `cargo test` then
//!    `cargo test --no-default-features` (tier-1 + serial gate) makes the
//!    second run verify the first's digest.

use deepmorph_repro::prelude::*;
use deepmorph_tensor::Tensor;

fn synth(shape: &[usize], salt: u64) -> Tensor {
    let len: usize = shape.iter().product();
    let data: Vec<f32> = (0..len)
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(salt.wrapping_mul(0x2545_F491_4F6C_DD1D));
            ((h >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
        })
        .collect();
    Tensor::from_vec(data, shape).unwrap()
}

/// Sprinkles exact zeros so the kernels' zero-skip paths are exercised.
fn with_zeros(t: &Tensor) -> Tensor {
    let mut z = t.clone();
    for (i, v) in z.data_mut().iter_mut().enumerate() {
        if i % 7 == 0 {
            *v = 0.0;
        }
    }
    z
}

/// Independent per-element reference for the whole matmul family: `p`
/// ascending, single dependent add chain per output element, zero-skip on
/// the `A` coefficient for NN/TN (matching the historical reference
/// kernels) and no skip for NT. This is deliberately *not* the production
/// kernel — it pins the accumulation order the unified GEMM must keep.
fn naive_matmul(op: &str, a: &Tensor, b: &Tensor, m: usize, k: usize, n: usize) -> Vec<f32> {
    let (ad, bd) = (a.data(), b.data());
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                let av = match op {
                    "tn" => ad[p * m + i],
                    _ => ad[i * k + p],
                };
                if op != "nt" && av == 0.0 {
                    continue;
                }
                let bv = match op {
                    "nt" => bd[j * k + p],
                    _ => bd[p * n + j],
                };
                acc += av * bv;
            }
            out[i * n + j] = acc;
        }
    }
    out
}

#[test]
fn matmul_family_bitwise_matches_serial_reference() {
    for &(m, k, n) in &[
        (1usize, 1usize, 1usize),
        (5, 3, 7),
        (33, 65, 17),
        (64, 72, 16), // the batch-64 conv GEMM shape class
        (128, 128, 128),
        (130, 70, 9), // odd sizes exercise every unroll tail
        (3, 20, 600), // wider than one GEMM cache panel
    ] {
        for salt in [1u64, 2] {
            let a0 = synth(&[m, k], salt);
            let b0 = synth(&[k, n], salt + 10);
            for (a, b) in [(a0.clone(), b0.clone()), (with_zeros(&a0), with_zeros(&b0))] {
                let fast = a.matmul(&b).unwrap();
                let slow = a.matmul_serial(&b).unwrap();
                assert_eq!(fast.data(), slow.data(), "matmul {m}x{k}x{n}");
                let naive = naive_matmul("nn", &a, &b, m, k, n);
                assert_eq!(fast.data(), &naive[..], "matmul vs naive {m}x{k}x{n}");

                let bt = synth(&[n, k], salt + 20);
                let fast = a.matmul_nt(&bt).unwrap();
                let slow = a.matmul_nt_serial(&bt).unwrap();
                assert_eq!(fast.data(), slow.data(), "matmul_nt {m}x{k}x{n}");
                let naive = naive_matmul("nt", &a, &bt, m, k, n);
                assert_eq!(fast.data(), &naive[..], "matmul_nt vs naive {m}x{k}x{n}");

                let at = synth(&[k, m], salt + 30);
                let bk = synth(&[k, n], salt + 40);
                let fast = at.matmul_tn(&bk).unwrap();
                let slow = at.matmul_tn_serial(&bk).unwrap();
                assert_eq!(fast.data(), slow.data(), "matmul_tn {m}x{k}x{n}");
                let naive = naive_matmul("tn", &at, &bk, m, k, n);
                assert_eq!(fast.data(), &naive[..], "matmul_tn vs naive {m}x{k}x{n}");
            }
        }
    }
}

fn fixed_scenario() -> Scenario {
    Scenario::builder(ModelFamily::LeNet, DatasetKind::Digits)
        .seed(1234)
        .scale(ModelScale::Tiny)
        .train_per_class(40)
        .test_per_class(12)
        .train_config(TrainConfig {
            epochs: 3,
            batch_size: 32,
            ..TrainConfig::default()
        })
        .inject(DefectSpec::insufficient_training_data(vec![0, 1, 2], 0.98))
        .build()
        .expect("scenario builds")
}

fn run_fixed_scenario() -> deepmorph::report::DefectReport {
    fixed_scenario().run().expect("scenario runs").report
}

fn fnv64(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn fixed_seed_scenario_is_identical_across_runs_and_builds() {
    let first = run_fixed_scenario();
    let second = run_fixed_scenario();
    assert_eq!(first, second, "same-process reruns must match exactly");

    let json = first.to_json();
    let digest = format!("{:016x}", fnv64(&json));

    // Cross-build guard: `cargo test` (parallel default) and
    // `cargo test --no-default-features` (serial) both run this test; each
    // writes its digest and checks any digest a previous configuration
    // left behind. Identical numerics ⇒ identical digests.
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("determinism");
    std::fs::create_dir_all(&dir).expect("create digest dir");
    let features = if cfg!(feature = "parallel") {
        "parallel"
    } else {
        "serial"
    };
    for entry in std::fs::read_dir(&dir).expect("read digest dir") {
        let path = entry.expect("dir entry").path();
        let other = std::fs::read_to_string(&path).unwrap_or_default();
        assert_eq!(
            other.trim(),
            digest,
            "diagnosis report diverged from the digest recorded by {} — \
             the serial and parallel paths no longer agree bitwise",
            path.display()
        );
    }
    std::fs::write(dir.join(format!("{features}.digest")), &digest).expect("write digest");
}

#[test]
fn artifact_store_round_trip_leaves_digest_unchanged() {
    // The staged engine's save → load cycle (model codec, probe codec,
    // footprint codec, report JSON) must be invisible: a scenario driven
    // through a real store — cold, then entirely from cache — produces
    // the exact report the plain in-process run does. The store directory
    // is shared across feature configurations on purpose: the serial
    // build reads artifacts the parallel build wrote, so the codec is
    // also a cross-build determinism check.
    let plain = run_fixed_scenario();

    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("determinism-store");
    std::fs::create_dir_all(&dir).expect("store dir");
    let engine = deepmorph::stage::StagedEngine::new(
        deepmorph::artifact::ArtifactStore::open(&dir).expect("store opens"),
    );
    let scenario = fixed_scenario();
    let cold = engine.run(&scenario).expect("cold staged run").report;
    let warm = engine.run(&scenario).expect("warm staged run").report;
    assert_eq!(cold, plain, "staged (cold) run diverged from the plain run");
    assert_eq!(warm, plain, "cache round-trip changed the report");
    assert_eq!(
        fnv64(&warm.to_json()),
        fnv64(&plain.to_json()),
        "fixed-seed scenario digest changed across the store round-trip"
    );
}
