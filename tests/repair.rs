//! Integration tests for the repair loop (paper Section IV's "modify the
//! models accordingly" evaluation).

use deepmorph_repro::prelude::*;

fn train_config() -> TrainConfig {
    TrainConfig {
        epochs: 6,
        batch_size: 32,
        learning_rate: 0.05,
        lr_decay: 0.9,
        ..TrainConfig::default()
    }
}

#[test]
fn itd_repair_collects_data_and_improves_accuracy() {
    let scenario = Scenario::builder(ModelFamily::LeNet, DatasetKind::Digits)
        .seed(7)
        .train_per_class(80)
        .test_per_class(25)
        .train_config(train_config())
        .inject(DefectSpec::insufficient_training_data(vec![0, 1, 2], 0.98))
        .build()
        .unwrap();
    let (outcome, repair) = scenario.run_with_repair().expect("repair runs");
    assert_eq!(
        outcome.report.dominant(),
        Some(DefectKind::InsufficientTrainingData)
    );
    match &repair.plan {
        RepairPlan::CollectMoreData { classes } => {
            // The starved classes should be among the recommendations.
            assert!(classes.iter().any(|c| *c <= 2), "classes {classes:?}");
        }
        other => panic!("expected data collection, got {other}"),
    }
    // More data for the starved classes must enlarge the training set and
    // substantially restore accuracy.
    assert!(repair.repaired_train_size > 80 * 10 - 3 * 78);
    assert!(
        repair.improvement() > 0.1,
        "improvement {:+.3} (before {:.3}, after {:.3})",
        repair.improvement(),
        repair.accuracy_before,
        repair.accuracy_after
    );
}

#[test]
fn sd_repair_restores_structure() {
    let scenario = Scenario::builder(ModelFamily::LeNet, DatasetKind::Digits)
        .seed(7)
        .train_per_class(80)
        .test_per_class(25)
        .train_config(train_config())
        .inject(DefectSpec::structure_defect(6))
        .build()
        .unwrap();
    let (outcome, repair) = scenario.run_with_repair().expect("repair runs");
    assert_eq!(outcome.report.dominant(), Some(DefectKind::StructureDefect));
    assert_eq!(repair.plan, RepairPlan::StrengthenStructure);
    assert!(
        repair.improvement() > 0.15,
        "improvement {:+.3}",
        repair.improvement()
    );
}

#[test]
fn utd_repair_cleans_labels_without_losing_samples() {
    let scenario = Scenario::builder(ModelFamily::LeNet, DatasetKind::Digits)
        .seed(11)
        .train_per_class(80)
        .test_per_class(30)
        .train_config(train_config())
        .inject(DefectSpec::unreliable_training_data(3, 5, 0.5))
        .build()
        .unwrap();
    match scenario.run_with_repair() {
        Ok((outcome, repair)) => {
            assert_eq!(
                outcome.report.dominant(),
                Some(DefectKind::UnreliableTrainingData)
            );
            match repair.plan {
                RepairPlan::CleanLabels { .. } => {}
                ref other => panic!("expected label cleaning, got {other}"),
            }
            // Cleaning relabels; it never drops samples.
            assert_eq!(repair.repaired_train_size, 80 * 10);
            assert!(
                repair.improvement() > -0.05,
                "cleaning should not hurt: {:+.3}",
                repair.improvement()
            );
        }
        // Mild UTD occasionally leaves a perfect model at this scale.
        Err(DeepMorphError::NoFaultyCases) => {}
        Err(e) => panic!("unexpected error: {e}"),
    }
}
