//! Umbrella crate for the DeepMorph reproduction workspace.
//!
//! This crate re-exports the public API of every workspace member so that
//! the runnable examples under `examples/` and the integration tests under
//! `tests/` can use a single dependency. Library users should depend on the
//! individual crates instead:
//!
//! * [`deepmorph_tensor`] — dense tensor math
//! * [`deepmorph_nn`] — layers, graphs, training
//! * [`deepmorph_data`] — synthetic datasets
//! * [`deepmorph_models`] — LeNet / AlexNet / ResNet / DenseNet builders
//! * [`deepmorph_defects`] — defect injection
//! * [`deepmorph`] — the DeepMorph diagnosis pipeline itself
//! * [`deepmorph_serve`] — the online inference + diagnosis service
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs`; in short:
//!
//! ```no_run
//! use deepmorph_repro::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scenario = Scenario::builder(ModelFamily::LeNet, DatasetKind::Digits)
//!     .seed(7)
//!     .scale(ModelScale::Tiny)
//!     .inject(DefectSpec::insufficient_training_data([0, 1, 2], 0.9))
//!     .build()?;
//! let outcome = scenario.run()?;
//! println!("{}", outcome.report);
//! # Ok(())
//! # }
//! ```

pub use deepmorph;
pub use deepmorph_data;
pub use deepmorph_defects;
pub use deepmorph_models;
pub use deepmorph_nn;
pub use deepmorph_serve;
pub use deepmorph_tensor;

/// Convenience re-exports used by the examples and integration tests.
///
/// `deepmorph::prelude` already re-exports the substrate preludes, so this
/// is a single pass-through.
pub mod prelude {
    pub use deepmorph::prelude::*;
}
