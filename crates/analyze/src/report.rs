//! Findings and report rendering (human text and `--json`).

use deepmorph_json::Json;

/// One analysis finding. `key` is the stable identifier an allowlist
/// entry must quote to suppress it.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which checker produced it: `unsafe`, `atomics`, `alloc`,
    /// `layout`, or `allowlist` (stale entries).
    pub checker: &'static str,
    /// Root-relative file path.
    pub path: String,
    /// 1-based line (0 when the finding is file-level).
    pub line: u32,
    /// Allowlist suppression key.
    pub key: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// Renders `path:line: [checker] message (allow key: k)`.
    pub fn render_text(&self) -> String {
        let loc = if self.line > 0 {
            format!("{}:{}", self.path, self.line)
        } else {
            self.path.clone()
        };
        format!(
            "{loc}: [{}] {} (allow key: {})",
            self.checker, self.message, self.key
        )
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("checker", Json::str(self.checker)),
            ("path", Json::str(self.path.as_str())),
            ("line", Json::usize(self.line as usize)),
            ("key", Json::str(self.key.as_str())),
            ("message", Json::str(self.message.as_str())),
        ])
    }
}

/// One entry in the machine-readable unsafe inventory: every unsafe
/// site in the workspace, documented or not.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    pub path: String,
    pub line: u32,
    /// `block`, `fn`, `impl`, or `trait`.
    pub kind: &'static str,
    /// Enclosing function, when inside one.
    pub context: Option<String>,
    /// Whether a SAFETY justification was found.
    pub documented: bool,
}

impl UnsafeSite {
    fn to_json(&self) -> Json {
        Json::obj([
            ("path", Json::str(self.path.as_str())),
            ("line", Json::usize(self.line as usize)),
            ("kind", Json::str(self.kind)),
            (
                "context",
                match &self.context {
                    Some(c) => Json::str(c.as_str()),
                    None => Json::Null,
                },
            ),
            ("documented", Json::Bool(self.documented)),
        ])
    }
}

/// The full run report.
pub struct Report {
    pub findings: Vec<Finding>,
    pub unsafe_inventory: Vec<UnsafeSite>,
    pub files_scanned: usize,
    pub allow_entries: usize,
}

impl Report {
    /// True when the run should exit 0.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable report: findings sorted by path/line, then a
    /// one-line summary with the unsafe-site tally.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let mut findings: Vec<&Finding> = self.findings.iter().collect();
        findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
        for f in &findings {
            out.push_str(&f.render_text());
            out.push('\n');
        }
        let documented = self
            .unsafe_inventory
            .iter()
            .filter(|s| s.documented)
            .count();
        out.push_str(&format!(
            "deepmorph-analyze: {} finding(s) in {} file(s); {} unsafe site(s) ({} documented); {} allowlist entr{}\n",
            self.findings.len(),
            self.files_scanned,
            self.unsafe_inventory.len(),
            documented,
            self.allow_entries,
            if self.allow_entries == 1 { "y" } else { "ies" },
        ));
        out
    }

    /// Machine-readable report for `--json`.
    pub fn render_json(&self) -> String {
        let mut findings: Vec<&Finding> = self.findings.iter().collect();
        findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
        Json::obj([
            ("clean", Json::Bool(self.clean())),
            ("files_scanned", Json::usize(self.files_scanned)),
            ("allow_entries", Json::usize(self.allow_entries)),
            ("findings", Json::arr(findings.iter().map(|f| f.to_json()))),
            (
                "unsafe_inventory",
                Json::arr(self.unsafe_inventory.iter().map(|s| s.to_json())),
            ),
        ])
        .to_string_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmorph_json::Json;

    fn sample() -> Report {
        Report {
            findings: vec![Finding {
                checker: "alloc",
                path: "crates/x.rs".into(),
                line: 7,
                key: "fn:hot:Vec::new".into(),
                message: "hot path calls Vec::new".into(),
            }],
            unsafe_inventory: vec![UnsafeSite {
                path: "crates/y.rs".into(),
                line: 3,
                kind: "block",
                context: Some("poll".into()),
                documented: true,
            }],
            files_scanned: 2,
            allow_entries: 0,
        }
    }

    #[test]
    fn text_report_names_path_line_and_key() {
        let text = sample().render_text();
        assert!(text.contains("crates/x.rs:7: [alloc]"), "{text}");
        assert!(text.contains("allow key: fn:hot:Vec::new"), "{text}");
        assert!(text.contains("1 unsafe site(s) (1 documented)"), "{text}");
    }

    #[test]
    fn json_report_round_trips() {
        let json = Json::parse(&sample().render_json()).unwrap();
        assert_eq!(json.req("clean").unwrap().as_bool(), Some(false));
        let findings = json.req("findings").unwrap().as_arr().unwrap();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].req("checker").unwrap().as_str(), Some("alloc"));
        let inv = json.req("unsafe_inventory").unwrap().as_arr().unwrap();
        assert_eq!(inv[0].req("documented").unwrap().as_bool(), Some(true));
    }
}
