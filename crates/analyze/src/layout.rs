//! Checker 4: wire-layout pinning.
//!
//! The serving protocol promises bitwise-stable frames: kind bytes,
//! header constants, and the 20-slot `Stats` body at fixed byte
//! offsets. This checker parses those facts straight out of
//! `crates/serve/src/protocol.rs` and diffs them against a checked-in
//! golden spec (`wire_layout.golden`), so an accidental constant edit
//! or a reordered stats field fails analysis with a field-level message
//! — naming the slot and byte offset — instead of a cryptic decode-test
//! assertion. It also cross-checks the two places the stats order is
//! spelled out (`stats_values` and the `Response::Stats` encode arm)
//! against each other.
//!
//! Changing the wire format deliberately means editing the golden file
//! in the same PR — which is exactly the reviewable diff we want.

use crate::lexer::{Tok, Token};
use crate::report::Finding;
use crate::source::SourceFile;

/// Byte offset of stats slot `i`: u8 kind + u64 correlation id = 9
/// bytes of body header, then 8 bytes per slot.
fn stats_offset(slot: usize) -> usize {
    9 + 8 * slot
}

/// True for constants the golden file pins.
fn is_pinned_const(name: &str) -> bool {
    name.starts_with("KIND_")
        || matches!(
            name,
            "RESPONSE_BIT" | "FRAME_MAGIC" | "MAX_FRAME_BYTES" | "TELEMETRY_PAYLOAD_VERSION"
        )
}

/// What the checker extracted from the protocol source.
pub struct ActualLayout {
    /// Pinned constants in declaration order: `(name, value, line)`.
    pub consts: Vec<(String, String, u32)>,
    /// Field order in `fn stats_values`, with the fn's line.
    pub stats_fields: Vec<String>,
    pub stats_line: u32,
    /// Field order in the inline `Response::Stats` encode arm.
    pub encode_fields: Vec<String>,
    pub encode_line: u32,
}

/// The golden spec: pinned constants and the expected stats order.
pub struct GoldenLayout {
    pub consts: Vec<(String, String)>,
    pub stats_fields: Vec<String>,
}

impl GoldenLayout {
    /// Parses the golden file: `const <NAME> <value…>` and
    /// `stats <slot> <field>` lines, `#` comments.
    pub fn parse(text: &str) -> Result<GoldenLayout, String> {
        let mut consts = Vec::new();
        let mut stats: Vec<(usize, String)> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |what: &str| format!("golden line {}: {what}: {raw:?}", idx + 1);
            let mut parts = line.splitn(2, ' ');
            match parts.next() {
                Some("const") => {
                    let rest = parts.next().ok_or_else(|| err("missing name"))?;
                    let (name, value) = rest.split_once(' ').ok_or_else(|| err("missing value"))?;
                    consts.push((name.to_string(), value.trim().to_string()));
                }
                Some("stats") => {
                    let rest = parts.next().ok_or_else(|| err("missing slot"))?;
                    let (slot, field) = rest.split_once(' ').ok_or_else(|| err("missing field"))?;
                    let slot: usize = slot.parse().map_err(|_| err("bad slot number"))?;
                    stats.push((slot, field.trim().to_string()));
                }
                _ => return Err(err("unknown directive")),
            }
        }
        stats.sort_by_key(|&(slot, _)| slot);
        for (i, (slot, _)) in stats.iter().enumerate() {
            if *slot != i {
                return Err(format!("golden stats slots not contiguous at {slot}"));
            }
        }
        Ok(GoldenLayout {
            consts,
            stats_fields: stats.into_iter().map(|(_, f)| f).collect(),
        })
    }
}

/// Extracts the actual layout from the lexed protocol source.
pub fn extract(file: &SourceFile) -> ActualLayout {
    let tokens = &file.lexed.tokens;
    let mut consts = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !matches!(&t.tok, Tok::Ident(kw) if kw == "const") {
            continue;
        }
        let Some(Tok::Ident(name)) = tokens.get(i + 1).map(|t| &t.tok) else {
            continue;
        };
        if !is_pinned_const(name) {
            continue;
        }
        if !matches!(tokens.get(i + 2).map(|t| &t.tok), Some(Tok::Punct(':'))) {
            continue; // not a const item
        }
        // Value: tokens between `=` and `;`.
        let mut j = i + 3;
        while !matches!(tokens.get(j).map(|t| &t.tok), Some(Tok::Punct('=')) | None) {
            j += 1;
        }
        let start = j + 1;
        let mut end = start;
        while !matches!(
            tokens.get(end).map(|t| &t.tok),
            Some(Tok::Punct(';')) | None
        ) {
            end += 1;
        }
        consts.push((name.clone(), render(&tokens[start..end]), t.line));
    }

    let (stats_fields, stats_line) = fields_in_fn(file, "stats_values");
    let (encode_fields, encode_line) = encode_arm_fields(tokens);
    ActualLayout {
        consts,
        stats_fields,
        stats_line,
        encode_fields,
        encode_line,
    }
}

/// Renders value tokens: space-separated, except consecutive
/// punctuation sticks together (`16 << 20`, not `16 < < 20`).
fn render(tokens: &[Token]) -> String {
    let mut out = String::new();
    let mut prev_punct = false;
    for t in tokens {
        let (text, is_punct) = match &t.tok {
            Tok::Ident(s) | Tok::Num(s) => (s.clone(), false),
            Tok::Lifetime(s) => (format!("'{s}"), false),
            Tok::Literal(s) => (format!("\"{s}\""), false),
            Tok::Punct(c) => (c.to_string(), true),
        };
        if !(out.is_empty() || prev_punct && is_punct) {
            out.push(' ');
        }
        out.push_str(&text);
        prev_punct = is_punct;
    }
    out
}

/// `x.field` field names, in order, inside the body of `fn name`.
fn fields_in_fn(file: &SourceFile, name: &str) -> (Vec<String>, u32) {
    let tokens = &file.lexed.tokens;
    let Some(fn_idx) = tokens.windows(2).position(|w| {
        matches!(&w[0].tok, Tok::Ident(kw) if kw == "fn")
            && matches!(&w[1].tok, Tok::Ident(n) if n == name)
    }) else {
        return (Vec::new(), 0);
    };
    let fn_line = tokens[fn_idx].line;
    // Body: first `{` after the signature to its matching `}`.
    let mut i = fn_idx;
    while !matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Punct('{')) | None) {
        i += 1;
    }
    let mut depth = 0u32;
    let mut fields = Vec::new();
    while let Some(t) = tokens.get(i) {
        match &t.tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            Tok::Punct('.') => {
                if let (Some(Tok::Ident(_)), Some(Tok::Ident(field))) = (
                    tokens.get(i - 1).map(|t| &t.tok),
                    tokens.get(i + 1).map(|t| &t.tok),
                ) {
                    fields.push(field.clone());
                }
            }
            _ => {}
        }
        i += 1;
    }
    (fields, fn_line)
}

/// Field order in the inline `Response::Stats(bind) => { for v in
/// [bind.a, bind.b, …] { … } }` encode arm.
fn encode_arm_fields(tokens: &[Token]) -> (Vec<String>, u32) {
    let Some(arm) = tokens.windows(4).position(|w| {
        matches!(&w[0].tok, Tok::Ident(n) if n == "Response")
            && w[1].tok == Tok::Punct(':')
            && w[2].tok == Tok::Punct(':')
            && matches!(&w[3].tok, Tok::Ident(n) if n == "Stats")
    }) else {
        return (Vec::new(), 0);
    };
    let line = tokens[arm].line;
    // The binding name: `Stats ( bind )`.
    let Some(Tok::Ident(bind)) = tokens.get(arm + 5).map(|t| &t.tok) else {
        return (Vec::new(), line);
    };
    // First `[` after the arm opens the field array; collect
    // `bind.field` until its matching `]`.
    let mut i = arm + 6;
    while !matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Punct('[')) | None) {
        i += 1;
    }
    let mut depth = 0u32;
    let mut fields = Vec::new();
    while let Some(t) = tokens.get(i) {
        match &t.tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            Tok::Punct('.') => {
                if let (Some(Tok::Ident(recv)), Some(Tok::Ident(field))) = (
                    tokens.get(i - 1).map(|t| &t.tok),
                    tokens.get(i + 1).map(|t| &t.tok),
                ) {
                    if recv == bind {
                        fields.push(field.clone());
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    (fields, line)
}

/// Diffs actual vs golden, appending field-level findings.
pub fn check(
    file: &SourceFile,
    golden: &GoldenLayout,
    allow: &crate::allowlist::Allowlist,
    findings: &mut Vec<Finding>,
) {
    let actual = extract(file);
    let push = |findings: &mut Vec<Finding>, line: u32, key: String, message: String| {
        if allow.allows("layout", &file.rel_path, &key) {
            return;
        }
        findings.push(Finding {
            checker: "layout",
            path: file.rel_path.clone(),
            line,
            key,
            message,
        });
    };

    for (name, want) in &golden.consts {
        match actual.consts.iter().find(|(n, _, _)| n == name) {
            None => push(
                findings,
                0,
                format!("const:{name}"),
                format!(
                    "pinned constant `{name}` missing from protocol source (golden pins `{want}`)"
                ),
            ),
            Some((_, got, line)) if got != want => push(
                findings,
                *line,
                format!("const:{name}"),
                format!("pinned constant `{name}` changed: golden `{want}`, source `{got}`"),
            ),
            Some(_) => {}
        }
    }
    for (name, got, line) in &actual.consts {
        if !golden.consts.iter().any(|(n, _)| n == name) {
            push(
                findings,
                *line,
                format!("const:{name}"),
                format!(
                    "new wire constant `{name}` = `{got}` is not pinned — add it to the golden file"
                ),
            );
        }
    }

    if actual.stats_fields.is_empty() {
        push(
            findings,
            0,
            "stats:missing".to_string(),
            "could not find `fn stats_values` in protocol source".to_string(),
        );
    } else {
        let n = golden.stats_fields.len().max(actual.stats_fields.len());
        for slot in 0..n {
            let want = golden.stats_fields.get(slot);
            let got = actual.stats_fields.get(slot);
            if want == got {
                continue;
            }
            let at = format!("slot {slot} (byte offset {})", stats_offset(slot));
            let message = match (want, got) {
                (Some(w), Some(g)) => {
                    format!("stats field at {at}: golden `{w}`, source `{g}`")
                }
                (Some(w), None) => {
                    format!("stats field `{w}` at {at} missing from source")
                }
                (None, Some(g)) => {
                    format!("stats field `{g}` at {at} not pinned in golden")
                }
                (None, None) => unreachable!(),
            };
            push(
                findings,
                actual.stats_line,
                format!("stats:{slot}"),
                message,
            );
        }

        // Internal consistency: the encode arm must spell the same order.
        if actual.encode_fields.is_empty() {
            push(
                findings,
                0,
                "encode:missing".to_string(),
                "could not find the `Response::Stats` encode arm".to_string(),
            );
        } else if actual.encode_fields != actual.stats_fields {
            let slot = actual
                .encode_fields
                .iter()
                .zip(&actual.stats_fields)
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| actual.encode_fields.len().min(actual.stats_fields.len()));
            push(
                findings,
                actual.encode_line,
                format!("encode:{slot}"),
                format!(
                    "`Response::Stats` encode arm disagrees with `stats_values` at slot {slot} \
                     (byte offset {}): `{}` vs `{}`",
                    stats_offset(slot),
                    actual
                        .encode_fields
                        .get(slot)
                        .map(String::as_str)
                        .unwrap_or("<none>"),
                    actual
                        .stats_fields
                        .get(slot)
                        .map(String::as_str)
                        .unwrap_or("<none>"),
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIXTURE: &str = r#"
pub const FRAME_MAGIC: [u8; 4] = *b"DMSV";
pub const MAX_FRAME_BYTES: usize = 16 << 20;
const KIND_PING: u8 = 0;
const KIND_STATS: u8 = 4;
const RESPONSE_BIT: u8 = 0x80;

fn stats_values(s: &StatsSnapshot) -> [u64; 2] {
    [s.requests, s.rows]
}

fn encode(r: &Response, w: &mut W) -> u8 {
    match r {
        Response::Stats(s) => {
            for v in [s.requests, s.rows] {
                w.put_u64(v);
            }
            RESPONSE_BIT | KIND_STATS
        }
    }
}
"#;

    const GOLDEN: &str = "\
const FRAME_MAGIC * \"DMSV\"
const MAX_FRAME_BYTES 16 << 20
const KIND_PING 0
const KIND_STATS 4
const RESPONSE_BIT 0x80
stats 0 requests
stats 1 rows
";

    fn run(src: &str, golden: &str) -> Vec<Finding> {
        let file = SourceFile::from_source("crates/serve/src/protocol.rs".into(), src);
        let golden = GoldenLayout::parse(golden).unwrap();
        let mut findings = Vec::new();
        check(
            &file,
            &golden,
            &crate::allowlist::Allowlist::empty(),
            &mut findings,
        );
        findings
    }

    #[test]
    fn matching_layout_is_clean() {
        let findings = run(FIXTURE, GOLDEN);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn reordered_stats_field_names_slot_and_offset() {
        let reordered = FIXTURE.replace("[s.requests, s.rows]", "[s.rows, s.requests]");
        let findings = run(&reordered, GOLDEN);
        let stats: Vec<_> = findings
            .iter()
            .filter(|f| f.key.starts_with("stats:"))
            .collect();
        assert_eq!(stats.len(), 2, "{findings:?}");
        assert!(
            stats[0].message.contains("slot 0 (byte offset 9)"),
            "{}",
            stats[0].message
        );
        assert!(stats[0]
            .message
            .contains("golden `requests`, source `rows`"));
    }

    #[test]
    fn changed_constant_is_a_finding() {
        let edited = FIXTURE.replace("const KIND_STATS: u8 = 4;", "const KIND_STATS: u8 = 5;");
        let findings = run(&edited, GOLDEN);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].key, "const:KIND_STATS");
        assert!(findings[0].message.contains("golden `4`, source `5`"));
    }

    #[test]
    fn new_unpinned_constant_is_a_finding() {
        let edited = FIXTURE.replace(
            "const RESPONSE_BIT: u8 = 0x80;",
            "const RESPONSE_BIT: u8 = 0x80;\nconst KIND_FLUSH: u8 = 9;",
        );
        let findings = run(&edited, GOLDEN);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("KIND_FLUSH"));
        assert!(findings[0].message.contains("not pinned"));
    }

    #[test]
    fn encode_arm_disagreement_is_caught_without_golden_help() {
        let skewed = FIXTURE.replace(
            "for v in [s.requests, s.rows]",
            "for v in [s.rows, s.requests]",
        );
        let findings = run(&skewed, GOLDEN);
        assert!(findings.iter().any(|f| f.key == "encode:0"), "{findings:?}");
    }

    #[test]
    fn golden_rejects_gapped_slots() {
        assert!(GoldenLayout::parse("stats 0 a\nstats 2 b\n").is_err());
    }
}
