//! A small purpose-built Rust lexer.
//!
//! The analyzers only need a faithful *token stream with line numbers* and
//! the comments alongside it — not a syntax tree — so this is a
//! single-pass scanner, not a parser. It gets the parts that would
//! otherwise cause false findings exactly right:
//!
//! * string/char/byte/raw-string literals (so `"Ordering::SeqCst"` inside
//!   a test fixture string is never mistaken for a real use),
//! * line vs block comments, nested block comments, doc comments,
//! * lifetimes vs char literals (`'a` the lifetime, `'a'` the char),
//! * numeric literals including `0x` forms and type suffixes.
//!
//! Anything it cannot classify is emitted as a one-character
//! [`Tok::Punct`], which is all the pattern matchers downstream need.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`unsafe`, `fn`, `Ordering`, …).
    Ident(String),
    /// A lifetime (`'a`), without the leading quote.
    Lifetime(String),
    /// A string/char/byte literal; the payload is the literal's inner
    /// text (escape sequences left as written, quotes stripped).
    Literal(String),
    /// A numeric literal, verbatim (`16`, `0x7F`, `1_000`, `2.5f32`).
    Num(String),
    /// A single punctuation character (`{`, `:`, `#`, …).
    Punct(char),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// One comment (line or block), with the lines it spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment text without the `//` / `/*` markers, trimmed.
    pub text: String,
    /// 1-based first line.
    pub start_line: u32,
    /// 1-based last line (equal to `start_line` for line comments).
    pub end_line: u32,
}

/// The output of [`lex`]: code tokens and comments, both line-annotated.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// All comments that cover `line` (a block comment spans many).
    pub fn comments_on_line(&self, line: u32) -> impl Iterator<Item = &Comment> {
        self.comments
            .iter()
            .filter(move |c| c.start_line <= line && line <= c.end_line)
    }
}

/// Lexes `src` into tokens and comments. Never fails: malformed input
/// (e.g. an unterminated string) degenerates into best-effort tokens,
/// which at worst yields a finding pointing at the offending file.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Lexed,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances one byte, tracking newlines.
    fn bump(&mut self) -> Option<u8> {
        let b = self.bytes.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn push(&mut self, tok: Tok, line: u32) {
        self.out.tokens.push(Token { tok, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(b) = self.peek(0) {
            let line = self.line;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(line),
                b'\'' => self.quote(line),
                b'r' | b'b' if self.raw_or_byte_literal(line) => {}
                _ if is_ident_start(b) => self.ident(line),
                _ if b.is_ascii_digit() => self.number(line),
                _ => {
                    self.bump();
                    self.push(Tok::Punct(b as char), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        let text = raw.trim_start_matches('/').trim_start_matches('!').trim();
        self.out.comments.push(Comment {
            text: text.to_string(),
            start_line: line,
            end_line: line,
        });
    }

    fn block_comment(&mut self) {
        let start_line = self.line;
        let start = self.pos;
        self.bump();
        self.bump(); // consume `/*`
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        let text = raw
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim_end_matches('/')
            .trim_end_matches('*')
            .trim();
        self.out.comments.push(Comment {
            text: text.to_string(),
            start_line,
            end_line: self.line,
        });
    }

    /// Consumes a `"…"` string, handling `\"` and `\\` escapes.
    fn string(&mut self, line: u32) {
        self.bump(); // opening quote
        let start = self.pos;
        let mut end = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'\\' {
                self.bump();
                self.bump();
                end = self.pos;
                continue;
            }
            if b == b'"' {
                break;
            }
            self.bump();
            end = self.pos;
        }
        let text = std::str::from_utf8(&self.bytes[start..end]).unwrap_or("");
        self.push(Tok::Literal(text.to_string()), line);
        self.bump(); // closing quote
    }

    /// A `'`: either a lifetime (`'a`) or a char literal (`'a'`, `'\n'`).
    fn quote(&mut self, line: u32) {
        self.bump(); // the quote
        match self.peek(0) {
            Some(b'\\') => {
                // Escaped char literal: consume until the closing quote.
                self.bump();
                self.bump();
                while let Some(b) = self.peek(0) {
                    self.bump();
                    if b == b'\'' {
                        break;
                    }
                }
                self.push(Tok::Literal(String::new()), line);
            }
            Some(b) if is_ident_start(b) || b.is_ascii_digit() => {
                let start = self.pos;
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.bump();
                }
                let name = std::str::from_utf8(&self.bytes[start..self.pos])
                    .unwrap_or("")
                    .to_string();
                if self.peek(0) == Some(b'\'') {
                    self.bump(); // char literal like 'a'
                    self.push(Tok::Literal(name), line);
                } else {
                    self.push(Tok::Lifetime(name), line);
                }
            }
            Some(_) => {
                // A punctuation char literal like '{' or ' '.
                self.bump();
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                }
                self.push(Tok::Literal(String::new()), line);
            }
            None => {}
        }
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`. Returns
    /// `false` when the `r`/`b` starts a plain identifier instead.
    fn raw_or_byte_literal(&mut self, line: u32) -> bool {
        let mut ahead = 1; // past the leading r/b
        if self.peek(0) == Some(b'b') && self.peek(1) == Some(b'r') {
            ahead = 2;
        }
        if self.peek(0) == Some(b'b') && self.peek(1) == Some(b'\'') {
            // Byte char literal b'x'.
            self.bump(); // b
            self.quote(line);
            return true;
        }
        let mut hashes = 0usize;
        while self.peek(ahead) == Some(b'#') {
            hashes += 1;
            ahead += 1;
        }
        if self.peek(ahead) != Some(b'"') {
            return false;
        }
        if hashes > 0 && ahead - hashes == 1 && self.peek(0) == Some(b'b') {
            // `b#"` is not a literal prefix.
            return false;
        }
        for _ in 0..=ahead {
            self.bump(); // prefix, hashes, opening quote
        }
        let start = self.pos;
        let mut end = self.pos;
        'scan: while let Some(b) = self.peek(0) {
            if b == b'"' {
                // A raw string closes on `"` followed by `hashes` hashes.
                for h in 0..hashes {
                    if self.peek(1 + h) != Some(b'#') {
                        self.bump();
                        end = self.pos;
                        continue 'scan;
                    }
                }
                break;
            }
            if hashes == 0 && b == b'\\' && ahead == 1 && self.bytes[self.pos - 1] != b'r' {
                // Plain byte string: honor escapes.
                self.bump();
            }
            self.bump();
            end = self.pos;
        }
        let text = std::str::from_utf8(&self.bytes[start..end]).unwrap_or("");
        self.push(Tok::Literal(text.to_string()), line);
        self.bump(); // closing quote
        for _ in 0..hashes {
            self.bump();
        }
        true
    }

    fn ident(&mut self, line: u32) {
        let start = self.pos;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        let name = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        self.push(Tok::Ident(name.to_string()), line);
    }

    fn number(&mut self, line: u32) {
        let start = self.pos;
        while self
            .peek(0)
            .is_some_and(|b| is_ident_continue(b) || b == b'.')
        {
            if self.peek(0) == Some(b'.') {
                // Include the dot only for a fractional part; `0..n` and
                // `1.max(2)` keep their dots as punctuation.
                if !self.peek(1).is_some_and(|b| b.is_ascii_digit()) {
                    break;
                }
            }
            self.bump();
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        self.push(Tok::Num(text.to_string()), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_never_leak_tokens() {
        let src = r##"
            // unsafe in a comment
            let a = "unsafe { Ordering::SeqCst }";
            let b = r#"format!("x")"#;
            /* Vec::new() in a /* nested */ block */
            let c = 'u'; // not an ident
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unsafe".to_string()), "ids: {ids:?}");
        assert!(!ids.contains(&"SeqCst".to_string()));
        assert!(!ids.contains(&"Vec".to_string()));
        assert!(!ids.contains(&"u".to_string()));
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 3);
        assert_eq!(lexed.comments[0].text, "unsafe in a comment");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'a'; }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Lifetime(_)))
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| matches!(&t.tok, Tok::Literal(s) if s == "a"))
            .collect();
        assert_eq!(chars.len(), 1);
    }

    #[test]
    fn lines_are_tracked_across_literals() {
        let src = "let a = \"x\ny\";\nunsafe {}\n";
        let lexed = lex(src);
        let pos = lexed
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("unsafe".into()))
            .unwrap();
        assert_eq!(pos.line, 3);
    }

    #[test]
    fn numbers_keep_hex_and_suffixes_but_not_ranges() {
        let lexed = lex("0x7F + 16 << 20; 0..n; 2.5f32");
        let nums: Vec<_> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Num(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec!["0x7F", "16", "20", "0", "2.5f32"]);
    }

    #[test]
    fn byte_and_raw_strings_capture_content() {
        let lexed = lex(r##"const M: [u8; 4] = *b"DMSV"; let r = r#"a"b"#;"##);
        let lits: Vec<_> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Literal(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(lits, vec!["DMSV", "a\"b"]);
    }
}
