//! `deepmorph-analyze` — the workspace's static invariant checker.
//!
//! Run from the repository root:
//!
//! ```text
//! cargo run -p deepmorph-analyze --release            # human report
//! cargo run -p deepmorph-analyze --release -- --json  # machine report
//! ```
//!
//! Four checkers (see each module's docs): the unsafe audit
//! ([`unsafe_audit`]), the atomic-ordering lint ([`atomics`]), the
//! hot-path allocation lint ([`alloc_lint`]), and wire-layout pinning
//! ([`layout`]). Configuration lives in `analyze.toml`; suppressions in
//! `analyze.allow` (one per line, stale entries are themselves
//! findings). Exit code 0 = clean, 1 = findings, 2 = bad setup.

mod alloc_lint;
mod allowlist;
mod atomics;
mod config;
mod layout;
mod lexer;
mod report;
mod source;
mod unsafe_audit;

use allowlist::Allowlist;
use config::AnalyzeConfig;
use report::{Finding, Report};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const CONFIG_FILE: &str = "analyze.toml";
const ALLOW_FILE: &str = "analyze.allow";

fn main() -> ExitCode {
    let mut json = false;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage("--root needs a path"),
            },
            "--help" | "-h" => {
                eprintln!("usage: deepmorph-analyze [--json] [--root <dir>]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    let report = match run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("deepmorph-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("deepmorph-analyze: {msg}");
    eprintln!("usage: deepmorph-analyze [--json] [--root <dir>]");
    ExitCode::from(2)
}

/// Loads config + allowlist, scans the workspace, runs all checkers.
fn run(root: &Path) -> Result<Report, String> {
    let cfg_path = root.join(CONFIG_FILE);
    let cfg_text =
        std::fs::read_to_string(&cfg_path).map_err(|e| format!("{}: {e}", cfg_path.display()))?;
    let cfg = AnalyzeConfig::from_toml(&cfg_text).map_err(|e| format!("{CONFIG_FILE}: {e}"))?;

    let allow = match std::fs::read_to_string(root.join(ALLOW_FILE)) {
        Ok(text) => Allowlist::parse(&text).map_err(|e| format!("{ALLOW_FILE}: {e}"))?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Allowlist::empty(),
        Err(e) => return Err(format!("{ALLOW_FILE}: {e}")),
    };

    let golden_path = root.join(&cfg.wire_golden);
    let golden_text = std::fs::read_to_string(&golden_path)
        .map_err(|e| format!("{}: {e}", golden_path.display()))?;
    let golden = layout::GoldenLayout::parse(&golden_text)
        .map_err(|e| format!("{}: {e}", cfg.wire_golden))?;

    let files =
        source::walk_workspace(root, &cfg.roots).map_err(|e| format!("workspace walk: {e}"))?;
    if files.is_empty() {
        return Err(format!(
            "no .rs files under configured roots {:?}",
            cfg.roots
        ));
    }

    let mut findings = Vec::new();
    let mut inventory = Vec::new();
    let mut saw_protocol = false;
    for file in &files {
        unsafe_audit::check(file, &allow, &mut findings, &mut inventory);
        if atomics::in_scope(file, &cfg.atomics_paths) {
            atomics::check(file, &allow, &mut findings);
        }
        if let Some(scope) = alloc_lint::scope_for(file, &cfg.no_alloc) {
            alloc_lint::check(file, scope, &allow, &mut findings);
        }
        if file.rel_path == cfg.wire_protocol {
            saw_protocol = true;
            layout::check(file, &golden, &allow, &mut findings);
        }
    }
    if !saw_protocol {
        return Err(format!(
            "wire_layout protocol file {:?} not found under configured roots",
            cfg.wire_protocol
        ));
    }

    // Suppressions that matched nothing are dead weight — flag them so
    // the allowlist can only shrink as violations get fixed.
    for e in allow.stale() {
        findings.push(Finding {
            checker: "allowlist",
            path: ALLOW_FILE.to_string(),
            line: e.line,
            key: format!("{}:{}:{}", e.checker, e.path, e.key),
            message: format!(
                "stale allowlist entry `{} {} {}` matched no finding — remove it",
                e.checker, e.path, e.key
            ),
        });
    }

    Ok(Report {
        files_scanned: files.len(),
        allow_entries: allow.len(),
        findings,
        unsafe_inventory: inventory,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end over a synthetic workspace in a temp dir: seeded
    /// violations for every checker surface as findings, and the fixed
    /// variant comes back clean.
    #[test]
    fn end_to_end_over_temp_workspace() {
        let dir =
            std::env::temp_dir().join(format!("deepmorph-analyze-e2e-{}", std::process::id()));
        let src = dir.join("crates/serve/src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(
            dir.join(CONFIG_FILE),
            r#"
[workspace]
roots = ["crates"]
[atomics]
paths = ["crates/serve"]
[no_alloc]
"crates/serve/src/hot.rs" = "*"
[wire_layout]
protocol = "crates/serve/src/protocol.rs"
golden = "wire_layout.golden"
"#,
        )
        .unwrap();
        std::fs::write(
            dir.join("wire_layout.golden"),
            "const KIND_PING 0\nstats 0 requests\n",
        )
        .unwrap();
        std::fs::write(
            src.join("protocol.rs"),
            "const KIND_PING: u8 = 0;\nfn stats_values(s: &S) -> [u64; 1] { [s.requests] }\nfn enc(r: &Response) { match r { Response::Stats(s) => { for v in [s.requests] { use_(v); } } } }\n",
        )
        .unwrap();
        std::fs::write(
            src.join("hot.rs"),
            "fn hot() { let v: Vec<u8> = Vec::new(); }\nfn arm() { unsafe { g() }; A.store(1, Ordering::SeqCst); }\n",
        )
        .unwrap();

        let report = run(&dir).unwrap();
        let keys: Vec<_> = report.findings.iter().map(|f| f.key.as_str()).collect();
        assert!(keys.contains(&"fn:hot:Vec::new"), "{keys:?}");
        assert!(keys.contains(&"block:arm"), "{keys:?}");
        assert!(keys.contains(&"seqcst:arm"), "{keys:?}");
        assert_eq!(report.unsafe_inventory.len(), 1);

        // Fix the seeded violations; the run comes back clean.
        std::fs::write(
            src.join("hot.rs"),
            "fn arm() {\n    // SAFETY: g is a no-op stub.\n    unsafe { g() };\n    // ORDERING: fences the arming flag against hot().\n    A.store(1, Ordering::SeqCst);\n}\n",
        )
        .unwrap();
        let report = run(&dir).unwrap();
        assert!(report.clean(), "{:?}", report.findings);

        std::fs::remove_dir_all(&dir).ok();
    }
}
