//! The suppression allowlist (`analyze.allow`).
//!
//! One entry per line — `<checker> <path> <key>` — so every suppression
//! is a reviewable one-line diff. `#` starts a comment. The `key` is
//! checker-specific (e.g. `fn:new:Vec::new` for the allocation lint).
//! Entries that never match anything are themselves reported as stale,
//! so the file can only shrink once a violation is fixed.

use std::cell::RefCell;

/// One allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    pub checker: String,
    pub path: String,
    pub key: String,
    pub line: u32,
}

/// The parsed allowlist, with per-entry usage tracking.
pub struct Allowlist {
    entries: Vec<Entry>,
    used: RefCell<Vec<bool>>,
}

impl Allowlist {
    /// An empty allowlist (the default when the file doesn't exist).
    pub fn empty() -> Allowlist {
        Allowlist {
            entries: Vec::new(),
            used: RefCell::new(Vec::new()),
        }
    }

    /// Parses allowlist text; malformed lines are hard errors.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some(checker), Some(path), Some(key), None) => entries.push(Entry {
                    checker: checker.to_string(),
                    path: path.to_string(),
                    key: key.to_string(),
                    line: idx as u32 + 1,
                }),
                _ => {
                    return Err(format!(
                        "allowlist line {}: expected `<checker> <path> <key>`, got {raw:?}",
                        idx + 1
                    ))
                }
            }
        }
        let used = RefCell::new(vec![false; entries.len()]);
        Ok(Allowlist { entries, used })
    }

    /// True when `(checker, path, key)` is suppressed; marks the
    /// matching entry as used.
    pub fn allows(&self, checker: &str, path: &str, key: &str) -> bool {
        for (i, e) in self.entries.iter().enumerate() {
            if e.checker == checker && e.path == path && e.key == key {
                self.used.borrow_mut()[i] = true;
                return true;
            }
        }
        false
    }

    /// Entries that never matched a finding — stale suppressions.
    pub fn stale(&self) -> Vec<Entry> {
        let used = self.used.borrow();
        self.entries
            .iter()
            .enumerate()
            .filter(|&(i, _)| !used[i])
            .map(|(_, e)| e.clone())
            .collect()
    }

    /// Entry count (for the report summary).
    pub fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_tracks_usage() {
        let a = Allowlist::parse(
            "# init-time allocation\nalloc crates/x.rs fn:new:Vec::new\nalloc crates/y.rs global:format!\n",
        )
        .unwrap();
        assert_eq!(a.len(), 2);
        assert!(a.allows("alloc", "crates/x.rs", "fn:new:Vec::new"));
        assert!(!a.allows("alloc", "crates/x.rs", "fn:other:Vec::new"));
        assert!(!a.allows("unsafe", "crates/x.rs", "fn:new:Vec::new"));
        let stale = a.stale();
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].path, "crates/y.rs");
    }

    #[test]
    fn malformed_line_errors() {
        assert!(Allowlist::parse("alloc missing-key\n").is_err());
    }
}
