//! `analyze.toml` — analyzer configuration.
//!
//! The workspace bans crates.io dependencies, so this is a small
//! hand-rolled parser for the TOML subset the config actually uses:
//! `[section]` headers, string values, string arrays (single- or
//! multi-line), quoted keys, and `#` comments. Anything outside that
//! subset is a hard error — config typos should fail the run, not be
//! silently skipped.

use std::collections::BTreeMap;

/// A parsed value: a string or an array of strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    Str(String),
    Arr(Vec<String>),
}

/// One `[no_alloc]` entry: a file (or directory prefix) and the
/// functions the ban is scoped to — `None` means the whole file.
#[derive(Debug, Clone)]
pub struct NoAllocScope {
    pub path: String,
    pub functions: Option<Vec<String>>,
}

/// The analyzer's full configuration.
#[derive(Debug, Clone)]
pub struct AnalyzeConfig {
    /// Directories (relative to the root) whose `.rs` files are scanned.
    pub roots: Vec<String>,
    /// Hot paths where allocation calls are banned.
    pub no_alloc: Vec<NoAllocScope>,
    /// Path prefixes the atomic-ordering lint applies to.
    pub atomics_paths: Vec<String>,
    /// Path of the wire-protocol source to pin.
    pub wire_protocol: String,
    /// Path of the checked-in golden layout spec.
    pub wire_golden: String,
}

impl AnalyzeConfig {
    /// Parses the config from TOML text.
    pub fn from_toml(text: &str) -> Result<AnalyzeConfig, String> {
        let sections = parse_toml(text)?;
        let get = |section: &str, key: &str| -> Option<&Value> {
            sections
                .get(section)?
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
        };
        let str_of = |section: &str, key: &str| -> Result<String, String> {
            match get(section, key) {
                Some(Value::Str(s)) => Ok(s.clone()),
                Some(Value::Arr(_)) => Err(format!("[{section}] {key}: expected a string")),
                None => Err(format!("[{section}] {key}: missing")),
            }
        };
        let arr_of = |section: &str, key: &str| -> Result<Vec<String>, String> {
            match get(section, key) {
                Some(Value::Arr(a)) => Ok(a.clone()),
                Some(Value::Str(_)) => Err(format!("[{section}] {key}: expected an array")),
                None => Err(format!("[{section}] {key}: missing")),
            }
        };

        let mut no_alloc = Vec::new();
        if let Some(entries) = sections.get("no_alloc") {
            for (path, v) in entries {
                let functions = match v {
                    Value::Str(s) if s == "*" => None,
                    Value::Str(s) => {
                        return Err(format!(
                            "[no_alloc] {path}: expected \"*\" or a function array, got {s:?}"
                        ))
                    }
                    Value::Arr(fns) => Some(fns.clone()),
                };
                no_alloc.push(NoAllocScope {
                    path: path.clone(),
                    functions,
                });
            }
        }

        Ok(AnalyzeConfig {
            roots: arr_of("workspace", "roots")?,
            no_alloc,
            atomics_paths: arr_of("atomics", "paths")?,
            wire_protocol: str_of("wire_layout", "protocol")?,
            wire_golden: str_of("wire_layout", "golden")?,
        })
    }
}

type Sections = BTreeMap<String, Vec<(String, Value)>>;

/// Parses the supported TOML subset into section → key/value pairs.
/// Keys keep their section-local order (it matters for report output).
fn parse_toml(text: &str) -> Result<Sections, String> {
    let mut sections: Sections = BTreeMap::new();
    let mut current = String::new();
    let mut lines = text.lines().enumerate();
    while let Some((idx, raw)) = lines.next() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let name = rest
                .strip_suffix(']')
                .ok_or(format!("line {lineno}: unterminated section header"))?;
            current = name.trim().trim_matches('"').to_string();
            sections.entry(current.clone()).or_default();
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or(format!("line {lineno}: expected `key = value`"))?;
        let key = key.trim().trim_matches('"').to_string();
        let mut value = value.trim().to_string();
        // Multi-line arrays: accumulate until the closing bracket.
        while value.starts_with('[') && !balanced_array(&value) {
            let (_, cont) = lines
                .next()
                .ok_or(format!("line {lineno}: unterminated array"))?;
            value.push(' ');
            value.push_str(strip_comment(cont).trim());
        }
        let parsed = parse_value(&value).map_err(|e| format!("line {lineno}: {e}"))?;
        if current.is_empty() {
            return Err(format!("line {lineno}: key before any [section]"));
        }
        sections.get_mut(&current).unwrap().push((key, parsed));
    }
    Ok(sections)
}

/// Strips a `#` comment, respecting `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn balanced_array(s: &str) -> bool {
    s.trim_end().ends_with(']')
}

fn parse_value(s: &str) -> Result<Value, String> {
    let s = s.trim();
    if let Some(inner) = s.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or("unterminated array".to_string())?;
        let mut items = Vec::new();
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue; // trailing comma
            }
            items.push(parse_string(part)?);
        }
        return Ok(Value::Arr(items));
    }
    Ok(Value::Str(parse_string(s)?))
}

fn parse_string(s: &str) -> Result<String, String> {
    let s = s.trim();
    s.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_string)
        .ok_or(format!("expected a quoted string, got {s:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# comment
[workspace]
roots = ["crates", "src"]

[no_alloc]
"crates/tensor/src/workspace.rs" = "*"
"crates/telemetry/src/lib.rs" = [
    "record",  # scoped
    "add",
]

[atomics]
paths = ["crates/telemetry"]

[wire_layout]
protocol = "crates/serve/src/protocol.rs"
golden = "crates/serve/wire_layout.golden"
"#;

    #[test]
    fn parses_full_config() {
        let cfg = AnalyzeConfig::from_toml(SAMPLE).unwrap();
        assert_eq!(cfg.roots, vec!["crates", "src"]);
        assert_eq!(cfg.no_alloc.len(), 2);
        assert_eq!(cfg.no_alloc[0].path, "crates/tensor/src/workspace.rs");
        assert!(cfg.no_alloc[0].functions.is_none());
        assert_eq!(
            cfg.no_alloc[1].functions.as_deref(),
            Some(&["record".to_string(), "add".to_string()][..])
        );
        assert_eq!(cfg.wire_golden, "crates/serve/wire_layout.golden");
    }

    #[test]
    fn missing_key_is_an_error() {
        let err = AnalyzeConfig::from_toml("[workspace]\n").unwrap_err();
        assert!(err.contains("roots"), "err: {err}");
    }

    #[test]
    fn bad_scope_value_is_an_error() {
        let toml = r#"
[workspace]
roots = ["crates"]
[atomics]
paths = []
[wire_layout]
protocol = "p"
golden = "g"
[no_alloc]
"x.rs" = "sometimes"
"#;
        let err = AnalyzeConfig::from_toml(toml).unwrap_err();
        assert!(err.contains("function array"), "err: {err}");
    }
}
