//! Checker 2: the atomic-ordering lint.
//!
//! Scoped to the configured arming seams (`telemetry`, `faults`,
//! `parallel`). Two rules, both silenced by an adjacent `// ORDERING:`
//! justification:
//!
//! 1. `Ordering::SeqCst` is flagged — SeqCst is the "didn't think about
//!    it" default, and the arming paths are hot; each surviving use must
//!    say which store/load fence it actually needs.
//! 2. A `Relaxed` *store* to an atomic that elsewhere in the same file
//!    is *loaded* with `Acquire` is flagged at the store: an Acquire
//!    load only synchronizes against a Release (or stronger) store, so
//!    the pairing is a silent no-op.
//!
//! Test code is exempt: tests routinely use SeqCst for simplicity.

use crate::allowlist::Allowlist;
use crate::lexer::Tok;
use crate::report::Finding;
use crate::source::SourceFile;

const STORE_METHODS: &[&str] = &[
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// One atomic access: receiver field name, orderings named in the call
/// arguments, and the source line.
struct Access {
    receiver: String,
    orderings: Vec<String>,
    line: u32,
}

/// True when `file` falls under any configured atomics path prefix.
pub fn in_scope(file: &SourceFile, paths: &[String]) -> bool {
    paths
        .iter()
        .any(|p| file.rel_path == *p || file.rel_path.starts_with(&format!("{p}/")))
}

/// Runs the lint over one in-scope file.
pub fn check(file: &SourceFile, allow: &Allowlist, findings: &mut Vec<Finding>) {
    let tokens = &file.lexed.tokens;
    let mut stores: Vec<Access> = Vec::new();
    let mut loads: Vec<Access> = Vec::new();

    for (i, t) in tokens.iter().enumerate() {
        let Tok::Ident(name) = &t.tok else { continue };

        // Rule 1: any SeqCst mention outside tests needs ORDERING:.
        if name == "SeqCst" && !file.is_test_line(t.line) {
            if !file.has_adjacent_marker(t.line, "ORDERING:") {
                let key = format!("seqcst:{}", file.enclosing_fn(t.line).unwrap_or("top"));
                if !allow.allows("atomics", &file.rel_path, &key) {
                    findings.push(Finding {
                        checker: "atomics",
                        path: file.rel_path.clone(),
                        line: t.line,
                        key,
                        message: "Ordering::SeqCst without an `// ORDERING:` justification \
                                  (downgrade, or document the store/load fence it provides)"
                            .to_string(),
                    });
                }
            }
            continue;
        }

        // Collect `.method(…, Ordering::X, …)` accesses for rule 2.
        let is_store = STORE_METHODS.contains(&name.as_str());
        let is_load = name == "load";
        if !is_store && !is_load {
            continue;
        }
        if !matches!(
            tokens.get(i.wrapping_sub(1)).map(|t| &t.tok),
            Some(Tok::Punct('.'))
        ) {
            continue;
        }
        if file.is_test_line(t.line) {
            continue;
        }
        let Some(receiver) = receiver_name(tokens, i - 1) else {
            continue;
        };
        let Some(orderings) = call_orderings(tokens, i + 1) else {
            continue;
        };
        let access = Access {
            receiver,
            orderings,
            line: t.line,
        };
        if is_store {
            stores.push(access);
        } else {
            loads.push(access);
        }
    }

    // Rule 2: Relaxed store paired (per file, by field name) with an
    // Acquire load. Justified at either end with ORDERING:.
    for st in &stores {
        if !st.orderings.iter().any(|o| o == "Relaxed") {
            continue;
        }
        let Some(ld) = loads
            .iter()
            .find(|l| l.receiver == st.receiver && l.orderings.iter().any(|o| o == "Acquire"))
        else {
            continue;
        };
        if file.has_adjacent_marker(st.line, "ORDERING:")
            || file.has_adjacent_marker(ld.line, "ORDERING:")
        {
            continue;
        }
        let key = format!("pair:{}", st.receiver);
        if allow.allows("atomics", &file.rel_path, &key) {
            continue;
        }
        findings.push(Finding {
            checker: "atomics",
            path: file.rel_path.clone(),
            line: st.line,
            key,
            message: format!(
                "Relaxed store to `{}` paired with an Acquire load (line {}): \
                 the Acquire synchronizes only against Release-or-stronger stores",
                st.receiver, ld.line
            ),
        });
    }
}

/// The field name the method is called on: the identifier immediately
/// before the `.` at `dot` (e.g. `self.entered.store` → `entered`).
fn receiver_name(tokens: &[crate::lexer::Token], dot: usize) -> Option<String> {
    match &tokens.get(dot.checked_sub(1)?)?.tok {
        Tok::Ident(name) => Some(name.clone()),
        // Tuple-struct field access like `self.0.store(...)`.
        Tok::Num(n) => Some(n.clone()),
        // `foo().store(...)`, `arr[i].store(...)`: no stable field name
        // to pair on — skip rather than alias unrelated call-chains.
        _ => None,
    }
}

/// Orderings named inside the call's parenthesized argument list
/// starting at `open` (which must be `(`). `None` when not a call.
fn call_orderings(tokens: &[crate::lexer::Token], open: usize) -> Option<Vec<String>> {
    if !matches!(tokens.get(open).map(|t| &t.tok), Some(Tok::Punct('('))) {
        return None;
    }
    let mut depth = 0u32;
    let mut orderings = Vec::new();
    for t in &tokens[open..] {
        match &t.tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            Tok::Ident(name)
                if matches!(
                    name.as_str(),
                    "Relaxed" | "Acquire" | "Release" | "AcqRel" | "SeqCst"
                ) =>
            {
                orderings.push(name.clone());
            }
            _ => {}
        }
    }
    Some(orderings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let file = SourceFile::from_source("crates/telemetry/src/lib.rs".into(), src);
        let mut findings = Vec::new();
        check(&file, &Allowlist::empty(), &mut findings);
        findings
    }

    #[test]
    fn unjustified_seqcst_is_a_finding() {
        let findings = run("fn arm() {\n    ACTIVE.store(true, Ordering::SeqCst);\n}\n");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].key, "seqcst:arm");
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn ordering_comment_justifies_seqcst() {
        let findings = run(
            "fn arm() {\n    // ORDERING: store-load fence against the worker's entered check.\n    ACTIVE.store(true, Ordering::SeqCst);\n}\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn relaxed_store_acquire_load_pair_is_flagged() {
        let findings = run(
            "fn arm() {\n    ACTIVE.store(true, Ordering::Relaxed);\n}\nfn armed() -> bool {\n    ACTIVE.load(Ordering::Acquire)\n}\n",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].key, "pair:ACTIVE");
        assert_eq!(findings[0].line, 2);
        assert!(findings[0].message.contains("line 5"));
    }

    #[test]
    fn release_store_acquire_load_is_clean() {
        let findings = run(
            "fn arm() {\n    ACTIVE.store(true, Ordering::Release);\n}\nfn armed() -> bool {\n    ACTIVE.load(Ordering::Acquire)\n}\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn distinct_fields_do_not_pair() {
        let findings = run(
            "fn f() {\n    a.store(1, Ordering::Relaxed);\n    b.load(Ordering::Acquire);\n}\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn seqcst_in_tests_is_exempt() {
        let findings = run(
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { X.store(1, Ordering::SeqCst); }\n}\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn scope_matches_file_and_dir_prefixes() {
        let f = SourceFile::from_source("crates/telemetry/src/lib.rs".into(), "");
        assert!(in_scope(&f, &["crates/telemetry".into()]));
        assert!(in_scope(&f, &["crates/telemetry/src/lib.rs".into()]));
        assert!(!in_scope(&f, &["crates/tele".into()]));
    }
}
