//! Workspace file discovery and per-file source model.
//!
//! A [`SourceFile`] bundles the lexed token stream with three derived
//! views every checker needs: the raw lines (for adjacent-comment
//! lookups), the `#[cfg(test)]` line regions (so test-only code is
//! exempt from production lints), and the enclosing-function map (so
//! findings and scoped configs can name the function they hit).

use crate::lexer::{self, Lexed, Tok, Token};
use std::path::{Path, PathBuf};

/// One workspace `.rs` file, lexed and indexed.
pub struct SourceFile {
    /// Path relative to the analysis root, with `/` separators.
    pub rel_path: String,
    /// Raw source lines (0-indexed; line N of the file is `lines[N-1]`).
    pub lines: Vec<String>,
    /// Token stream and comments.
    pub lexed: Lexed,
    /// Inclusive 1-based line ranges that are inside `#[cfg(test)]`
    /// items/modules or `#[test]` functions.
    test_regions: Vec<(u32, u32)>,
    /// Function spans: `(name, start_line, end_line)`, in source order.
    /// Nested functions appear after their parent; lookup picks the
    /// innermost (latest-starting) span containing a line.
    fn_spans: Vec<(String, u32, u32)>,
}

impl SourceFile {
    /// Loads and indexes one file. `rel_path` should already be
    /// root-relative with `/` separators.
    pub fn load(abs: &Path, rel_path: String) -> std::io::Result<SourceFile> {
        let src = std::fs::read_to_string(abs)?;
        Ok(Self::from_source(rel_path, &src))
    }

    /// Builds the model from in-memory source (used by fixture tests).
    pub fn from_source(rel_path: String, src: &str) -> SourceFile {
        let lexed = lexer::lex(src);
        let test_regions = find_test_regions(&lexed.tokens);
        let fn_spans = find_fn_spans(&lexed.tokens);
        SourceFile {
            rel_path,
            lines: src.lines().map(str::to_string).collect(),
            lexed,
            test_regions,
            fn_spans,
        }
    }

    /// True when `line` is inside `#[cfg(test)]` / `#[test]` code, or the
    /// whole file lives under a `tests/` or `benches/` directory.
    pub fn is_test_line(&self, line: u32) -> bool {
        if self.rel_path.contains("/tests/") || self.rel_path.contains("/benches/") {
            return true;
        }
        self.test_regions
            .iter()
            .any(|&(s, e)| s <= line && line <= e)
    }

    /// Name of the innermost function containing `line`, if any.
    pub fn enclosing_fn(&self, line: u32) -> Option<&str> {
        self.fn_spans
            .iter()
            .rfind(|&&(_, s, e)| s <= line && line <= e)
            .map(|(name, _, _)| name.as_str())
    }

    /// The raw text of `line` (1-based), or `""` past EOF.
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get(line as usize - 1)
            .map(String::as_str)
            .unwrap_or("")
    }

    /// Walks upward from the line above `line` through contiguous
    /// comment/attribute lines (stopping at the first blank or code
    /// line) and returns true if any comment on the way — or on `line`
    /// itself — contains `marker` (e.g. `"SAFETY:"`).
    ///
    /// The walk first hops to the start of the enclosing statement:
    /// rustfmt splits long calls across lines, so the marked token may
    /// sit lines below the comment with only continuation lines (lines
    /// above that end mid-expression) in between.
    pub fn has_adjacent_marker(&self, line: u32, marker: &str) -> bool {
        let line_has = |l: u32| {
            self.lexed
                .comments_on_line(l)
                .any(|c| c.text.contains(marker))
        };
        if line_has(line) {
            return true;
        }
        let mut l = line;
        // Hop over continuation lines of the same statement. A line
        // ending in `;`, `{`, or `}` (or a blank/comment line) finishes
        // whatever came before it, so the statement starts below it.
        while l > 1 {
            let above = self.line_text(l - 1).trim();
            let ends_statement = above.is_empty()
                || above.starts_with("//")
                || above.ends_with(';')
                || above.ends_with('{')
                || above.ends_with('}');
            if ends_statement || self.lexed.comments_on_line(l - 1).next().is_some() {
                break;
            }
            if line_has(l - 1) {
                return true; // trailing marker on a continuation line
            }
            l -= 1;
        }
        while l > 1 {
            l -= 1;
            let text = self.line_text(l).trim();
            let is_attr = text.starts_with("#[") || text.starts_with("#![");
            let is_comment =
                text.starts_with("//") || self.lexed.comments_on_line(l).next().is_some();
            if text.is_empty() || (!is_attr && !is_comment) {
                return false;
            }
            if line_has(l) {
                return true;
            }
        }
        false
    }

    /// Like [`Self::has_adjacent_marker`] but also accepts a doc-comment
    /// `# Safety` section heading (the idiomatic form on `unsafe fn`).
    pub fn has_safety_docs(&self, line: u32) -> bool {
        if self.has_adjacent_marker(line, "SAFETY:") {
            return true;
        }
        let mut l = line;
        while l > 1 {
            l -= 1;
            let text = self.line_text(l).trim();
            let is_attr = text.starts_with("#[") || text.starts_with("#![");
            let is_comment =
                text.starts_with("//") || self.lexed.comments_on_line(l).next().is_some();
            if text.is_empty() || (!is_attr && !is_comment) {
                return false;
            }
            if self
                .lexed
                .comments_on_line(l)
                .any(|c| c.text.contains("# Safety"))
            {
                return true;
            }
        }
        false
    }
}

/// Collects all `.rs` files under `root/<r>` for each configured root
/// dir, returning them sorted by relative path for stable reports.
pub fn walk_workspace(root: &Path, roots: &[String]) -> std::io::Result<Vec<SourceFile>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    for r in roots {
        let dir = root.join(r);
        if dir.is_dir() {
            collect_rs(&dir, &mut paths)?;
        } else if dir.extension().is_some_and(|e| e == "rs") && dir.is_file() {
            paths.push(dir);
        }
    }
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for p in &paths {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(p)
            .to_string_lossy()
            .replace('\\', "/");
        files.push(SourceFile::load(p, rel)?);
    }
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Finds line regions covered by `#[cfg(test)]` items and `#[test]`
/// functions by scanning the token stream: when a test attribute is
/// seen, the following item's body (to the matching `}`, or a `;`) is
/// recorded as a test region.
fn find_test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if let Some(after) = match_test_attr(tokens, i) {
            let start_line = tokens[i].line;
            let end = skip_item(tokens, after);
            let end_line = tokens
                .get(end.saturating_sub(1))
                .map(|t| t.line)
                .unwrap_or(start_line);
            regions.push((start_line, end_line));
            i = end;
        } else {
            i += 1;
        }
    }
    regions
}

/// If `tokens[i..]` starts a `#[…test…]` attribute (either `#[test]` or
/// `#[cfg(test)]` / `#[cfg(all(test, …))]`), returns the index just
/// past the closing `]`.
fn match_test_attr(tokens: &[Token], i: usize) -> Option<usize> {
    if tokens.get(i)?.tok != Tok::Punct('#') || tokens.get(i + 1)?.tok != Tok::Punct('[') {
        return None;
    }
    let mut depth = 1u32;
    let mut j = i + 2;
    let mut saw_test = false;
    let mut saw_cfg_or_bare = false;
    // The attribute's first token tells the kind: a bare `test`, or
    // `cfg(...)` whose arguments mention `test`.
    match &tokens.get(i + 2)?.tok {
        Tok::Ident(name) if name == "test" => saw_cfg_or_bare = true,
        Tok::Ident(name) if name == "cfg" => saw_cfg_or_bare = true,
        _ => {}
    }
    while depth > 0 {
        let t = tokens.get(j)?;
        match &t.tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => depth -= 1,
            Tok::Ident(name) if name == "test" => saw_test = true,
            _ => {}
        }
        j += 1;
    }
    (saw_cfg_or_bare && saw_test).then_some(j)
}

/// Skips one item starting at `i` (past any further attributes): scans
/// to the first `{` and returns the index past its matching `}`, or
/// past a terminating `;` if one comes first (e.g. `use` declarations).
fn skip_item(tokens: &[Token], mut i: usize) -> usize {
    // Skip stacked attributes between the test attr and the item.
    while tokens.get(i).map(|t| &t.tok) == Some(&Tok::Punct('#'))
        && tokens.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct('['))
    {
        let mut depth = 1u32;
        i += 2;
        while depth > 0 {
            match tokens.get(i).map(|t| &t.tok) {
                Some(Tok::Punct('[')) => depth += 1,
                Some(Tok::Punct(']')) => depth -= 1,
                None => return i,
                _ => {}
            }
            i += 1;
        }
    }
    while let Some(t) = tokens.get(i) {
        match t.tok {
            Tok::Punct(';') => return i + 1,
            Tok::Punct('{') => {
                let mut depth = 1u32;
                i += 1;
                while depth > 0 {
                    match tokens.get(i).map(|t| &t.tok) {
                        Some(Tok::Punct('{')) => depth += 1,
                        Some(Tok::Punct('}')) => depth -= 1,
                        None => return i,
                        _ => {}
                    }
                    i += 1;
                }
                return i;
            }
            _ => i += 1,
        }
    }
    i
}

/// Builds `(name, start, end)` spans for every `fn`. Tracks brace depth
/// with a stack; when `fn name` is seen, the next `{` at or below the
/// current nesting opens that function's body.
fn find_fn_spans(tokens: &[Token]) -> Vec<(String, u32, u32)> {
    let mut spans: Vec<(String, u32, u32)> = Vec::new();
    // Stack of (span index) for currently-open function bodies, plus a
    // parallel brace-depth ledger so closings pop the right entry.
    let mut open: Vec<(usize, u32)> = Vec::new();
    let mut depth = 0u32;
    let mut pending: Option<(String, u32)> = None;
    // Paren/bracket nesting inside a pending signature, so the `;` in
    // an array type like `fn f(m: [u8; 4])` doesn't end the pending fn.
    let mut sig_nest = 0u32;
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i].tok {
            Tok::Ident(kw) if kw == "fn" => {
                if let Some(Tok::Ident(name)) = tokens.get(i + 1).map(|t| &t.tok) {
                    pending = Some((name.clone(), tokens[i].line));
                    sig_nest = 0;
                }
            }
            Tok::Punct('(') | Tok::Punct('[') if pending.is_some() => sig_nest += 1,
            Tok::Punct(')') | Tok::Punct(']') if pending.is_some() => {
                sig_nest = sig_nest.saturating_sub(1);
            }
            // A top-level `;` before the body: trait/extern fn decl.
            Tok::Punct(';') if sig_nest == 0 => pending = None,
            Tok::Punct('{') => {
                depth += 1;
                if let Some((name, start)) = pending.take() {
                    spans.push((name, start, 0));
                    open.push((spans.len() - 1, depth));
                }
            }
            Tok::Punct('}') => {
                if open.last().map(|&(_, d)| d) == Some(depth) {
                    let (idx, _) = open.pop().unwrap();
                    spans[idx].2 = tokens[i].line;
                }
                depth = depth.saturating_sub(1);
            }
            _ => {}
        }
        i += 1;
    }
    // Unterminated spans (truncated input) extend to the last token.
    let last_line = tokens.last().map(|t| t.line).unwrap_or(0);
    for (_, _, end) in spans.iter_mut() {
        if *end == 0 {
            *end = last_line;
        }
    }
    spans.sort_by_key(|&(_, s, _)| s);
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_regions_cover_cfg_test_modules() {
        let src = r#"
fn prod() { let v = 1; }

#[cfg(test)]
mod tests {
    #[test]
    fn t() { assert!(true); }
}
"#;
        let f = SourceFile::from_source("x.rs".into(), src);
        assert!(!f.is_test_line(2));
        assert!(f.is_test_line(5));
        assert!(f.is_test_line(7));
    }

    #[test]
    fn cfg_all_test_counts() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nfn helper() { body(); }\nfn prod() {}\n";
        let f = SourceFile::from_source("x.rs".into(), src);
        assert!(f.is_test_line(2));
        assert!(!f.is_test_line(3));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(feature = \"simd\")]\nfn prod() { body(); }\n";
        let f = SourceFile::from_source("x.rs".into(), src);
        assert!(!f.is_test_line(2));
    }

    #[test]
    fn enclosing_fn_picks_innermost() {
        let src = r#"
fn outer() {
    fn inner() {
        work();
    }
    other();
}
"#;
        let f = SourceFile::from_source("x.rs".into(), src);
        assert_eq!(f.enclosing_fn(4), Some("inner"));
        assert_eq!(f.enclosing_fn(6), Some("outer"));
        assert_eq!(f.enclosing_fn(1), None);
    }

    #[test]
    fn adjacent_marker_walks_over_attributes() {
        let src = r#"
// SAFETY: the pointer is valid for the whole call.
#[inline]
fn f() { g(); }
"#;
        let f = SourceFile::from_source("x.rs".into(), src);
        assert!(f.has_adjacent_marker(4, "SAFETY:"));
        assert!(!f.has_adjacent_marker(4, "ORDERING:"));
    }

    #[test]
    fn blank_line_breaks_adjacency() {
        let src = "// SAFETY: stale\n\nfn f() { g(); }\n";
        let f = SourceFile::from_source("x.rs".into(), src);
        assert!(!f.has_adjacent_marker(3, "SAFETY:"));
    }

    #[test]
    fn marker_reaches_tokens_on_continuation_lines() {
        // rustfmt-split statement: the marked token lands lines below
        // the comment, reachable only through continuation lines.
        let src = "fn f() {\n    // ORDERING: fence.\n    self.shared\n        .batch\n        .store(null, Ordering::SeqCst);\n}\n";
        let f = SourceFile::from_source("x.rs".into(), src);
        assert!(f.has_adjacent_marker(5, "ORDERING:"));
    }

    #[test]
    fn marker_does_not_leak_across_statement_boundaries() {
        let src =
            "fn f() {\n    // SAFETY: for g only.\n    g();\n    h(\n        arg,\n    );\n}\n";
        let f = SourceFile::from_source("x.rs".into(), src);
        // Line 6 is `);` — its statement starts at line 4, whose
        // neighbor above (`g();`) ends a different statement.
        assert!(!f.has_adjacent_marker(6, "SAFETY:"));
    }

    #[test]
    fn safety_docs_accept_doc_heading() {
        let src = r#"
/// Does the thing.
///
/// # Safety
/// Caller must uphold X.
unsafe fn f() {}
"#;
        let f = SourceFile::from_source("x.rs".into(), src);
        assert!(f.has_safety_docs(6));
    }
}
