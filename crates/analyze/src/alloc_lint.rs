//! Checker 3: the hot-path allocation lint.
//!
//! Files (or single functions) named in the `[no_alloc]` section of
//! `analyze.toml` must not allocate: `Vec::new`, `.to_vec()`,
//! `Box::new`, `format!`, `String::from`, and `.clone()` are banned
//! outside `#[cfg(test)]` code. This is the static twin of the runtime
//! counting-allocator test (`tests/alloc_regression.rs`): the dynamic
//! test proves the paths it happens to drive are clean, this lint
//! proves the listed code can't regress even on branches the test
//! doesn't reach.

use crate::allowlist::Allowlist;
use crate::config::NoAllocScope;
use crate::lexer::{Tok, Token};
use crate::report::Finding;
use crate::source::SourceFile;

/// The scope entry covering `file`, if any (most specific path wins).
pub fn scope_for<'a>(file: &SourceFile, scopes: &'a [NoAllocScope]) -> Option<&'a NoAllocScope> {
    scopes
        .iter()
        .filter(|s| file.rel_path == s.path || file.rel_path.starts_with(&format!("{}/", s.path)))
        .max_by_key(|s| s.path.len())
}

/// Runs the lint over one in-scope file.
pub fn check(
    file: &SourceFile,
    scope: &NoAllocScope,
    allow: &Allowlist,
    findings: &mut Vec<Finding>,
) {
    let tokens = &file.lexed.tokens;
    for (i, t) in tokens.iter().enumerate() {
        let Some(pattern) = match_banned(tokens, i) else {
            continue;
        };
        if file.is_test_line(t.line) {
            continue;
        }
        let ctx = file.enclosing_fn(t.line).unwrap_or("top");
        if let Some(fns) = &scope.functions {
            if !fns.iter().any(|f| f == ctx) {
                continue;
            }
        }
        let key = format!("fn:{ctx}:{pattern}");
        if allow.allows("alloc", &file.rel_path, &key) {
            continue;
        }
        findings.push(Finding {
            checker: "alloc",
            path: file.rel_path.clone(),
            line: t.line,
            key,
            message: format!(
                "no-alloc path `{ctx}` calls `{pattern}` (banned by analyze.toml [no_alloc])"
            ),
        });
    }
}

/// If the banned pattern starts at token `i`, returns its display name.
fn match_banned(tokens: &[Token], i: usize) -> Option<&'static str> {
    let ident = |j: usize, want: &str| matches!(tokens.get(j).map(|t| &t.tok), Some(Tok::Ident(n)) if n == want);
    let punct = |j: usize, want: char| matches!(tokens.get(j).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == want);
    let path_call = |head: &str, tail: &str| {
        ident(i, head) && punct(i + 1, ':') && punct(i + 2, ':') && ident(i + 3, tail)
    };
    let method_call = |name: &str| {
        // `.name(` — require the dot so `fn clone(` definitions and
        // free fns named `clone` don't match.
        punct(i.wrapping_sub(1), '.') && ident(i, name) && punct(i + 1, '(')
    };
    if path_call("Vec", "new") {
        return Some("Vec::new");
    }
    if path_call("Box", "new") {
        return Some("Box::new");
    }
    if path_call("String", "from") {
        return Some("String::from");
    }
    if ident(i, "format") && punct(i + 1, '!') {
        return Some("format!");
    }
    if method_call("to_vec") {
        return Some(".to_vec()");
    }
    if method_call("clone") {
        return Some(".clone()");
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str, functions: Option<Vec<&str>>) -> Vec<Finding> {
        let file = SourceFile::from_source("crates/x/src/hot.rs".into(), src);
        let scope = NoAllocScope {
            path: "crates/x/src/hot.rs".into(),
            functions: functions.map(|f| f.into_iter().map(str::to_string).collect()),
        };
        let mut findings = Vec::new();
        check(&file, &scope, &Allowlist::empty(), &mut findings);
        findings
    }

    #[test]
    fn vec_new_in_hot_path_is_a_finding() {
        let findings = run("fn hot() {\n    let v: Vec<u8> = Vec::new();\n}\n", None);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].key, "fn:hot:Vec::new");
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn all_six_patterns_are_caught() {
        let src = "fn hot(s: &S, b: &[u8]) {\n    let a = Vec::new();\n    let c = b.to_vec();\n    let d = Box::new(1);\n    let e = format!(\"{a:?}\");\n    let f = String::from(\"x\");\n    let g = s.clone();\n}\n";
        let findings = run(src, None);
        let patterns: Vec<_> = findings.iter().map(|f| f.key.as_str()).collect();
        assert_eq!(
            patterns,
            vec![
                "fn:hot:Vec::new",
                "fn:hot:.to_vec()",
                "fn:hot:Box::new",
                "fn:hot:format!",
                "fn:hot:String::from",
                "fn:hot:.clone()",
            ]
        );
    }

    #[test]
    fn clone_definitions_do_not_match() {
        let src = "impl Clone for S {\n    fn clone(&self) -> S { S }\n}\n";
        let findings = run(src, None);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let v = Vec::new(); }\n}\n";
        let findings = run(src, None);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn function_scoped_ban_ignores_other_fns() {
        let src = "fn hot() { let v = Vec::new(); }\nfn cold() { let v = Vec::new(); }\n";
        let findings = run(src, Some(vec!["hot"]));
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].key, "fn:hot:Vec::new");
    }

    #[test]
    fn allowlist_suppresses_one_site() {
        let file = SourceFile::from_source(
            "crates/x/src/hot.rs".into(),
            "fn init() { let v = Vec::new(); }\nfn hot() { let v = Vec::new(); }\n",
        );
        let scope = NoAllocScope {
            path: "crates/x/src/hot.rs".into(),
            functions: None,
        };
        let allow = Allowlist::parse("alloc crates/x/src/hot.rs fn:init:Vec::new\n").unwrap();
        let mut findings = Vec::new();
        check(&file, &scope, &allow, &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].key, "fn:hot:Vec::new");
    }

    #[test]
    fn most_specific_scope_wins() {
        let file = SourceFile::from_source("crates/x/src/hot.rs".into(), "");
        let scopes = vec![
            NoAllocScope {
                path: "crates/x".into(),
                functions: None,
            },
            NoAllocScope {
                path: "crates/x/src/hot.rs".into(),
                functions: Some(vec!["hot".into()]),
            },
        ];
        let s = scope_for(&file, &scopes).unwrap();
        assert!(s.functions.is_some());
    }
}
