//! Checker 1: the unsafe audit.
//!
//! Every `unsafe` block, `unsafe fn`, `unsafe impl`, and `unsafe trait`
//! in production code must carry an adjacent `// SAFETY:` justification
//! (an `unsafe fn` may use the idiomatic `# Safety` doc section
//! instead). The checker also builds the machine-readable inventory of
//! every unsafe site — documented or not, test or production — that the
//! `--json` report embeds.
//!
//! `unsafe` in function-pointer *types* (`unsafe extern "C" fn(...)`)
//! is not an unsafe site and is skipped.

use crate::allowlist::Allowlist;
use crate::lexer::Tok;
use crate::report::{Finding, UnsafeSite};
use crate::source::SourceFile;

/// Runs the audit over one file, appending findings and inventory rows.
pub fn check(
    file: &SourceFile,
    allow: &Allowlist,
    findings: &mut Vec<Finding>,
    inventory: &mut Vec<UnsafeSite>,
) {
    let tokens = &file.lexed.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if !matches!(&t.tok, Tok::Ident(kw) if kw == "unsafe") {
            continue;
        }
        let Some((kind, name)) = classify(tokens, i) else {
            continue; // fn-pointer type, not a site
        };
        let line = t.line;
        let documented = match kind {
            "fn" => file.has_safety_docs(line),
            _ => file.has_adjacent_marker(line, "SAFETY:"),
        };
        let context = file.enclosing_fn(line).map(str::to_string);
        inventory.push(UnsafeSite {
            path: file.rel_path.clone(),
            line,
            kind,
            context: context.clone(),
            documented,
        });
        if documented || file.is_test_line(line) {
            continue;
        }
        let key = match kind {
            "block" => format!("block:{}", context.as_deref().unwrap_or("top")),
            _ => format!("{kind}:{name}"),
        };
        if allow.allows("unsafe", &file.rel_path, &key) {
            continue;
        }
        let what = match kind {
            "block" => "unsafe block".to_string(),
            _ => format!("unsafe {kind} `{name}`"),
        };
        let want = if kind == "fn" {
            "`// SAFETY:` comment or a `# Safety` doc section"
        } else {
            "`// SAFETY:` comment"
        };
        findings.push(Finding {
            checker: "unsafe",
            path: file.rel_path.clone(),
            line,
            key,
            message: format!("{what} without an adjacent {want}"),
        });
    }
}

/// Classifies the `unsafe` at token index `i`. Returns `(kind, name)`
/// or `None` when it introduces a fn-pointer type rather than a site.
fn classify(tokens: &[crate::lexer::Token], i: usize) -> Option<(&'static str, String)> {
    let tok_at = |j: usize| tokens.get(j).map(|t| &t.tok);
    let mut j = i + 1;
    // `unsafe extern "C" fn …` — step over the extern ABI.
    if matches!(tok_at(j), Some(Tok::Ident(kw)) if kw == "extern") {
        j += 1;
        if matches!(tok_at(j), Some(Tok::Literal(_))) {
            j += 1;
        }
    }
    match tok_at(j)? {
        Tok::Ident(kw) if kw == "fn" => match tok_at(j + 1) {
            Some(Tok::Ident(name)) => Some(("fn", name.clone())),
            _ => None, // `unsafe fn(...)` type position
        },
        Tok::Ident(kw) if kw == "impl" => {
            // `unsafe impl [<…>] Trait for Type` — name it Trait:Type
            // (or just Trait for a trait-less inherent impl).
            let mut names = Vec::new();
            let mut k = j + 1;
            let mut angle = 0u32;
            while let Some(t) = tok_at(k) {
                match t {
                    Tok::Punct('<') => angle += 1,
                    Tok::Punct('>') => angle = angle.saturating_sub(1),
                    Tok::Punct('{') | Tok::Punct(';') => break,
                    Tok::Ident(n) if angle == 0 && n != "for" => names.push(n.clone()),
                    _ => {}
                }
                k += 1;
            }
            Some(("impl", names.join(":")))
        }
        Tok::Ident(kw) if kw == "trait" => match tok_at(j + 1) {
            Some(Tok::Ident(name)) => Some(("trait", name.clone())),
            _ => Some(("trait", String::new())),
        },
        _ => Some(("block", String::new())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> (Vec<Finding>, Vec<UnsafeSite>) {
        let file = SourceFile::from_source("crates/x/src/lib.rs".into(), src);
        let allow = Allowlist::empty();
        let mut findings = Vec::new();
        let mut inventory = Vec::new();
        check(&file, &allow, &mut findings, &mut inventory);
        (findings, inventory)
    }

    #[test]
    fn undocumented_block_is_a_finding() {
        let (findings, inv) = run("fn f() {\n    unsafe { g() };\n}\n");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 2);
        assert_eq!(findings[0].key, "block:f");
        assert!(!inv[0].documented);
    }

    #[test]
    fn safety_comment_satisfies_the_audit() {
        let (findings, inv) =
            run("fn f() {\n    // SAFETY: g has no preconditions here.\n    unsafe { g() };\n}\n");
        assert!(findings.is_empty(), "{findings:?}");
        assert!(inv[0].documented);
        assert_eq!(inv[0].context.as_deref(), Some("f"));
    }

    #[test]
    fn unsafe_fn_accepts_safety_doc_section() {
        let src = "/// Frees `p`.\n///\n/// # Safety\n/// `p` must come from `alloc`.\npub unsafe fn free(p: *mut u8) {}\n";
        let (findings, inv) = run(src);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(inv[0].kind, "fn");
    }

    #[test]
    fn undocumented_impl_is_a_finding_with_named_key() {
        let (findings, _) = run("unsafe impl Send for Batch {}\n");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].key, "impl:Send:Batch");
    }

    #[test]
    fn fn_pointer_types_are_not_sites() {
        let (findings, inv) =
            run("type Hook = unsafe extern \"C\" fn(i32) -> i32;\ntype H2 = unsafe fn();\n");
        assert!(findings.is_empty(), "{findings:?}");
        assert!(inv.is_empty(), "{inv:?}");
    }

    #[test]
    fn test_code_is_inventoried_but_not_flagged() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { unsafe { g() }; }\n}\n";
        let (findings, inv) = run(src);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(inv.len(), 1);
    }

    #[test]
    fn allowlist_suppresses_by_key() {
        let file =
            SourceFile::from_source("crates/x/src/lib.rs".into(), "fn f() { unsafe { g() } }\n");
        let allow = Allowlist::parse("unsafe crates/x/src/lib.rs block:f\n").unwrap();
        let mut findings = Vec::new();
        let mut inventory = Vec::new();
        check(&file, &allow, &mut findings, &mut inventory);
        assert!(findings.is_empty(), "{findings:?}");
        assert!(allow.stale().is_empty());
    }
}
