//! AlexNet (Krizhevsky et al., 2012) scaled to small inputs: five
//! convolution layers in three pooled groups, then three fully-connected
//! layers with dropout — the paper's 8-layer MNIST classifier.

use deepmorph_nn::prelude::*;
use deepmorph_nn::NnError;
use rand_chacha::ChaCha8Rng;

use crate::builder::NetBuilder;
use crate::spec::{ModelScale, ModelSpec, ProbePoint};

struct AlexDims {
    w1: usize,
    w2: usize,
    w3: usize,
    fc1: usize,
    fc2: usize,
    dropout: f32,
}

fn dims(scale: ModelScale) -> AlexDims {
    match scale {
        ModelScale::Tiny => AlexDims {
            w1: 8,
            w2: 16,
            w3: 24,
            fc1: 64,
            fc2: 32,
            dropout: 0.1,
        },
        ModelScale::Small => AlexDims {
            w1: 16,
            w2: 32,
            w3: 48,
            fc1: 128,
            fc2: 64,
            dropout: 0.4,
        },
        ModelScale::Paper => AlexDims {
            w1: 24,
            w2: 48,
            w3: 64,
            fc1: 256,
            fc2: 128,
            dropout: 0.5,
        },
    }
}

/// Builds the scaled AlexNet per `spec`.
///
/// SD injection: `removed_convs` drops conv5, then conv4, then conv3 (the
/// final group), then conv2, then conv1 — always keeping the pooling
/// schedule, so severity 5 leaves a pooled MLP. Values above 5 saturate.
///
/// # Errors
///
/// Returns an error if the input is too small for the three pooling steps.
pub fn build(spec: &ModelSpec, rng: &mut ChaCha8Rng) -> Result<(Graph, Vec<ProbePoint>), NnError> {
    let d = dims(spec.scale);
    let mut b = NetBuilder::new(spec.input_shape, rng);

    // Group 1: conv1 + pool (conv removed at severity >= 5).
    if spec.removed_convs < 5 {
        b.conv(d.w1, 3, 1, 1)?.relu()?;
    }
    b.maxpool(2, 2)?;
    b.probe("stage1");

    // Group 2: conv2 + pool (conv removed at severity >= 4).
    if spec.removed_convs < 4 {
        b.conv(d.w2, 3, 1, 1)?.relu()?;
    }
    b.maxpool(2, 2)?;
    b.probe("stage2");

    // Group 3: conv3..conv5, then pool. SD removes from the back.
    let kept = 3usize.saturating_sub(spec.removed_convs);
    if kept >= 1 {
        b.conv(d.w3, 3, 1, 1)?.relu()?;
        b.probe("conv3");
    }
    if kept >= 2 {
        b.conv(d.w3, 3, 1, 1)?.relu()?;
        b.probe("conv4");
    }
    if kept >= 3 {
        b.conv(d.w2, 3, 1, 1)?.relu()?;
        b.probe("conv5");
    }
    b.maxpool(2, 2)?;

    b.flatten()?;
    b.dense(d.fc1)?.relu()?.dropout(d.dropout)?;
    b.probe("fc1");
    b.dense(d.fc2)?.relu()?.dropout(d.dropout)?;
    b.probe("fc2");
    b.dense(spec.num_classes)?;
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::check_forward;
    use crate::spec::ModelFamily;
    use deepmorph_tensor::init::stream_rng;

    fn spec(removed: usize) -> ModelSpec {
        ModelSpec::new(ModelFamily::AlexNet, ModelScale::Tiny, [1, 16, 16], 10)
            .with_removed_convs(removed)
    }

    #[test]
    fn healthy_alexnet_has_seven_probes() {
        let mut rng = stream_rng(1, "alexnet");
        let (mut g, probes) = build(&spec(0), &mut rng).unwrap();
        assert_eq!(probes.len(), 7);
        check_forward(&mut g, [1, 16, 16], 2, 10).unwrap();
    }

    #[test]
    fn sd_removal_drops_back_convs_first() {
        let mut rng = stream_rng(2, "alexnet");
        let (_, probes) = build(&spec(1), &mut rng).unwrap();
        let labels: Vec<&str> = probes.iter().map(|p| p.label.as_str()).collect();
        assert!(labels.contains(&"conv3"));
        assert!(labels.contains(&"conv4"));
        assert!(!labels.contains(&"conv5"));
    }

    #[test]
    fn sd_severity_monotonically_shrinks_params() {
        let params_at = |removed: usize| {
            let mut rng = stream_rng(3, "alexnet");
            let (mut g, _) = build(&spec(removed), &mut rng).unwrap();
            g.param_count()
        };
        let counts: Vec<usize> = (0..=5).map(params_at).collect();
        for pair in counts.windows(2) {
            assert!(pair[1] < pair[0], "{counts:?} not strictly decreasing");
        }
        // Saturates at 5.
        assert_eq!(params_at(9), counts[5]);
    }

    #[test]
    fn sd_removal_saturates_to_pooled_mlp() {
        let mut rng = stream_rng(3, "alexnet");
        let (mut g, probes) = build(&spec(9), &mut rng).unwrap();
        // Only stage1, stage2, fc1, fc2 probes remain.
        assert_eq!(probes.len(), 4);
        assert_eq!(probes[0].features, 1); // pooled raw pixels
        check_forward(&mut g, [1, 16, 16], 2, 10).unwrap();
    }
}
