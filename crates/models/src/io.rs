//! Model serialization: spec round-trip plus full save/load.
//!
//! A saved model is a [`seal_container`]-wrapped payload holding the
//! [`ModelSpec`], the graph's [`GraphTopology`] snapshot, and its
//! [`StateDict`]. Loading rebuilds the graph from the spec (architecture
//! code stays in the builders — only tensors are persisted), verifies the
//! rebuilt topology against the saved snapshot, and imports the state.
//! Because `f32` payloads round-trip bit for bit and inference is
//! deterministic, a reloaded model reproduces the original's predictions
//! exactly.

use std::path::Path;

use deepmorph_nn::state::{GraphTopology, StateDict};
use deepmorph_nn::NnError;
use deepmorph_tensor::init::stream_rng;
use deepmorph_tensor::io::{
    open_container, seal_container, ByteReader, ByteWriter, CodecError, CodecResult,
};

use crate::spec::{build_model, ModelFamily, ModelHandle, ModelScale, ModelSpec};

/// Magic tag of a saved model container.
pub const MODEL_MAGIC: [u8; 4] = *b"DMMD";

/// Errors produced by model save/load.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelIoError {
    /// The byte-level codec rejected the file.
    Codec(CodecError),
    /// Rebuilding the graph from the stored spec failed, or the state
    /// import was rejected.
    Nn(NnError),
    /// The rebuilt graph's topology disagrees with the stored snapshot —
    /// the file was written by a different architecture revision.
    TopologyMismatch {
        /// Description of the first difference.
        reason: String,
    },
}

impl std::fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelIoError::Codec(e) => write!(f, "model codec error: {e}"),
            ModelIoError::Nn(e) => write!(f, "model rebuild error: {e}"),
            ModelIoError::TopologyMismatch { reason } => {
                write!(f, "model topology mismatch: {reason}")
            }
        }
    }
}

impl std::error::Error for ModelIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelIoError::Codec(e) => Some(e),
            ModelIoError::Nn(e) => Some(e),
            ModelIoError::TopologyMismatch { .. } => None,
        }
    }
}

impl From<CodecError> for ModelIoError {
    fn from(e: CodecError) -> Self {
        ModelIoError::Codec(e)
    }
}

impl From<NnError> for ModelIoError {
    fn from(e: NnError) -> Self {
        ModelIoError::Nn(e)
    }
}

fn family_tag(f: ModelFamily) -> u8 {
    match f {
        ModelFamily::LeNet => 0,
        ModelFamily::AlexNet => 1,
        ModelFamily::ResNet => 2,
        ModelFamily::DenseNet => 3,
    }
}

fn family_from_tag(tag: u8) -> CodecResult<ModelFamily> {
    Ok(match tag {
        0 => ModelFamily::LeNet,
        1 => ModelFamily::AlexNet,
        2 => ModelFamily::ResNet,
        3 => ModelFamily::DenseNet,
        other => {
            return Err(CodecError::Invalid {
                context: format!("unknown model family tag {other}"),
            })
        }
    })
}

fn scale_tag(s: ModelScale) -> u8 {
    match s {
        ModelScale::Tiny => 0,
        ModelScale::Small => 1,
        ModelScale::Paper => 2,
    }
}

fn scale_from_tag(tag: u8) -> CodecResult<ModelScale> {
    Ok(match tag {
        0 => ModelScale::Tiny,
        1 => ModelScale::Small,
        2 => ModelScale::Paper,
        other => {
            return Err(CodecError::Invalid {
                context: format!("unknown model scale tag {other}"),
            })
        }
    })
}

/// Appends a [`ModelSpec`] to a payload.
pub fn write_spec(w: &mut ByteWriter, spec: &ModelSpec) {
    w.put_u8(family_tag(spec.family));
    w.put_u8(scale_tag(spec.scale));
    for &d in &spec.input_shape {
        w.put_u64(d as u64);
    }
    w.put_u64(spec.num_classes as u64);
    w.put_u64(spec.removed_convs as u64);
}

/// Reads a [`ModelSpec`] written by [`write_spec`].
///
/// # Errors
///
/// Propagates codec errors; unknown family/scale tags are
/// [`CodecError::Invalid`].
pub fn read_spec(r: &mut ByteReader<'_>) -> CodecResult<ModelSpec> {
    let family = family_from_tag(r.get_u8("model family")?)?;
    let scale = scale_from_tag(r.get_u8("model scale")?)?;
    let input_shape = [
        r.get_len("model input shape")?,
        r.get_len("model input shape")?,
        r.get_len("model input shape")?,
    ];
    let num_classes = r.get_len("model classes")?;
    let removed_convs = r.get_len("model removed convs")?;
    Ok(ModelSpec::new(family, scale, input_shape, num_classes).with_removed_convs(removed_convs))
}

/// Encodes a model (spec + topology + state dict) into a container.
///
/// Takes `&mut` because walking the parameters does.
pub fn encode_model(model: &mut ModelHandle) -> Vec<u8> {
    let mut w = ByteWriter::new();
    write_spec(&mut w, &model.spec);
    model.graph.topology().encode(&mut w);
    model.graph.export_state().encode(&mut w);
    seal_container(MODEL_MAGIC, w.as_slice())
}

/// Decodes a model written by [`encode_model`]: rebuilds the architecture
/// from the spec, verifies the topology, and imports the state dict.
///
/// # Errors
///
/// Returns [`ModelIoError::Codec`] for malformed bytes,
/// [`ModelIoError::TopologyMismatch`] when the stored wiring disagrees
/// with what the current builders produce, and [`ModelIoError::Nn`] when
/// the state import is rejected.
pub fn decode_model(bytes: &[u8]) -> Result<ModelHandle, ModelIoError> {
    let payload = open_container(MODEL_MAGIC, bytes)?;
    let mut r = ByteReader::new(payload);
    let spec = read_spec(&mut r)?;
    let topology = GraphTopology::decode(&mut r)?;
    let state = StateDict::decode(&mut r)?;
    if !r.is_exhausted() {
        return Err(ModelIoError::Codec(CodecError::Invalid {
            context: format!("{} trailing bytes after model payload", r.remaining()),
        }));
    }
    // The RNG only seeds init values that the state import overwrites;
    // any stream works, but a fixed one keeps loading deterministic.
    let mut rng = stream_rng(0, "model-io-load");
    let mut model = build_model(&spec, &mut rng)?;
    let rebuilt = model.graph.topology();
    if rebuilt != topology {
        return Err(ModelIoError::TopologyMismatch {
            reason: format!(
                "stored {} nodes (output {}), rebuilt {} nodes (output {})",
                topology.nodes.len(),
                topology.output,
                rebuilt.nodes.len(),
                rebuilt.output
            ),
        });
    }
    model.graph.import_state(&state)?;
    Ok(model)
}

/// Saves a model to a file.
///
/// # Errors
///
/// Returns [`ModelIoError::Codec`] on filesystem failures.
pub fn save_model(path: impl AsRef<Path>, model: &mut ModelHandle) -> Result<(), ModelIoError> {
    std::fs::write(path, encode_model(model)).map_err(CodecError::from)?;
    Ok(())
}

/// Loads a model file written by [`save_model`].
///
/// # Errors
///
/// Same conditions as [`decode_model`], plus [`ModelIoError::Codec`] for
/// filesystem failures.
pub fn load_model(path: impl AsRef<Path>) -> Result<ModelHandle, ModelIoError> {
    let bytes = std::fs::read(path).map_err(CodecError::from)?;
    decode_model(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmorph_nn::layer::Mode;
    use deepmorph_tensor::Tensor;

    fn spec_of(family: ModelFamily) -> ModelSpec {
        let shape = match family {
            ModelFamily::LeNet | ModelFamily::AlexNet => [1, 16, 16],
            _ => [3, 16, 16],
        };
        ModelSpec::new(family, ModelScale::Tiny, shape, 10)
    }

    #[test]
    fn spec_round_trips_every_variant() {
        for family in ModelFamily::all() {
            for scale in [ModelScale::Tiny, ModelScale::Small, ModelScale::Paper] {
                let spec = ModelSpec::new(family, scale, [3, 16, 16], 7).with_removed_convs(2);
                let mut w = ByteWriter::new();
                write_spec(&mut w, &spec);
                let bytes = w.into_bytes();
                let back = read_spec(&mut ByteReader::new(&bytes)).unwrap();
                assert_eq!(back, spec);
            }
        }
    }

    #[test]
    fn bad_family_tag_is_typed() {
        let mut w = ByteWriter::new();
        w.put_u8(9);
        w.put_u8(0);
        for _ in 0..5 {
            w.put_u64(1);
        }
        let bytes = w.into_bytes();
        assert!(matches!(
            read_spec(&mut ByteReader::new(&bytes)).unwrap_err(),
            CodecError::Invalid { .. }
        ));
    }

    #[test]
    fn model_reproduces_predictions_after_reload() {
        for family in ModelFamily::all() {
            let spec = spec_of(family);
            let mut rng = stream_rng(17, "model-io-test");
            let mut model = build_model(&spec, &mut rng).unwrap();
            let [c, h, w] = spec.input_shape;
            let x = Tensor::from_vec(
                (0..4 * c * h * w)
                    .map(|i| ((i * 31) % 113) as f32 / 113.0)
                    .collect(),
                &[4, c, h, w],
            )
            .unwrap();
            let y_before = model.graph.forward(&x, Mode::Eval).unwrap();

            let bytes = encode_model(&mut model);
            let mut reloaded = decode_model(&bytes).unwrap();
            let y_after = reloaded.graph.forward(&x, Mode::Eval).unwrap();
            for (a, b) in y_before.data().iter().zip(y_after.data()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{family} diverged after reload");
            }
            assert_eq!(reloaded.spec, spec);
            assert_eq!(reloaded.probes.len(), model.probes.len());
        }
    }

    #[test]
    fn corrupted_model_file_is_typed() {
        let spec = spec_of(ModelFamily::LeNet);
        let mut rng = stream_rng(18, "model-io-test");
        let mut model = build_model(&spec, &mut rng).unwrap();
        let mut bytes = encode_model(&mut model);

        let err = decode_model(&bytes[..bytes.len() / 2]).unwrap_err();
        assert!(matches!(
            err,
            ModelIoError::Codec(CodecError::Truncated { .. })
        ));

        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let err = decode_model(&bytes).unwrap_err();
        assert!(matches!(
            err,
            ModelIoError::Codec(CodecError::ChecksumMismatch { .. })
        ));
    }
}
