//! Shape-tracking network builder.
//!
//! [`NetBuilder`] wraps `deepmorph-nn`'s [`GraphBuilder`] with a cursor that
//! tracks the current feature shape, so architecture code reads like a
//! layer list and shape arithmetic (conv/pool output sizes, flatten
//! dimensions) is computed — and validated — in one place.

use deepmorph_nn::prelude::*;
use deepmorph_nn::{activation::Tanh, NnError};
use deepmorph_tensor::Tensor;
use rand_chacha::ChaCha8Rng;

use crate::spec::ProbePoint;

/// The shape of the tensor at the builder cursor (excluding batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatShape {
    /// Spatial feature map `[c, h, w]`.
    Spatial([usize; 3]),
    /// Flat feature vector of the given width.
    Flat(usize),
}

impl FeatShape {
    /// The channel/feature count.
    pub fn features(self) -> usize {
        match self {
            FeatShape::Spatial([c, _, _]) => c,
            FeatShape::Flat(f) => f,
        }
    }

    fn spatial(self, op: &'static str) -> Result<[usize; 3], NnError> {
        match self {
            FeatShape::Spatial(s) => Ok(s),
            FeatShape::Flat(f) => Err(NnError::InvalidTrainConfig {
                reason: format!("{op} requires a spatial feature map, cursor is flat[{f}]"),
            }),
        }
    }
}

/// A saved cursor position (for skip connections).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cursor {
    /// Node at the saved position.
    pub node: NodeId,
    /// Feature shape at the saved position.
    pub shape: FeatShape,
}

/// Incremental network builder with shape tracking and probe registration.
#[derive(Debug)]
pub struct NetBuilder<'r> {
    gb: GraphBuilder,
    node: NodeId,
    shape: FeatShape,
    probes: Vec<ProbePoint>,
    rng: &'r mut ChaCha8Rng,
    dropout_seed: u64,
}

impl<'r> NetBuilder<'r> {
    /// Starts a builder at the graph input with shape `[c, h, w]`.
    pub fn new(input_shape: [usize; 3], rng: &'r mut ChaCha8Rng) -> Self {
        let gb = GraphBuilder::new();
        let node = gb.input();
        NetBuilder {
            gb,
            node,
            shape: FeatShape::Spatial(input_shape),
            probes: Vec::new(),
            rng,
            dropout_seed: 0x5eed,
        }
    }

    /// Current cursor (node + shape), for wiring skip connections.
    pub fn here(&self) -> Cursor {
        Cursor {
            node: self.node,
            shape: self.shape,
        }
    }

    /// Moves the cursor to a previously saved position.
    pub fn resume(&mut self, cursor: Cursor) {
        self.node = cursor.node;
        self.shape = cursor.shape;
    }

    /// Current feature shape.
    pub fn shape(&self) -> FeatShape {
        self.shape
    }

    /// Appends a square convolution.
    ///
    /// # Errors
    ///
    /// Returns an error if the cursor is flat or the geometry is invalid.
    pub fn conv(
        &mut self,
        out_c: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Result<&mut Self, NnError> {
        let [c, h, w] = self.shape.spatial("conv")?;
        let layer = Conv2d::new(c, out_c, h, w, kernel, stride, padding, self.rng)?;
        let [oc, oh, ow] = layer.out_shape();
        self.node = self.gb.add_layer(layer, &[self.node])?;
        self.shape = FeatShape::Spatial([oc, oh, ow]);
        Ok(self)
    }

    /// Appends a batch-norm over the current channels.
    ///
    /// # Errors
    ///
    /// Returns an error if the cursor is flat.
    pub fn bn(&mut self) -> Result<&mut Self, NnError> {
        let [c, _, _] = self.shape.spatial("batchnorm")?;
        self.node = self.gb.add_layer(BatchNorm2d::new(c), &[self.node])?;
        Ok(self)
    }

    /// Appends a ReLU.
    ///
    /// # Errors
    ///
    /// Propagates graph errors.
    pub fn relu(&mut self) -> Result<&mut Self, NnError> {
        self.node = self.gb.add_layer(ReLU::new(), &[self.node])?;
        Ok(self)
    }

    /// Appends a tanh (classic LeNet nonlinearity).
    ///
    /// # Errors
    ///
    /// Propagates graph errors.
    pub fn tanh(&mut self) -> Result<&mut Self, NnError> {
        self.node = self.gb.add_layer(Tanh::new(), &[self.node])?;
        Ok(self)
    }

    /// Appends a max pool.
    ///
    /// # Errors
    ///
    /// Returns an error if the cursor is flat or the window does not fit.
    pub fn maxpool(&mut self, window: usize, stride: usize) -> Result<&mut Self, NnError> {
        let [c, h, w] = self.shape.spatial("maxpool")?;
        let layer = MaxPool2d::new(c, h, w, window, stride)?;
        let [oc, oh, ow] = layer.out_shape();
        self.node = self.gb.add_layer(layer, &[self.node])?;
        self.shape = FeatShape::Spatial([oc, oh, ow]);
        Ok(self)
    }

    /// Appends an average pool.
    ///
    /// # Errors
    ///
    /// Returns an error if the cursor is flat or the window does not fit.
    pub fn avgpool(&mut self, window: usize, stride: usize) -> Result<&mut Self, NnError> {
        let [c, h, w] = self.shape.spatial("avgpool")?;
        let layer = AvgPool2d::new(c, h, w, window, stride)?;
        let [oc, oh, ow] = layer.out_shape();
        self.node = self.gb.add_layer(layer, &[self.node])?;
        self.shape = FeatShape::Spatial([oc, oh, ow]);
        Ok(self)
    }

    /// Appends a global average pool, flattening the cursor.
    ///
    /// # Errors
    ///
    /// Returns an error if the cursor is already flat.
    pub fn gap(&mut self) -> Result<&mut Self, NnError> {
        let [c, _, _] = self.shape.spatial("global_avg_pool")?;
        self.node = self.gb.add_layer(GlobalAvgPool::new(), &[self.node])?;
        self.shape = FeatShape::Flat(c);
        Ok(self)
    }

    /// Appends a flatten, turning `[c, h, w]` into `c*h*w` features.
    ///
    /// # Errors
    ///
    /// Returns an error if the cursor is already flat.
    pub fn flatten(&mut self) -> Result<&mut Self, NnError> {
        let [c, h, w] = self.shape.spatial("flatten")?;
        self.node = self.gb.add_layer(Flatten::new(), &[self.node])?;
        self.shape = FeatShape::Flat(c * h * w);
        Ok(self)
    }

    /// Appends a dense layer.
    ///
    /// # Errors
    ///
    /// Returns an error if the cursor is spatial (flatten first).
    pub fn dense(&mut self, out_features: usize) -> Result<&mut Self, NnError> {
        let in_features = match self.shape {
            FeatShape::Flat(f) => f,
            FeatShape::Spatial(s) => {
                return Err(NnError::InvalidTrainConfig {
                    reason: format!("dense requires flat features, cursor is spatial{s:?}"),
                })
            }
        };
        self.node = self.gb.add_layer(
            Dense::new(in_features, out_features, self.rng),
            &[self.node],
        )?;
        self.shape = FeatShape::Flat(out_features);
        Ok(self)
    }

    /// Appends dropout with probability `p` (deterministic per-layer seed).
    ///
    /// # Errors
    ///
    /// Propagates graph errors.
    pub fn dropout(&mut self, p: f32) -> Result<&mut Self, NnError> {
        self.dropout_seed = self
            .dropout_seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(1);
        self.node = self
            .gb
            .add_layer(Dropout::new(p, self.dropout_seed), &[self.node])?;
        Ok(self)
    }

    /// Adds a residual merge: cursor ← cursor + `other` (shapes must match).
    ///
    /// # Errors
    ///
    /// Returns an error if the two branches have different shapes.
    pub fn add_from(&mut self, other: Cursor) -> Result<&mut Self, NnError> {
        if other.shape != self.shape {
            return Err(NnError::InvalidTrainConfig {
                reason: format!(
                    "residual add shape mismatch: {:?} vs {:?}",
                    self.shape, other.shape
                ),
            });
        }
        self.node = self.gb.add_layer(Add::new(), &[self.node, other.node])?;
        Ok(self)
    }

    /// Adds a channel concat: cursor ← concat(cursor, `other`).
    ///
    /// # Errors
    ///
    /// Returns an error unless both branches are spatial with equal `h, w`.
    pub fn concat_from(&mut self, other: Cursor) -> Result<&mut Self, NnError> {
        let [c1, h1, w1] = self.shape.spatial("concat")?;
        let [c2, h2, w2] = other.shape.spatial("concat")?;
        if (h1, w1) != (h2, w2) {
            return Err(NnError::InvalidTrainConfig {
                reason: format!("concat spatial mismatch: {h1}x{w1} vs {h2}x{w2}"),
            });
        }
        self.node = self
            .gb
            .add_layer(ConcatChannels::new(), &[self.node, other.node])?;
        self.shape = FeatShape::Spatial([c1 + c2, h1, w1]);
        Ok(self)
    }

    /// Registers the current cursor as a DeepMorph probe point.
    pub fn probe(&mut self, label: &str) -> &mut Self {
        self.probes.push(ProbePoint {
            node: self.node,
            label: label.to_string(),
            features: self.shape.features(),
            spatial: matches!(self.shape, FeatShape::Spatial(_)),
        });
        self
    }

    /// Finalizes the graph with the cursor as output, returning the graph
    /// and registered probe points.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty network.
    pub fn finish(self) -> Result<(Graph, Vec<ProbePoint>), NnError> {
        let graph = self.gb.build(self.node)?;
        Ok((graph, self.probes))
    }
}

/// Smoke-level forward check used by model unit tests: builds a batch of
/// zeros with the given input shape and confirms the graph produces
/// `[n, classes]` logits.
///
/// # Errors
///
/// Propagates graph errors.
pub fn check_forward(
    graph: &mut Graph,
    input_shape: [usize; 3],
    n: usize,
    classes: usize,
) -> Result<(), NnError> {
    let [c, h, w] = input_shape;
    let x = Tensor::zeros(&[n, c, h, w]);
    let y = graph.forward(&x, Mode::Eval)?;
    if y.shape() != [n, classes] {
        return Err(NnError::InvalidTrainConfig {
            reason: format!("expected [{n}, {classes}] logits, got {:?}", y.shape()),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmorph_tensor::init::stream_rng;

    #[test]
    fn tracks_shapes_through_conv_pool_flatten() {
        let mut rng = stream_rng(1, "builder");
        let mut b = NetBuilder::new([3, 16, 16], &mut rng);
        b.conv(8, 3, 1, 1).unwrap();
        assert_eq!(b.shape(), FeatShape::Spatial([8, 16, 16]));
        b.maxpool(2, 2).unwrap();
        assert_eq!(b.shape(), FeatShape::Spatial([8, 8, 8]));
        b.flatten().unwrap();
        assert_eq!(b.shape(), FeatShape::Flat(512));
        b.dense(10).unwrap();
        let (mut g, probes) = b.finish().unwrap();
        assert!(probes.is_empty());
        check_forward(&mut g, [3, 16, 16], 2, 10).unwrap();
    }

    #[test]
    fn dense_on_spatial_cursor_errors() {
        let mut rng = stream_rng(2, "builder");
        let mut b = NetBuilder::new([1, 8, 8], &mut rng);
        assert!(b.dense(10).is_err());
    }

    #[test]
    fn conv_on_flat_cursor_errors() {
        let mut rng = stream_rng(3, "builder");
        let mut b = NetBuilder::new([1, 8, 8], &mut rng);
        b.flatten().unwrap();
        assert!(b.conv(4, 3, 1, 1).is_err());
    }

    #[test]
    fn residual_add_requires_matching_shapes() {
        let mut rng = stream_rng(4, "builder");
        let mut b = NetBuilder::new([4, 8, 8], &mut rng);
        let skip = b.here();
        b.conv(4, 3, 1, 1).unwrap().relu().unwrap();
        b.add_from(skip).unwrap(); // same shape: ok
        let skip2 = b.here();
        b.conv(8, 3, 2, 1).unwrap();
        assert!(b.add_from(skip2).is_err()); // downsampled: mismatch
    }

    #[test]
    fn concat_grows_channels() {
        let mut rng = stream_rng(5, "builder");
        let mut b = NetBuilder::new([4, 8, 8], &mut rng);
        let saved = b.here();
        b.conv(6, 3, 1, 1).unwrap();
        b.concat_from(saved).unwrap();
        assert_eq!(b.shape(), FeatShape::Spatial([10, 8, 8]));
    }

    #[test]
    fn probes_record_cursor() {
        let mut rng = stream_rng(6, "builder");
        let mut b = NetBuilder::new([1, 8, 8], &mut rng);
        b.conv(4, 3, 1, 1).unwrap().relu().unwrap();
        b.probe("stage1");
        b.flatten().unwrap().dense(10).unwrap();
        b.probe("logits");
        let (_, probes) = b.finish().unwrap();
        assert_eq!(probes.len(), 2);
        assert_eq!(probes[0].label, "stage1");
        assert!(probes[0].spatial);
        assert_eq!(probes[0].features, 4);
        assert!(!probes[1].spatial);
        assert_eq!(probes[1].features, 10);
    }
}
