//! LeNet-5 (LeCun et al., 1989): conv–pool–conv–pool–fc–fc–fc with tanh
//! nonlinearities — the paper's 5-layer MNIST classifier.

use deepmorph_nn::prelude::*;
use deepmorph_nn::NnError;
use rand_chacha::ChaCha8Rng;

use crate::builder::NetBuilder;
use crate::spec::{ModelScale, ModelSpec, ProbePoint};

struct LeNetDims {
    conv1: usize,
    conv2: usize,
    fc1: usize,
    fc2: usize,
}

fn dims(scale: ModelScale) -> LeNetDims {
    match scale {
        ModelScale::Tiny => LeNetDims {
            conv1: 4,
            conv2: 8,
            fc1: 32,
            fc2: 16,
        },
        ModelScale::Small => LeNetDims {
            conv1: 6,
            conv2: 16,
            fc1: 64,
            fc2: 32,
        },
        ModelScale::Paper => LeNetDims {
            conv1: 6,
            conv2: 16,
            fc1: 120,
            fc2: 84,
        },
    }
}

/// Builds LeNet-5 per `spec`.
///
/// SD injection: `removed_convs == 1` removes the second convolution;
/// `removed_convs >= 2` removes both convolutions (leaving a pooled MLP —
/// the weakest "remove Convolution layer" edit LeNet admits). The pooling
/// schedule always remains: the paper removes convolutions, not the
/// resolution pipeline. Probes sit on the pooled stage outputs so the
/// instrumentation is identical across SD severities.
///
/// # Errors
///
/// Returns an error if the input is too small for the 5×5 kernels.
pub fn build(spec: &ModelSpec, rng: &mut ChaCha8Rng) -> Result<(Graph, Vec<ProbePoint>), NnError> {
    let d = dims(spec.scale);
    let mut b = NetBuilder::new(spec.input_shape, rng);

    // C1 + S2 — removed at SD severity >= 2.
    if spec.removed_convs < 2 {
        b.conv(d.conv1, 5, 1, 2)?.tanh()?;
    }
    b.maxpool(2, 2)?;
    b.probe("stage1");

    // C3 + S4 — removed at SD severity >= 1.
    if spec.removed_convs == 0 {
        b.conv(d.conv2, 5, 1, 2)?.tanh()?;
    }
    b.maxpool(2, 2)?;
    b.probe("stage2");

    b.flatten()?;
    b.dense(d.fc1)?.tanh()?;
    b.probe("fc1");
    b.dense(d.fc2)?.tanh()?;
    b.probe("fc2");
    b.dense(spec.num_classes)?;
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::check_forward;
    use crate::spec::ModelFamily;
    use deepmorph_tensor::init::stream_rng;

    fn spec(scale: ModelScale, removed: usize) -> ModelSpec {
        ModelSpec::new(ModelFamily::LeNet, scale, [1, 16, 16], 10).with_removed_convs(removed)
    }

    #[test]
    fn healthy_lenet_has_four_probes() {
        let mut rng = stream_rng(1, "lenet");
        let (mut g, probes) = build(&spec(ModelScale::Paper, 0), &mut rng).unwrap();
        assert_eq!(probes.len(), 4);
        assert_eq!(probes[0].label, "stage1");
        assert_eq!(probes[3].label, "fc2");
        check_forward(&mut g, [1, 16, 16], 3, 10).unwrap();
    }

    #[test]
    fn sd_keeps_probe_count_but_shrinks_model() {
        let mut rng = stream_rng(2, "lenet");
        let (mut g0, probes0) = build(&spec(ModelScale::Tiny, 0), &mut rng).unwrap();
        let mut rng = stream_rng(2, "lenet");
        let (mut g1, probes1) = build(&spec(ModelScale::Tiny, 1), &mut rng).unwrap();
        let mut rng = stream_rng(2, "lenet");
        let (mut g2, probes2) = build(&spec(ModelScale::Tiny, 2), &mut rng).unwrap();
        assert_eq!(probes0.len(), probes1.len());
        assert_eq!(probes1.len(), probes2.len());
        assert!(g1.param_count() < g0.param_count());
        assert!(g2.param_count() < g1.param_count());
        check_forward(&mut g1, [1, 16, 16], 1, 10).unwrap();
        check_forward(&mut g2, [1, 16, 16], 1, 10).unwrap();
    }

    #[test]
    fn fully_removed_lenet_is_a_pooled_mlp() {
        let mut rng = stream_rng(4, "lenet");
        let (mut g, probes) = build(&spec(ModelScale::Tiny, 9), &mut rng).unwrap();
        // stage probes read pooled raw pixels: 1 channel.
        assert_eq!(probes[0].features, 1);
        check_forward(&mut g, [1, 16, 16], 2, 10).unwrap();
    }

    #[test]
    fn probe_features_track_dims() {
        let mut rng = stream_rng(3, "lenet");
        let (_, probes) = build(&spec(ModelScale::Paper, 0), &mut rng).unwrap();
        assert_eq!(probes[0].features, 6);
        assert!(probes[0].spatial);
        assert_eq!(probes[2].features, 120);
        assert!(!probes[2].spatial);
    }
}
