//! Model zoo for the DeepMorph reproduction.
//!
//! The paper evaluates four classifier families: LeNet-5 and AlexNet on
//! MNIST, ResNet-34 and DenseNet-40 on CIFAR-10. This crate builds all four
//! on the `deepmorph-nn` substrate with:
//!
//! * **structural fidelity** — the block plans match the originals
//!   (ResNet basic-block stages `[3,4,6,3]`, DenseNet three dense blocks,
//!   AlexNet's five-conv/three-fc split, LeNet's conv-pool-conv-pool-fc),
//! * **parametric scale** — [`ModelScale`] shrinks channel widths and
//!   block depths so the full Table I sweep runs on one CPU core,
//! * **probe points** — every model reports the [`ProbePoint`]s (stage
//!   outputs) where DeepMorph attaches its auxiliary softmax layers, and
//! * **structure-defect injection** — [`ModelSpec::removed_convs`] removes
//!   convolution units the way the paper's SD injection does.
//!
//! # Example
//!
//! ```
//! use deepmorph_models::prelude::*;
//! use deepmorph_tensor::init::stream_rng;
//!
//! # fn main() -> Result<(), deepmorph_nn::NnError> {
//! let spec = ModelSpec::new(ModelFamily::LeNet, ModelScale::Tiny, [1, 16, 16], 10);
//! let mut rng = stream_rng(0, "model");
//! let handle = build_model(&spec, &mut rng)?;
//! assert!(!handle.probes.is_empty());
//! # Ok(())
//! # }
//! ```

mod alexnet;
mod builder;
mod densenet;
pub mod io;
mod lenet;
mod resnet;
mod spec;

pub use builder::{check_forward, FeatShape, NetBuilder};
pub use io::{decode_model, encode_model, load_model, save_model, ModelIoError};
pub use spec::{build_model, ModelFamily, ModelHandle, ModelScale, ModelSpec, ProbePoint};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::io::{decode_model, encode_model, load_model, save_model, ModelIoError};
    pub use crate::spec::{
        build_model, ModelFamily, ModelHandle, ModelScale, ModelSpec, ProbePoint,
    };
}
