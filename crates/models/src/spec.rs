//! Model specification and dispatch.

use deepmorph_nn::prelude::*;
use deepmorph_nn::NnError;
use deepmorph_tensor::init::stream_rng;
use rand_chacha::ChaCha8Rng;

use crate::{alexnet, densenet, lenet, resnet};

/// The four classifier families evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelFamily {
    /// LeNet-5 (paper: MNIST, 5 layers).
    LeNet,
    /// AlexNet (paper: MNIST, 8 layers), scaled to small inputs.
    AlexNet,
    /// ResNet-34 basic-block plan (paper: CIFAR-10).
    ResNet,
    /// DenseNet-40 three-dense-block plan (paper: CIFAR-10).
    DenseNet,
}

impl ModelFamily {
    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            ModelFamily::LeNet => "LeNet",
            ModelFamily::AlexNet => "AlexNet",
            ModelFamily::ResNet => "ResNet",
            ModelFamily::DenseNet => "DenseNet",
        }
    }

    /// All four families, in the paper's column order.
    pub fn all() -> [ModelFamily; 4] {
        [
            ModelFamily::LeNet,
            ModelFamily::AlexNet,
            ModelFamily::ResNet,
            ModelFamily::DenseNet,
        ]
    }
}

impl std::fmt::Display for ModelFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Width/depth scaling of a model family.
///
/// `Paper` reproduces the original block counts (ResNet-34's `[3,4,6,3]`,
/// DenseNet-40's 12 layers per block); `Tiny` and `Small` shrink widths and
/// depths so the full experiment sweep fits a single CPU core. The *shape*
/// of each architecture (block structure, merge topology, probe placement)
/// is identical across scales.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelScale {
    /// Smallest runnable configuration (default for tests and CI).
    Tiny,
    /// Intermediate configuration (default for EXPERIMENTS.md).
    Small,
    /// Structurally faithful to the paper's models.
    Paper,
}

/// Full specification of a model to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelSpec {
    /// Architecture family.
    pub family: ModelFamily,
    /// Width/depth scale.
    pub scale: ModelScale,
    /// Input shape `[c, h, w]`.
    pub input_shape: [usize; 3],
    /// Number of target classes.
    pub num_classes: usize,
    /// Number of convolution units removed — the paper's Structure Defect
    /// (SD) injection. `0` is the healthy model; each unit is one conv
    /// layer (LeNet/AlexNet), one residual block (ResNet), or a slice of
    /// each dense block (DenseNet).
    pub removed_convs: usize,
}

impl ModelSpec {
    /// Creates a healthy (defect-free) spec.
    pub fn new(
        family: ModelFamily,
        scale: ModelScale,
        input_shape: [usize; 3],
        num_classes: usize,
    ) -> Self {
        ModelSpec {
            family,
            scale,
            input_shape,
            num_classes,
            removed_convs: 0,
        }
    }

    /// Returns a copy with `removed_convs` set (SD injection).
    pub fn with_removed_convs(mut self, removed: usize) -> Self {
        self.removed_convs = removed;
        self
    }

    /// Checks the spec for internal consistency before any layer is built.
    ///
    /// [`build_model`] calls this first, so a corrupt spec (decoded from a
    /// damaged file, or assembled by a remote caller) surfaces as a typed
    /// [`NnError::InvalidSpec`] instead of a panic deep inside a builder —
    /// a server loading operator-supplied models must never abort.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidSpec`] for zero-sized inputs or a
    /// class-free output.
    pub fn validate(&self) -> Result<(), NnError> {
        let invalid = |reason: String| Err(NnError::InvalidSpec { reason });
        let [c, h, w] = self.input_shape;
        if c == 0 || h == 0 || w == 0 {
            return invalid(format!("input shape [{c}, {h}, {w}] has a zero dimension"));
        }
        if self.num_classes == 0 {
            return invalid("num_classes must be positive".to_string());
        }
        // Each family tolerates a bounded number of removed conv units;
        // the builders reject deeper removal themselves, but an absurd
        // value from a corrupt file is cheaper to reject here.
        if self.removed_convs > 64 {
            return invalid(format!(
                "removed_convs {} is beyond any supported architecture",
                self.removed_convs
            ));
        }
        Ok(())
    }
}

/// A probe attachment point reported by a model builder.
///
/// DeepMorph attaches one auxiliary softmax layer per probe point; the
/// probe points are the outputs of the model's major stages, ordered from
/// input to output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbePoint {
    /// Graph node whose activation the probe reads.
    pub node: NodeId,
    /// Human-readable stage label (e.g. `"stage2"`).
    pub label: String,
    /// Channels (spatial) or features (flat) at this point.
    pub features: usize,
    /// `true` if the activation is a `[n, c, h, w]` feature map.
    pub spatial: bool,
}

/// A built model: the executable graph plus probe metadata.
#[derive(Debug)]
pub struct ModelHandle {
    /// The executable network.
    pub graph: Graph,
    /// DeepMorph probe points, input → output order.
    pub probes: Vec<ProbePoint>,
    /// The spec the model was built from.
    pub spec: ModelSpec,
}

impl ModelHandle {
    /// Total trainable parameter count.
    pub fn param_count(&mut self) -> usize {
        self.graph.param_count()
    }

    /// Installs `ctx` as the compute context of the underlying graph (see
    /// [`Graph::bind_compute`]): serving replicas select their backend
    /// here, per model version.
    pub fn bind_compute(&mut self, ctx: &ComputeCtx) {
        self.graph.bind_compute(ctx);
    }

    /// Re-expresses the model's parameters at a serving precision (see
    /// [`Graph::apply_precision`]). Lossy — only inference replicas do
    /// this; training and diagnosis always run f32.
    ///
    /// # Errors
    ///
    /// Propagates layer rejections (no provided layer rejects).
    pub fn apply_precision(&mut self, precision: Precision) -> Result<(), NnError> {
        self.graph.apply_precision(precision)
    }

    /// Builds an independent replica: same architecture (rebuilt from the
    /// spec), same parameters and buffers (state-dict import). Replicas
    /// share no storage, so each serving worker can own one and run
    /// forwards concurrently; eval-mode outputs are bitwise identical to
    /// the original's.
    ///
    /// Takes `&mut` because exporting the state dict walks the parameters.
    ///
    /// # Errors
    ///
    /// Propagates build errors; a state mismatch is impossible for a graph
    /// rebuilt from the same spec.
    pub fn replicate(&mut self) -> Result<ModelHandle, NnError> {
        // The RNG only feeds weight init that the import overwrites; a
        // fixed stream keeps replica construction deterministic.
        let mut rng = stream_rng(0, "model-replica");
        let mut twin = build_model(&self.spec, &mut rng)?;
        twin.graph.import_state(&self.graph.export_state())?;
        Ok(twin)
    }
}

/// Builds a model from its spec using the given RNG for weight init.
///
/// # Errors
///
/// Returns [`NnError::InvalidSpec`] for a spec that fails
/// [`ModelSpec::validate`], and other errors if the spec is inconsistent
/// with the architecture (input too small, all conv units removed, …).
pub fn build_model(spec: &ModelSpec, rng: &mut ChaCha8Rng) -> Result<ModelHandle, NnError> {
    spec.validate()?;
    let (graph, probes) = match spec.family {
        ModelFamily::LeNet => lenet::build(spec, rng)?,
        ModelFamily::AlexNet => alexnet::build(spec, rng)?,
        ModelFamily::ResNet => resnet::build(spec, rng)?,
        ModelFamily::DenseNet => densenet::build(spec, rng)?,
    };
    Ok(ModelHandle {
        graph,
        probes,
        spec: *spec,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::check_forward;
    use deepmorph_tensor::init::stream_rng;

    fn dataset_shape(f: ModelFamily) -> [usize; 3] {
        match f {
            ModelFamily::LeNet | ModelFamily::AlexNet => [1, 16, 16],
            _ => [3, 16, 16],
        }
    }

    #[test]
    fn all_families_build_and_forward() -> Result<(), String> {
        // Failures propagate as Results (with family context) rather than
        // panicking mid-loop.
        for family in ModelFamily::all() {
            let spec = ModelSpec::new(family, ModelScale::Tiny, dataset_shape(family), 10);
            let mut rng = stream_rng(1, "spec");
            let mut handle = build_model(&spec, &mut rng).map_err(|e| format!("{family}: {e}"))?;
            check_forward(&mut handle.graph, spec.input_shape, 2, 10)
                .map_err(|e| format!("{family}: {e}"))?;
            assert!(
                handle.probes.len() >= 3,
                "{family} should expose >=3 probes"
            );
            assert!(handle.param_count() > 100, "{family} suspiciously small");
        }
        Ok(())
    }

    #[test]
    fn corrupt_specs_are_typed_errors() {
        let mut rng = stream_rng(7, "spec");
        for bad in [
            ModelSpec::new(ModelFamily::LeNet, ModelScale::Tiny, [0, 16, 16], 10),
            ModelSpec::new(ModelFamily::LeNet, ModelScale::Tiny, [1, 16, 16], 0),
            ModelSpec::new(ModelFamily::ResNet, ModelScale::Tiny, [3, 16, 16], 10)
                .with_removed_convs(1000),
        ] {
            assert!(bad.validate().is_err());
            assert!(matches!(
                build_model(&bad, &mut rng).unwrap_err(),
                NnError::InvalidSpec { .. }
            ));
        }
    }

    #[test]
    fn replicas_predict_bitwise_identically() {
        use deepmorph_tensor::Tensor;
        let spec = ModelSpec::new(ModelFamily::LeNet, ModelScale::Tiny, [1, 16, 16], 10);
        let mut rng = stream_rng(11, "spec");
        let mut original = build_model(&spec, &mut rng).unwrap();
        let mut replica = original.replicate().unwrap();
        assert_eq!(replica.spec, original.spec);
        assert_eq!(replica.probes, original.probes);
        let x = Tensor::from_vec(
            (0..2 * 256)
                .map(|i| ((i * 37) % 97) as f32 / 97.0)
                .collect(),
            &[2, 1, 16, 16],
        )
        .unwrap();
        let a = original.graph.forward(&x, Mode::Eval).unwrap();
        let b = replica.graph.forward(&x, Mode::Eval).unwrap();
        for (va, vb) in a.data().iter().zip(b.data()) {
            assert_eq!(va.to_bits(), vb.to_bits());
        }
    }

    #[test]
    fn scales_are_ordered_by_capacity() {
        for family in ModelFamily::all() {
            let mut rng = stream_rng(2, "spec");
            let tiny = build_model(
                &ModelSpec::new(family, ModelScale::Tiny, dataset_shape(family), 10),
                &mut rng,
            )
            .unwrap()
            .param_count();
            let mut rng = stream_rng(2, "spec");
            let small = build_model(
                &ModelSpec::new(family, ModelScale::Small, dataset_shape(family), 10),
                &mut rng,
            )
            .unwrap()
            .param_count();
            assert!(small > tiny, "{family}: small {small} <= tiny {tiny}");
        }
    }

    #[test]
    fn sd_injection_reduces_capacity() {
        for family in ModelFamily::all() {
            let mut rng = stream_rng(3, "spec");
            let healthy = build_model(
                &ModelSpec::new(family, ModelScale::Tiny, dataset_shape(family), 10),
                &mut rng,
            )
            .unwrap()
            .param_count();
            let mut rng = stream_rng(3, "spec");
            let damaged_spec = ModelSpec::new(family, ModelScale::Tiny, dataset_shape(family), 10)
                .with_removed_convs(2);
            let mut damaged = build_model(&damaged_spec, &mut rng).unwrap();
            let damaged_params = damaged.param_count();
            assert!(
                damaged_params < healthy,
                "{family}: SD injection should shrink the model ({damaged_params} vs {healthy})"
            );
            check_forward(&mut damaged.graph, damaged_spec.input_shape, 2, 10).unwrap();
        }
    }

    #[test]
    fn family_names_match_paper() {
        assert_eq!(ModelFamily::LeNet.to_string(), "LeNet");
        assert_eq!(ModelFamily::DenseNet.to_string(), "DenseNet");
    }
}
