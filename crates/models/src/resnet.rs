//! ResNet with basic blocks (He et al., 2016) — the paper's CIFAR-10
//! classifier (ResNet-34 plan `[3, 4, 6, 3]` at `Paper` scale).

use deepmorph_nn::prelude::*;
use deepmorph_nn::NnError;
use rand_chacha::ChaCha8Rng;

use crate::builder::NetBuilder;
use crate::spec::{ModelScale, ModelSpec, ProbePoint};

struct ResNetDims {
    width: usize,
    blocks: [usize; 4],
}

fn dims(scale: ModelScale) -> ResNetDims {
    match scale {
        ModelScale::Tiny => ResNetDims {
            width: 4,
            blocks: [1, 1, 1, 1],
        },
        ModelScale::Small => ResNetDims {
            width: 8,
            blocks: [2, 2, 2, 2],
        },
        // ResNet-34's stage plan.
        ModelScale::Paper => ResNetDims {
            width: 16,
            blocks: [3, 4, 6, 3],
        },
    }
}

/// Removes `removed` blocks from the stage plan, deepest stages first,
/// allowing stages to reach zero blocks (they degrade to a bare strided
/// 1×1 transition — exactly the "weaker structure" the SD injection wants).
fn apply_sd(blocks: [usize; 4], removed: usize) -> [usize; 4] {
    let mut blocks = blocks;
    let mut left = removed;
    // Round-robin from the last stage backwards so damage concentrates in
    // the high-level feature stages, mirroring the paper's edits.
    while left > 0 && blocks.iter().sum::<usize>() > 0 {
        let mut removed_this_round = false;
        for stage in (0..4).rev() {
            if left == 0 {
                break;
            }
            if blocks[stage] > 0 {
                blocks[stage] -= 1;
                left -= 1;
                removed_this_round = true;
            }
        }
        if !removed_this_round {
            break;
        }
    }
    blocks
}

/// Appends one basic residual block (two 3×3 convs + shortcut).
fn basic_block(b: &mut NetBuilder<'_>, out_c: usize, stride: usize) -> Result<(), NnError> {
    let entry = b.here();
    let in_c = entry.shape.features();
    b.conv(out_c, 3, stride, 1)?.bn()?.relu()?;
    b.conv(out_c, 3, 1, 1)?.bn()?;
    let main = b.here();
    let shortcut = if stride != 1 || in_c != out_c {
        // Projection shortcut.
        b.resume(entry);
        b.conv(out_c, 1, stride, 0)?.bn()?;
        b.here()
    } else {
        entry
    };
    b.resume(main);
    b.add_from(shortcut)?;
    b.relu()?;
    Ok(())
}

/// Builds the ResNet per `spec`.
///
/// SD injection: `removed_convs` deletes residual blocks starting from the
/// deepest stage; a stage with zero remaining blocks becomes a bare strided
/// 1×1 transition conv.
///
/// # Errors
///
/// Returns an error if the input is too small for the three stride-2
/// stages.
pub fn build(spec: &ModelSpec, rng: &mut ChaCha8Rng) -> Result<(Graph, Vec<ProbePoint>), NnError> {
    let d = dims(spec.scale);
    let blocks = apply_sd(d.blocks, spec.removed_convs);
    let mut b = NetBuilder::new(spec.input_shape, rng);

    // Stem.
    b.conv(d.width, 3, 1, 1)?.bn()?.relu()?;
    b.probe("stem");

    for (stage, &count) in blocks.iter().enumerate() {
        let out_c = d.width << stage;
        let stage_stride = if stage == 0 { 1 } else { 2 };
        if count == 0 {
            // Degraded stage: bare transition keeps shapes flowing.
            b.conv(out_c, 1, stage_stride, 0)?.bn()?.relu()?;
        } else {
            for block in 0..count {
                let stride = if block == 0 { stage_stride } else { 1 };
                basic_block(&mut b, out_c, stride)?;
            }
        }
        b.probe(&format!("stage{}", stage + 1));
    }

    b.gap()?;
    b.probe("gap");
    b.dense(spec.num_classes)?;
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::check_forward;
    use crate::spec::ModelFamily;
    use deepmorph_tensor::init::stream_rng;

    fn spec(scale: ModelScale, removed: usize) -> ModelSpec {
        ModelSpec::new(ModelFamily::ResNet, scale, [3, 16, 16], 10).with_removed_convs(removed)
    }

    #[test]
    fn tiny_resnet_builds_and_forwards() {
        let mut rng = stream_rng(1, "resnet");
        let (mut g, probes) = build(&spec(ModelScale::Tiny, 0), &mut rng).unwrap();
        // stem + 4 stages + gap
        assert_eq!(probes.len(), 6);
        check_forward(&mut g, [3, 16, 16], 2, 10).unwrap();
    }

    #[test]
    fn paper_scale_uses_resnet34_plan() {
        assert_eq!(dims(ModelScale::Paper).blocks, [3, 4, 6, 3]);
    }

    #[test]
    fn sd_removes_from_deep_stages_first() {
        assert_eq!(apply_sd([3, 4, 6, 3], 1), [3, 4, 6, 2]);
        assert_eq!(apply_sd([3, 4, 6, 3], 2), [3, 4, 5, 2]);
        assert_eq!(apply_sd([1, 1, 1, 1], 2), [1, 1, 0, 0]);
        assert_eq!(apply_sd([1, 1, 1, 1], 99), [0, 0, 0, 0]);
    }

    #[test]
    fn fully_degraded_resnet_still_forwards() {
        let mut rng = stream_rng(2, "resnet");
        let (mut g, _) = build(&spec(ModelScale::Tiny, 4), &mut rng).unwrap();
        check_forward(&mut g, [3, 16, 16], 2, 10).unwrap();
    }

    #[test]
    fn projection_shortcut_used_on_width_change() {
        // Small scale stage 2 changes width: training-mode forward+backward
        // must succeed through the projection.
        let mut rng = stream_rng(3, "resnet");
        let (mut g, _) = build(&spec(ModelScale::Tiny, 0), &mut rng).unwrap();
        let x = deepmorph_tensor::Tensor::zeros(&[2, 3, 16, 16]);
        let y = g.forward(&x, Mode::Train).unwrap();
        g.zero_grad();
        g.backward(&deepmorph_tensor::Tensor::ones(y.shape()))
            .unwrap();
    }
}
