//! DenseNet (Huang et al., 2017) — the paper's second CIFAR-10 classifier
//! (DenseNet-40: three dense blocks of 12 BN-ReLU-conv layers at `Paper`
//! scale).

use deepmorph_nn::prelude::*;
use deepmorph_nn::NnError;
use rand_chacha::ChaCha8Rng;

use crate::builder::NetBuilder;
use crate::spec::{ModelScale, ModelSpec, ProbePoint};

struct DenseNetDims {
    stem: usize,
    growth: usize,
    layers_per_block: usize,
}

fn dims(scale: ModelScale) -> DenseNetDims {
    match scale {
        ModelScale::Tiny => DenseNetDims {
            stem: 8,
            growth: 4,
            layers_per_block: 3,
        },
        ModelScale::Small => DenseNetDims {
            stem: 12,
            growth: 6,
            layers_per_block: 6,
        },
        // DenseNet-40: depth = 3 blocks * 12 layers + stem + transitions.
        ModelScale::Paper => DenseNetDims {
            stem: 16,
            growth: 12,
            layers_per_block: 12,
        },
    }
}

/// Distributes `removed` layer removals over the three dense blocks,
/// last block first, keeping at least one layer per block.
fn apply_sd(layers: usize, removed: usize) -> [usize; 3] {
    let mut blocks = [layers; 3];
    let mut left = removed;
    while left > 0 {
        let mut removed_this_round = false;
        for block in (0..3).rev() {
            if left == 0 {
                break;
            }
            if blocks[block] > 1 {
                blocks[block] -= 1;
                left -= 1;
                removed_this_round = true;
            }
        }
        if !removed_this_round {
            break;
        }
    }
    blocks
}

/// Appends one dense layer (BN → ReLU → 3×3 conv producing `growth`
/// channels) and concatenates its output onto the running feature map.
fn dense_layer(b: &mut NetBuilder<'_>, growth: usize) -> Result<(), NnError> {
    let entry = b.here();
    b.bn()?.relu()?.conv(growth, 3, 1, 1)?;
    b.concat_from(entry)?;
    Ok(())
}

/// Appends a transition: BN → ReLU → 1×1 conv halving channels → 2×2
/// average pool.
fn transition(b: &mut NetBuilder<'_>) -> Result<(), NnError> {
    let c = b.shape().features();
    b.bn()?
        .relu()?
        .conv((c / 2).max(1), 1, 1, 0)?
        .avgpool(2, 2)?;
    Ok(())
}

/// Builds the DenseNet per `spec`.
///
/// SD injection: `removed_convs` removes dense layers (each one 3×3 conv),
/// starting from the last block, keeping one layer per block.
///
/// # Errors
///
/// Returns an error if the input is too small for the two transitions.
pub fn build(spec: &ModelSpec, rng: &mut ChaCha8Rng) -> Result<(Graph, Vec<ProbePoint>), NnError> {
    let d = dims(spec.scale);
    let blocks = apply_sd(d.layers_per_block, spec.removed_convs);
    let mut b = NetBuilder::new(spec.input_shape, rng);

    b.conv(d.stem, 3, 1, 1)?.bn()?.relu()?;
    b.probe("stem");

    for (i, &layer_count) in blocks.iter().enumerate() {
        for _ in 0..layer_count {
            dense_layer(&mut b, d.growth)?;
        }
        b.probe(&format!("block{}", i + 1));
        if i < 2 {
            transition(&mut b)?;
        }
    }

    b.bn()?.relu()?.gap()?;
    b.probe("gap");
    b.dense(spec.num_classes)?;
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::check_forward;
    use crate::spec::ModelFamily;
    use deepmorph_tensor::init::stream_rng;

    fn spec(scale: ModelScale, removed: usize) -> ModelSpec {
        ModelSpec::new(ModelFamily::DenseNet, scale, [3, 16, 16], 10).with_removed_convs(removed)
    }

    #[test]
    fn tiny_densenet_builds_and_forwards() {
        let mut rng = stream_rng(1, "densenet");
        let (mut g, probes) = build(&spec(ModelScale::Tiny, 0), &mut rng).unwrap();
        // stem + 3 blocks + gap
        assert_eq!(probes.len(), 5);
        check_forward(&mut g, [3, 16, 16], 2, 10).unwrap();
    }

    #[test]
    fn paper_scale_is_densenet40() {
        let d = dims(ModelScale::Paper);
        // Depth: 3 blocks * 12 conv layers + stem conv + 2 transition convs
        // + classifier = 40.
        assert_eq!(3 * d.layers_per_block + 1 + 2 + 1, 40);
        assert_eq!(d.growth, 12);
    }

    #[test]
    fn channel_growth_is_dense() {
        // After a block of L layers with growth k, channels = in + L*k.
        let mut rng = stream_rng(2, "densenet");
        let (_, probes) = build(&spec(ModelScale::Tiny, 0), &mut rng).unwrap();
        let stem = probes.iter().find(|p| p.label == "stem").unwrap();
        let block1 = probes.iter().find(|p| p.label == "block1").unwrap();
        assert_eq!(block1.features, stem.features + 3 * 4);
    }

    #[test]
    fn sd_removes_from_last_block_first() {
        assert_eq!(apply_sd(3, 1), [3, 3, 2]);
        assert_eq!(apply_sd(3, 3), [2, 2, 2]);
        assert_eq!(apply_sd(3, 99), [1, 1, 1]);
    }

    #[test]
    fn degraded_densenet_trains() {
        let mut rng = stream_rng(3, "densenet");
        let (mut g, _) = build(&spec(ModelScale::Tiny, 4), &mut rng).unwrap();
        let x = deepmorph_tensor::Tensor::zeros(&[2, 3, 16, 16]);
        let y = g.forward(&x, Mode::Train).unwrap();
        g.zero_grad();
        g.backward(&deepmorph_tensor::Tensor::ones(y.shape()))
            .unwrap();
        check_forward(&mut g, [3, 16, 16], 1, 10).unwrap();
    }
}
