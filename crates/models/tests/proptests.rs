//! Property-based tests for the model zoo: every (family, scale, SD
//! severity) combination must build, forward with correct shapes, and
//! expose consistent probe metadata.

use deepmorph_models::prelude::*;
use deepmorph_nn::prelude::Mode;
use deepmorph_tensor::init::stream_rng;
use deepmorph_tensor::Tensor;
use proptest::prelude::*;

fn family_strategy() -> impl Strategy<Value = ModelFamily> {
    prop_oneof![
        Just(ModelFamily::LeNet),
        Just(ModelFamily::AlexNet),
        Just(ModelFamily::ResNet),
        Just(ModelFamily::DenseNet),
    ]
}

fn input_shape(family: ModelFamily) -> [usize; 3] {
    match family {
        ModelFamily::LeNet | ModelFamily::AlexNet => [1, 16, 16],
        _ => [3, 16, 16],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_sd_severity_builds_and_forwards(
        family in family_strategy(),
        removed in 0usize..10,
        seed in 0u64..20,
    ) {
        let spec = ModelSpec::new(family, ModelScale::Tiny, input_shape(family), 10)
            .with_removed_convs(removed);
        let mut rng = stream_rng(seed, "prop-models");
        let mut handle = build_model(&spec, &mut rng).unwrap();
        let [c, h, w] = spec.input_shape;
        let x = Tensor::zeros(&[2, c, h, w]);
        let y = handle.graph.forward(&x, Mode::Eval).unwrap();
        prop_assert_eq!(y.shape(), &[2, 10]);
        prop_assert!(y.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn probe_metadata_matches_graph(
        family in family_strategy(),
        seed in 0u64..20,
    ) {
        let spec = ModelSpec::new(family, ModelScale::Tiny, input_shape(family), 10);
        let mut rng = stream_rng(seed, "prop-models");
        let mut handle = build_model(&spec, &mut rng).unwrap();
        let nodes: Vec<_> = handle.probes.iter().map(|p| p.node).collect();
        let [c, h, w] = spec.input_shape;
        let x = Tensor::zeros(&[3, c, h, w]);
        let (_, collected) = handle
            .graph
            .forward_collect(&x, Mode::Eval, &nodes)
            .unwrap();
        for (probe, activation) in handle.probes.iter().zip(&collected) {
            if probe.spatial {
                prop_assert_eq!(activation.ndim(), 4, "{}", probe.label);
                prop_assert_eq!(activation.shape()[1], probe.features);
            } else {
                prop_assert_eq!(activation.ndim(), 2, "{}", probe.label);
                prop_assert_eq!(activation.shape()[1], probe.features);
            }
        }
    }

    #[test]
    fn weight_init_is_seed_deterministic(
        family in family_strategy(),
        seed in 0u64..20,
    ) {
        let spec = ModelSpec::new(family, ModelScale::Tiny, input_shape(family), 10);
        let mut a = build_model(&spec, &mut stream_rng(seed, "prop-det")).unwrap();
        let mut b = build_model(&spec, &mut stream_rng(seed, "prop-det")).unwrap();
        let mut wa = Vec::new();
        a.graph.visit_params(&mut |p| wa.push(p.value.clone()));
        let mut i = 0;
        let mut equal = true;
        b.graph.visit_params(&mut |p| {
            if p.value != wa[i] {
                equal = false;
            }
            i += 1;
        });
        prop_assert!(equal);
        prop_assert_eq!(i, wa.len());
    }

    #[test]
    fn training_mode_backward_works_at_any_severity(
        family in family_strategy(),
        removed in 0usize..7,
    ) {
        let spec = ModelSpec::new(family, ModelScale::Tiny, input_shape(family), 10)
            .with_removed_convs(removed);
        let mut rng = stream_rng(5, "prop-models");
        let mut handle = build_model(&spec, &mut rng).unwrap();
        let [c, h, w] = spec.input_shape;
        let x = Tensor::full(&[2, c, h, w], 0.5);
        let y = handle.graph.forward(&x, Mode::Train).unwrap();
        handle.graph.zero_grad();
        handle.graph.backward(&Tensor::ones(y.shape())).unwrap();
        let mut any_grad = false;
        handle.graph.visit_params(&mut |p| {
            if p.grad.data().iter().any(|&v| v != 0.0) {
                any_grad = true;
            }
        });
        prop_assert!(any_grad, "no gradients flowed");
    }

    // --- model codec (io module) --------------------------------------

    #[test]
    fn saved_model_reproduces_predictions_exactly(
        family in family_strategy(),
        removed in 0usize..4,
        seed in 0u64..10,
    ) {
        let spec = ModelSpec::new(family, ModelScale::Tiny, input_shape(family), 10)
            .with_removed_convs(removed);
        let mut rng = stream_rng(seed, "prop-model-io");
        let mut handle = build_model(&spec, &mut rng).unwrap();
        let [c, h, w] = spec.input_shape;
        let x = Tensor::from_vec(
            (0..3 * c * h * w)
                .map(|i| ((i as u64 * 131 + seed) % 251) as f32 / 251.0)
                .collect(),
            &[3, c, h, w],
        ).unwrap();
        let y_before = handle.graph.forward(&x, Mode::Eval).unwrap();

        let bytes = encode_model(&mut handle);
        let mut reloaded = decode_model(&bytes).unwrap();
        prop_assert_eq!(reloaded.spec, spec);
        let y_after = reloaded.graph.forward(&x, Mode::Eval).unwrap();
        prop_assert_eq!(y_before.shape(), y_after.shape());
        for (a, b) in y_before.data().iter().zip(y_after.data()) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "logits diverged after reload");
        }
    }

    #[test]
    fn corrupted_model_bytes_never_panic(
        family in family_strategy(),
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let spec = ModelSpec::new(family, ModelScale::Tiny, input_shape(family), 10);
        let mut rng = stream_rng(3, "prop-model-io");
        let mut handle = build_model(&spec, &mut rng).unwrap();
        let mut bytes = encode_model(&mut handle);
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        // Must be a typed error, never a panic or a silently wrong model.
        prop_assert!(decode_model(&bytes).is_err());
    }

    #[test]
    fn truncated_model_bytes_never_panic(
        family in family_strategy(),
        cut_frac in 0.0f64..1.0,
    ) {
        let spec = ModelSpec::new(family, ModelScale::Tiny, input_shape(family), 10);
        let mut rng = stream_rng(4, "prop-model-io");
        let mut handle = build_model(&spec, &mut rng).unwrap();
        let bytes = encode_model(&mut handle);
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(decode_model(&bytes[..cut]).is_err());
    }
}
