//! Typed errors for the serving layer.
//!
//! Every failure a client can provoke — malformed frames, unknown models,
//! bad input shapes, an overloaded queue — maps to a wire [`ErrorCode`] so
//! the server can answer with a typed error frame instead of dying, and a
//! client can tell operator mistakes from server faults.

use std::fmt;

use deepmorph::DeepMorphError;
use deepmorph_models::ModelIoError;
use deepmorph_nn::NnError;
use deepmorph_tensor::io::CodecError;
use deepmorph_tensor::TensorError;

/// Wire-level error category carried by an error frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorCode {
    /// The request frame could not be decoded (truncated, corrupt, or an
    /// unknown message kind).
    Protocol,
    /// The named model is not in the registry.
    UnknownModel,
    /// The request decoded but its contents are unusable (wrong input
    /// shape, label/row count mismatch, empty batch, …).
    BadInput,
    /// The request queue is full; retry later.
    Busy,
    /// The server failed internally (replica build or forward error).
    Internal,
    /// Diagnosis is unavailable for this model (no dataset context, or no
    /// misclassified traffic accumulated yet).
    Diagnosis,
    /// A repair could not run (no actionable plan, repair already in
    /// progress, or the retrain failed).
    Repair,
    /// The server is over a load limit (connection cap reached); back off
    /// and retry.
    Overloaded,
    /// The request's deadline expired before compute; it was shed without
    /// running.
    Expired,
}

impl ErrorCode {
    /// Wire tag of the code.
    pub fn tag(self) -> u8 {
        match self {
            ErrorCode::Protocol => 1,
            ErrorCode::UnknownModel => 2,
            ErrorCode::BadInput => 3,
            ErrorCode::Busy => 4,
            ErrorCode::Internal => 5,
            ErrorCode::Diagnosis => 6,
            ErrorCode::Repair => 7,
            ErrorCode::Overloaded => 8,
            ErrorCode::Expired => 9,
        }
    }

    /// Decodes a wire tag (unknown tags fall back to `Internal`, so a
    /// newer server never makes an older client's decode fail).
    pub fn from_tag(tag: u8) -> ErrorCode {
        match tag {
            1 => ErrorCode::Protocol,
            2 => ErrorCode::UnknownModel,
            3 => ErrorCode::BadInput,
            4 => ErrorCode::Busy,
            6 => ErrorCode::Diagnosis,
            7 => ErrorCode::Repair,
            8 => ErrorCode::Overloaded,
            9 => ErrorCode::Expired,
            _ => ErrorCode::Internal,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorCode::Protocol => "protocol",
            ErrorCode::UnknownModel => "unknown-model",
            ErrorCode::BadInput => "bad-input",
            ErrorCode::Busy => "busy",
            ErrorCode::Internal => "internal",
            ErrorCode::Diagnosis => "diagnosis",
            ErrorCode::Repair => "repair",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Expired => "expired",
        };
        f.write_str(name)
    }
}

/// Errors produced by the serving layer (server- and client-side).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// A frame failed byte-level decoding.
    Codec(CodecError),
    /// A socket operation failed.
    Io {
        /// Stringified `std::io::Error` (kept as text so the error stays
        /// `Clone + PartialEq`).
        message: String,
    },
    /// The peer violated the framing protocol (oversized frame, stream
    /// desync, unexpected message kind).
    Protocol {
        /// Description of the violation.
        reason: String,
    },
    /// The named model is not registered.
    UnknownModel {
        /// The name the request carried.
        name: String,
    },
    /// The request contents are unusable.
    BadInput {
        /// Description of the problem.
        reason: String,
    },
    /// The request queue is at capacity.
    Busy {
        /// Queue depth at rejection time.
        queue_depth: usize,
    },
    /// A model replica could not be built or run.
    Model {
        /// Description of the failure.
        reason: String,
    },
    /// Live diagnosis could not run.
    Diagnosis {
        /// Description of the failure.
        reason: String,
    },
    /// Online repair could not run or complete.
    Repair {
        /// Description of the failure.
        reason: String,
    },
    /// The server is over a load limit (e.g. the connection cap); the
    /// request was rejected before any work ran.
    Overloaded {
        /// Description of the limit that was hit.
        reason: String,
    },
    /// The request's deadline expired before compute; the server shed it
    /// without running the batch.
    Expired {
        /// The deadline budget the request carried, in milliseconds.
        budget_ms: u64,
    },
    /// The server answered with an error frame (client-side view).
    Remote {
        /// Wire error category.
        code: ErrorCode,
        /// Server-provided message.
        message: String,
    },
    /// The server is shutting down and dropped the request.
    ShuttingDown,
}

impl ServeError {
    /// The wire code this error is reported under.
    pub fn code(&self) -> ErrorCode {
        match self {
            ServeError::Codec(_) | ServeError::Protocol { .. } => ErrorCode::Protocol,
            ServeError::UnknownModel { .. } => ErrorCode::UnknownModel,
            ServeError::BadInput { .. } => ErrorCode::BadInput,
            ServeError::Busy { .. } => ErrorCode::Busy,
            ServeError::Diagnosis { .. } => ErrorCode::Diagnosis,
            ServeError::Repair { .. } => ErrorCode::Repair,
            ServeError::Overloaded { .. } => ErrorCode::Overloaded,
            ServeError::Expired { .. } => ErrorCode::Expired,
            ServeError::Remote { code, .. } => *code,
            ServeError::Io { .. } | ServeError::Model { .. } | ServeError::ShuttingDown => {
                ErrorCode::Internal
            }
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Codec(e) => write!(f, "frame codec error: {e}"),
            ServeError::Io { message } => write!(f, "io error: {message}"),
            ServeError::Protocol { reason } => write!(f, "protocol violation: {reason}"),
            ServeError::UnknownModel { name } => write!(f, "unknown model `{name}`"),
            ServeError::BadInput { reason } => write!(f, "bad input: {reason}"),
            ServeError::Busy { queue_depth } => {
                write!(f, "server busy (queue depth {queue_depth})")
            }
            ServeError::Model { reason } => write!(f, "model error: {reason}"),
            ServeError::Diagnosis { reason } => write!(f, "diagnosis error: {reason}"),
            ServeError::Repair { reason } => write!(f, "repair error: {reason}"),
            ServeError::Overloaded { reason } => write!(f, "server overloaded: {reason}"),
            ServeError::Expired { budget_ms } => {
                write!(f, "deadline expired before compute (budget {budget_ms} ms)")
            }
            ServeError::Remote { code, message } => {
                write!(f, "server error [{code}]: {message}")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for ServeError {
    fn from(e: CodecError) -> Self {
        ServeError::Codec(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io {
            message: e.to_string(),
        }
    }
}

impl From<NnError> for ServeError {
    fn from(e: NnError) -> Self {
        ServeError::Model {
            reason: e.to_string(),
        }
    }
}

impl From<TensorError> for ServeError {
    fn from(e: TensorError) -> Self {
        ServeError::Model {
            reason: e.to_string(),
        }
    }
}

impl From<ModelIoError> for ServeError {
    fn from(e: ModelIoError) -> Self {
        ServeError::Model {
            reason: e.to_string(),
        }
    }
}

impl From<DeepMorphError> for ServeError {
    fn from(e: DeepMorphError) -> Self {
        ServeError::Diagnosis {
            reason: e.to_string(),
        }
    }
}

/// Result alias for the serving layer.
pub type ServeResult<T> = std::result::Result<T, ServeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for code in [
            ErrorCode::Protocol,
            ErrorCode::UnknownModel,
            ErrorCode::BadInput,
            ErrorCode::Busy,
            ErrorCode::Internal,
            ErrorCode::Diagnosis,
            ErrorCode::Repair,
            ErrorCode::Overloaded,
            ErrorCode::Expired,
        ] {
            assert_eq!(ErrorCode::from_tag(code.tag()), code);
        }
        assert_eq!(ErrorCode::from_tag(200), ErrorCode::Internal);
    }

    #[test]
    fn every_variant_maps_to_a_code() {
        assert_eq!(ServeError::Busy { queue_depth: 3 }.code(), ErrorCode::Busy);
        assert_eq!(
            ServeError::UnknownModel { name: "x".into() }.code(),
            ErrorCode::UnknownModel
        );
        assert_eq!(ServeError::ShuttingDown.code(), ErrorCode::Internal);
        assert_eq!(
            ServeError::Overloaded { reason: "x".into() }.code(),
            ErrorCode::Overloaded
        );
        assert_eq!(
            ServeError::Expired { budget_ms: 5 }.code(),
            ErrorCode::Expired
        );
    }
}
