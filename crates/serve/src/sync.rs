//! Poison-recovering lock accessors.
//!
//! The serving stack contains a panicked worker instead of dying with it
//! ([`crate::batch`]), which means a thread *can* panic while holding a
//! registry, history, session, or queue lock. The standard library marks the
//! lock poisoned; `lock().unwrap()` would then propagate a panic into every
//! other thread that touches the lock and wedge publish/diagnose forever.
//!
//! All guarded state in this crate is kept consistent *by construction* —
//! writers either finish a logical update before releasing the lock or leave
//! the old value in place — so recovering the guard with
//! [`PoisonError::into_inner`] is safe. These extension traits make that the
//! one idiom for every lock in the crate.

use std::sync::{
    Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};
use std::time::Duration;

/// Poison-recovering accessor for [`Mutex`].
pub(crate) trait LockRecover<T> {
    /// Locks, recovering the guard if a previous holder panicked.
    fn lock_recover(&self) -> MutexGuard<'_, T>;
}

impl<T> LockRecover<T> for Mutex<T> {
    fn lock_recover(&self) -> MutexGuard<'_, T> {
        self.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Poison-recovering accessors for [`RwLock`].
pub(crate) trait RwRecover<T> {
    /// Acquires a read guard, recovering from poisoning.
    fn read_recover(&self) -> RwLockReadGuard<'_, T>;
    /// Acquires a write guard, recovering from poisoning.
    fn write_recover(&self) -> RwLockWriteGuard<'_, T>;
}

impl<T> RwRecover<T> for RwLock<T> {
    fn read_recover(&self) -> RwLockReadGuard<'_, T> {
        self.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write_recover(&self) -> RwLockWriteGuard<'_, T> {
        self.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// `Condvar::wait` that recovers a poisoned guard instead of panicking.
pub(crate) fn wait_recover<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// `Condvar::wait_timeout` that recovers a poisoned guard instead of
/// panicking. The timeout flag is lost on the poison path, which is fine:
/// callers re-check their predicate either way.
pub(crate) fn wait_timeout_recover<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> MutexGuard<'a, T> {
    match cv.wait_timeout(guard, timeout) {
        Ok((guard, _)) => guard,
        Err(poisoned) => poisoned.into_inner().0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::{Arc, Mutex, RwLock};

    #[test]
    fn mutex_recovers_after_a_panicked_holder() {
        let shared = Arc::new(Mutex::new(7usize));
        let inner = Arc::clone(&shared);
        let _ = catch_unwind(AssertUnwindSafe(move || {
            let _guard = inner.lock().unwrap();
            panic!("holder dies with the lock");
        }));
        assert!(shared.lock().is_err(), "lock is poisoned");
        assert_eq!(*shared.lock_recover(), 7, "recovered guard still works");
        *shared.lock_recover() = 8;
        assert_eq!(*shared.lock_recover(), 8);
    }

    #[test]
    fn rwlock_recovers_after_a_panicked_writer() {
        let shared = Arc::new(RwLock::new(String::from("ok")));
        let inner = Arc::clone(&shared);
        let _ = catch_unwind(AssertUnwindSafe(move || {
            let _guard = inner.write().unwrap();
            panic!("writer dies with the lock");
        }));
        assert!(shared.read().is_err(), "lock is poisoned");
        assert_eq!(*shared.read_recover(), "ok");
        shared.write_recover().push('!');
        assert_eq!(*shared.read_recover(), "ok!");
    }
}
