//! The TCP inference server.
//!
//! A fixed pool of readiness-driven event-loop threads
//! (`crate::event_loop`) holds every connection; predicts are handed
//! to the [`Scheduler`]'s workers, whose responses are enqueued back on
//! the owning loop's per-connection outbound buffer. The thread count
//! is a function of configuration, never of connection count.
//!
//! Failure policy: **the server never dies on client input.** A frame
//! that fails to decode is answered with a typed error frame; a stream
//! whose framing is lost (corrupt length prefix, mid-frame disconnect)
//! gets a best-effort error frame and the connection — only the
//! connection — is closed. Running out of fds pauses *accepting*, not
//! serving.

use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, Once};

use deepmorph::pipeline::DeepMorphConfig;

use crate::batch::{BatchConfig, Scheduler, ServeStats};
use crate::cases::LiveCases;
use crate::error::{ServeError, ServeResult};
use crate::event_loop::{start_loop, LoopState};
use crate::protocol::MAX_FRAME_BYTES;
use crate::registry::ModelRegistry;
use crate::repair::{self, ArtifactBackend, PromoteResponse, RepairState};
use crate::sync::LockRecover;
use deepmorph_nn::prelude::Precision;

/// Listen backlog requested on the bound socket. `TcpListener::bind`
/// hardcodes 128, which a connection storm overflows into SYN
/// retransmit stalls; the kernel clamps this to `net.core.somaxconn`.
const LISTEN_BACKLOG: u32 = 4096;

/// `RLIMIT_NOFILE` target requested at first server start.
const NOFILE_TARGET: u64 = 1 << 20;

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Micro-batching configuration.
    pub batch: BatchConfig,
    /// Per-model cap on retained misclassified cases for live diagnosis.
    pub max_live_cases: usize,
    /// DeepMorph configuration used by the diagnose and repair endpoints.
    pub deepmorph: DeepMorphConfig,
    /// Where repair executions are cached (default: in-memory, so an
    /// identical repair of an unchanged model retrains nothing).
    pub artifacts: ArtifactBackend,
    /// Cap on simultaneously live connections; a connection beyond it is
    /// answered with one typed overloaded error frame and closed, so
    /// clients can tell admission rejection from a network failure (and
    /// their backoff policy treats it as retryable).
    pub max_connections: usize,
    /// Version retention for directory-backed registries: keep at most
    /// this many *superseded* versions per model on disk, garbage-
    /// collecting the oldest after each publish (versions pinned by an
    /// in-flight diagnosis session are never collected). `None` (the
    /// default) keeps everything, exactly as before this knob existed.
    pub retain_versions: Option<usize>,
    /// Event-loop I/O threads. Each owns one epoll instance and a
    /// round-robin share of the connections; loops never compute, so a
    /// small fixed pool carries tens of thousands of sockets.
    pub io_threads: usize,
    /// Hard cap on one connection's buffered outbound bytes. A peer
    /// that stops reading past it is disconnected (reads pause much
    /// earlier, at the soft watermark). Clamped to at least one
    /// maximum-size frame so a legitimate response can always buffer.
    pub max_outbound_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            batch: BatchConfig::default(),
            max_live_cases: 256,
            deepmorph: DeepMorphConfig {
                max_faulty_cases: 256,
                ..DeepMorphConfig::default()
            },
            artifacts: ArtifactBackend::default(),
            max_connections: 1024,
            retain_versions: None,
            io_threads: 2,
            max_outbound_bytes: 32 << 20,
        }
    }
}

pub(crate) struct ServerShared {
    pub(crate) registry: Arc<ModelRegistry>,
    pub(crate) stats: Arc<ServeStats>,
    pub(crate) scheduler: Arc<Scheduler>,
    /// Per-model misclassification buffers, parallel to the registry
    /// slots (versions of one name share a buffer; a hot-swap advances
    /// its epoch and clears it).
    pub(crate) cases: Vec<Arc<Mutex<LiveCases>>>,
    pub(crate) deepmorph: DeepMorphConfig,
    pub(crate) repair: RepairState,
    pub(crate) max_connections: usize,
    /// Per-connection outbound buffer cap (see
    /// [`ServerConfig::max_outbound_bytes`]).
    pub(crate) max_outbound: usize,
    pub(crate) shutdown: AtomicBool,
    /// The event loops' cross-thread faces (wakers, dirty sets, accept
    /// inboxes), indexed by loop.
    pub(crate) loops: Vec<Arc<LoopState>>,
    /// Live admin threads (diagnose/repair/rollback executors), reaped
    /// opportunistically and joined at shutdown.
    pub(crate) admin: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// A running inference server. Dropping it shuts it down.
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<ServerShared>,
    io_threads: Vec<std::thread::JoinHandle<()>>,
    stopped: bool,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .field("models", &self.shared.registry.len())
            .field("io_threads", &self.io_threads.len())
            .finish()
    }
}

impl Server {
    /// Binds, spawns the scheduler workers and the I/O event loops, and
    /// returns immediately. The first start in a process also raises
    /// `RLIMIT_NOFILE` as far as the kernel allows and logs the
    /// effective cap.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] if the address cannot be bound or the
    /// event loops cannot be set up, and [`ServeError::BadInput`] for an
    /// empty registry.
    pub fn start(registry: ModelRegistry, config: ServerConfig) -> ServeResult<Server> {
        if registry.is_empty() {
            return Err(ServeError::BadInput {
                reason: "refusing to serve an empty model registry".into(),
            });
        }
        // Once per process: a connection storm needs fds, and the
        // default soft limit (often 1024) dies at a fraction of what
        // the event loops can hold.
        static NOFILE: Once = Once::new();
        NOFILE.call_once(|| match deepmorph_net::raise_nofile_limit(NOFILE_TARGET) {
            Ok(cap) => eprintln!("deepmorph-serve: RLIMIT_NOFILE effective soft limit = {cap}"),
            Err(e) => eprintln!("deepmorph-serve: could not raise RLIMIT_NOFILE: {e}"),
        });
        registry.set_retention(config.retain_versions);
        let registry = Arc::new(registry);
        let stats = Arc::new(ServeStats::default());
        let scheduler = Arc::new(Scheduler::new(
            Arc::clone(&registry),
            config.batch,
            Arc::clone(&stats),
        ));
        let cases = registry
            .ids()
            .map(|id| {
                let mut cases =
                    LiveCases::new(registry.current(id).spec.input_shape, config.max_live_cases);
                // Align the buffer with the slot's current epoch. Today
                // every slot starts at epoch 0 (epochs are per-process,
                // not persisted), so this is a no-op kept so the pairing
                // survives any future change to slot construction.
                cases.advance_epoch(registry.epoch(id));
                Arc::new(Mutex::new(cases))
            })
            .collect();
        let repair = RepairState::new(registry.len(), &config.artifacts);
        let listener = TcpListener::bind(&config.addr)?;
        let _ = deepmorph_net::boost_listen_backlog(&listener, LISTEN_BACKLOG);
        let local_addr = listener.local_addr()?;
        let loops = (0..config.io_threads.max(1))
            .map(|_| LoopState::new().map(Arc::new))
            .collect::<std::io::Result<Vec<_>>>()?;
        let shared = Arc::new(ServerShared {
            registry,
            stats,
            scheduler,
            cases,
            deepmorph: config.deepmorph,
            repair,
            max_connections: config.max_connections.max(1),
            max_outbound: config.max_outbound_bytes.max(MAX_FRAME_BYTES + 4),
            shutdown: AtomicBool::new(false),
            loops,
            admin: Mutex::new(Vec::new()),
        });
        let mut io_threads = Vec::with_capacity(shared.loops.len());
        let mut listener = Some(listener);
        for index in 0..shared.loops.len() {
            let handle = start_loop(&shared, index, listener.take()).map_err(|e| {
                // Unblock and unwind whatever already started.
                shared.shutdown.store(true, Ordering::Release);
                for state in &shared.loops {
                    state.notify.waker.wake();
                }
                ServeError::Io {
                    message: format!("cannot start event loop {index}: {e}"),
                }
            })?;
            io_threads.push(handle);
        }
        Ok(Server {
            local_addr,
            shared,
            io_threads,
            stopped: false,
        })
    }

    /// The bound address (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The live serving counters.
    pub fn stats(&self) -> crate::protocol::StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Switches `model`'s serving replicas to a quantized precision (or
    /// back to f32), gated on the held-out set exactly like a repair
    /// hot-swap: the quantized replica must not lose accuracy against the
    /// f32 serving model, or nothing changes. An in-process
    /// administrative operation — predict traffic never waits on it;
    /// workers rebuild their replicas at the next batch boundary.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] for an unregistered name,
    /// [`ServeError::Diagnosis`] when the model has no provenance sidecar
    /// to regenerate the held-out set from, and [`ServeError::Model`]
    /// when the quantized replica cannot be built.
    pub fn promote_quantized(
        &self,
        model: &str,
        precision: Precision,
    ) -> ServeResult<PromoteResponse> {
        let id = self
            .shared
            .registry
            .find(model)
            .ok_or_else(|| ServeError::UnknownModel {
                name: model.to_string(),
            })?;
        repair::promote_quantized(&self.shared, id, precision)
    }

    /// Stops accepting connections, drains in-flight work, and joins
    /// every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        self.shared.shutdown.store(true, Ordering::Release);
        for state in &self.shared.loops {
            state.notify.waker.wake();
        }
        for handle in self.io_threads.drain(..) {
            let _ = handle.join();
        }
        let mut admin = self.shared.admin.lock_recover();
        for handle in admin.drain(..) {
            let _ = handle.join();
        }
        drop(admin);
        self.shared.scheduler.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}
