//! The threaded TCP inference server.
//!
//! One accept-loop thread spawns a thread per connection; connection
//! threads read frames, validate them, and either answer directly (ping,
//! listing, stats, diagnosis) or enqueue the request with the
//! [`Scheduler`] — whose worker then writes the predict response straight
//! to the connection, so the reply path of the hottest request type pays
//! no cross-thread wakeup.
//!
//! Failure policy: **the server never dies on client input.** A frame
//! that fails to decode is answered with a typed error frame; a stream
//! whose framing is lost (corrupt length prefix, mid-frame disconnect)
//! gets a best-effort error frame and the connection — only the
//! connection — is closed.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use deepmorph::pipeline::DeepMorphConfig;
use deepmorph_faults::NetAction;

use crate::batch::{validate_job, BatchConfig, Job, Responder, Scheduler, ServeStats};
use crate::cases::LiveCases;
use crate::error::{ServeError, ServeResult};
use crate::protocol::{
    decode_request, encode_response, ErrorFrame, Request, Response, MAX_FRAME_BYTES,
};
use crate::registry::ModelRegistry;
use crate::repair::{self, ArtifactBackend, PromoteResponse, RepairState};
use crate::sync::LockRecover;
use deepmorph_nn::prelude::Precision;

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Micro-batching configuration.
    pub batch: BatchConfig,
    /// Per-model cap on retained misclassified cases for live diagnosis.
    pub max_live_cases: usize,
    /// DeepMorph configuration used by the diagnose and repair endpoints.
    pub deepmorph: DeepMorphConfig,
    /// Where repair executions are cached (default: in-memory, so an
    /// identical repair of an unchanged model retrains nothing).
    pub artifacts: ArtifactBackend,
    /// Cap on simultaneously live connections; a connection beyond it is
    /// answered with one typed overloaded error frame and closed, so
    /// clients can tell admission rejection from a network failure (and
    /// their backoff policy treats it as retryable).
    pub max_connections: usize,
    /// Version retention for directory-backed registries: keep at most
    /// this many *superseded* versions per model on disk, garbage-
    /// collecting the oldest after each publish (versions pinned by an
    /// in-flight diagnosis session are never collected). `None` (the
    /// default) keeps everything, exactly as before this knob existed.
    pub retain_versions: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            batch: BatchConfig::default(),
            max_live_cases: 256,
            deepmorph: DeepMorphConfig {
                max_faulty_cases: 256,
                ..DeepMorphConfig::default()
            },
            artifacts: ArtifactBackend::default(),
            max_connections: 1024,
            retain_versions: None,
        }
    }
}

pub(crate) struct ServerShared {
    pub(crate) registry: Arc<ModelRegistry>,
    pub(crate) stats: Arc<ServeStats>,
    scheduler: Arc<Scheduler>,
    /// Per-model misclassification buffers, parallel to the registry
    /// slots (versions of one name share a buffer; a hot-swap advances
    /// its epoch and clears it).
    pub(crate) cases: Vec<Arc<Mutex<LiveCases>>>,
    pub(crate) deepmorph: DeepMorphConfig,
    pub(crate) repair: RepairState,
    max_connections: usize,
    shutdown: AtomicBool,
    connections: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// A running inference server. Dropping it shuts it down.
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept: Option<std::thread::JoinHandle<()>>,
    stopped: bool,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .field("models", &self.shared.registry.len())
            .finish()
    }
}

impl Server {
    /// Binds, spawns the scheduler workers and the accept loop, and
    /// returns immediately.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] if the address cannot be bound and
    /// [`ServeError::BadInput`] for an empty registry.
    pub fn start(registry: ModelRegistry, config: ServerConfig) -> ServeResult<Server> {
        if registry.is_empty() {
            return Err(ServeError::BadInput {
                reason: "refusing to serve an empty model registry".into(),
            });
        }
        registry.set_retention(config.retain_versions);
        let registry = Arc::new(registry);
        let stats = Arc::new(ServeStats::default());
        let scheduler = Arc::new(Scheduler::new(
            Arc::clone(&registry),
            config.batch,
            Arc::clone(&stats),
        ));
        let cases = registry
            .ids()
            .map(|id| {
                let mut cases =
                    LiveCases::new(registry.current(id).spec.input_shape, config.max_live_cases);
                // Align the buffer with the slot's current epoch. Today
                // every slot starts at epoch 0 (epochs are per-process,
                // not persisted), so this is a no-op kept so the pairing
                // survives any future change to slot construction.
                cases.advance_epoch(registry.epoch(id));
                Arc::new(Mutex::new(cases))
            })
            .collect();
        let repair = RepairState::new(registry.len(), &config.artifacts);
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            registry,
            stats,
            scheduler,
            cases,
            deepmorph: config.deepmorph,
            repair,
            max_connections: config.max_connections.max(1),
            shutdown: AtomicBool::new(false),
            connections: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("deepmorph-serve-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .map_err(|e| ServeError::Io {
                message: format!("cannot spawn accept thread: {e}"),
            })?;
        Ok(Server {
            local_addr,
            shared,
            accept: Some(accept),
            stopped: false,
        })
    }

    /// The bound address (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The live serving counters.
    pub fn stats(&self) -> crate::protocol::StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Switches `model`'s serving replicas to a quantized precision (or
    /// back to f32), gated on the held-out set exactly like a repair
    /// hot-swap: the quantized replica must not lose accuracy against the
    /// f32 serving model, or nothing changes. An in-process
    /// administrative operation — predict traffic never waits on it;
    /// workers rebuild their replicas at the next batch boundary.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] for an unregistered name,
    /// [`ServeError::Diagnosis`] when the model has no provenance sidecar
    /// to regenerate the held-out set from, and [`ServeError::Model`]
    /// when the quantized replica cannot be built.
    pub fn promote_quantized(
        &self,
        model: &str,
        precision: Precision,
    ) -> ServeResult<PromoteResponse> {
        let id = self
            .shared
            .registry
            .find(model)
            .ok_or_else(|| ServeError::UnknownModel {
                name: model.to_string(),
            })?;
        repair::promote_quantized(&self.shared, id, precision)
    }

    /// Stops accepting connections, drains in-flight work, and joins
    /// every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        self.shared.shutdown.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let mut connections = self.shared.connections.lock_recover();
        for handle in connections.drain(..) {
            let _ = handle.join();
        }
        drop(connections);
        self.shared.scheduler.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = stream else {
            // Accept errors (fd exhaustion, transient network failures)
            // tend to repeat immediately; don't busy-spin on them.
            std::thread::sleep(Duration::from_millis(10));
            continue;
        };
        let mut connections = shared.connections.lock_recover();
        // Reap finished connections so a long-lived server doesn't
        // accumulate a handle per connection it ever served.
        connections.retain(|h| !h.is_finished());
        if connections.len() >= shared.max_connections {
            // Admission control: answer with one typed frame (best
            // effort — the peer may already be gone) so clients can
            // back off and retry instead of diagnosing a dead server.
            shared.stats.conn_rejections.fetch_add(1, Ordering::Relaxed);
            let error = ServeError::Overloaded {
                reason: format!("connection limit ({}) reached", shared.max_connections),
            };
            let wire = encode_response(
                0,
                &Response::Error(ErrorFrame {
                    code: error.code(),
                    message: error.to_string(),
                }),
            );
            let mut stream = stream;
            let _ = stream.write_all(&wire);
            let _ = stream.flush();
            drop(stream);
            continue;
        }
        let conn_shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("deepmorph-serve-conn".into())
            .spawn(move || handle_connection(&conn_shared, stream));
        if let Ok(handle) = handle {
            connections.push(handle);
        }
    }
}

/// Outcome of pulling one frame off a connection.
enum FrameRead {
    /// A complete container (the `u32` prefix stripped).
    Frame(Vec<u8>),
    /// Peer closed cleanly between frames.
    Eof,
    /// Server shutdown was requested.
    Shutdown,
    /// Framing is unrecoverable (oversized claim, mid-frame disconnect).
    Corrupt(String),
}

/// Fills `buf` from the stream, tolerating read timeouts (used to poll
/// the shutdown flag). `Ok(false)` = clean EOF before the first byte.
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
) -> Result<bool, FrameRead> {
    let mut filled = 0;
    while filled < buf.len() {
        if shutdown.load(Ordering::Acquire) {
            return Err(FrameRead::Shutdown);
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(false)
                } else {
                    Err(FrameRead::Corrupt(format!(
                        "peer closed mid-frame ({filled}/{} bytes)",
                        buf.len()
                    )))
                };
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(FrameRead::Corrupt(format!("read error: {e}"))),
        }
    }
    Ok(true)
}

fn read_frame(stream: &mut TcpStream, shutdown: &AtomicBool) -> FrameRead {
    let mut prefix = [0u8; 4];
    match read_full(stream, &mut prefix, shutdown) {
        Ok(true) => {}
        Ok(false) => return FrameRead::Eof,
        Err(outcome) => return outcome,
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME_BYTES {
        return FrameRead::Corrupt(format!(
            "frame claims {len} bytes (limit {MAX_FRAME_BYTES})"
        ));
    }
    let mut frame = vec![0u8; len];
    match read_full(stream, &mut frame, shutdown) {
        Ok(true) => FrameRead::Frame(frame),
        // EOF exactly between prefix and body is still mid-frame.
        Ok(false) => FrameRead::Corrupt("peer closed after length prefix".into()),
        Err(outcome) => outcome,
    }
}

/// Writes one wire frame under the connection's write lock. Used by both
/// connection threads and scheduler workers.
///
/// This is the server's transport fault seam: when a fault plan is armed
/// (tests / chaos benches only — the consult is one relaxed atomic load
/// when it is not), a response frame may be silently dropped, truncated
/// mid-frame, stalled, or the connection reset, exactly the failures a
/// real network inflicts between a correct server and a correct client.
pub(crate) fn write_wire(writer: &Arc<Mutex<TcpStream>>, wire: &[u8]) -> std::io::Result<()> {
    let mut stream = writer.lock_recover();
    match deepmorph_faults::net_action() {
        NetAction::Deliver => {}
        NetAction::Drop => return Ok(()), // frame vanishes in the "network"
        NetAction::Truncate => {
            // Half a frame, then a dead connection: the client's framing
            // layer must detect the short read, not hang or mis-parse.
            stream.write_all(&wire[..wire.len() / 2])?;
            stream.flush()?;
            let _ = stream.shutdown(std::net::Shutdown::Both);
            return Err(std::io::Error::other("injected fault: truncated frame"));
        }
        NetAction::Stall(pause) => std::thread::sleep(pause),
        NetAction::Reset => {
            let _ = stream.shutdown(std::net::Shutdown::Both);
            return Err(std::io::Error::other("injected fault: connection reset"));
        }
    }
    stream.write_all(wire)?;
    stream.flush()
}

fn send_error(shared: &ServerShared, writer: &Arc<Mutex<TcpStream>>, id: u64, error: &ServeError) {
    shared.stats.errors.fetch_add(1, Ordering::Relaxed);
    let wire = encode_response(
        id,
        &Response::Error(ErrorFrame {
            code: error.code(),
            message: error.to_string(),
        }),
    );
    let _ = write_wire(writer, &wire);
}

fn handle_connection(shared: &Arc<ServerShared>, stream: TcpStream) {
    // Nagle would add milliseconds to every small frame exchange.
    let _ = stream.set_nodelay(true);
    // A finite read timeout lets the loop poll the shutdown flag.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new(write_half));
    let mut reader = stream;

    loop {
        match read_frame(&mut reader, &shared.shutdown) {
            FrameRead::Eof | FrameRead::Shutdown => return,
            FrameRead::Corrupt(reason) => {
                // Framing is lost: answer once (the peer may still be
                // reading) and drop the connection.
                send_error(shared, &writer, 0, &ServeError::Protocol { reason });
                return;
            }
            FrameRead::Frame(frame) => match decode_request(&frame) {
                // The length prefix was honored, so the stream is still
                // in sync: report the bad frame and keep serving.
                Err(e) => send_error(shared, &writer, 0, &ServeError::Codec(e)),
                Ok((id, request)) => handle_request(shared, &writer, id, request),
            },
        }
    }
}

fn handle_request(
    shared: &Arc<ServerShared>,
    writer: &Arc<Mutex<TcpStream>>,
    id: u64,
    request: Request,
) {
    let response = match request {
        Request::Ping => Response::Pong {
            models: shared.registry.len() as u64,
        },
        Request::ListModels => Response::Models(shared.registry.infos()),
        Request::Stats => Response::Stats(shared.stats.snapshot()),
        Request::Diagnose { model } => {
            let diagnosed = shared
                .registry
                .find(&model)
                .ok_or(ServeError::UnknownModel { name: model })
                .and_then(|mid| repair::diagnose_live(shared, mid));
            match diagnosed {
                Ok(d) => Response::Diagnose(d),
                Err(e) => return send_error(shared, writer, id, &e),
            }
        }
        Request::Repair { model } => {
            // Runs on the connection thread: the caller blocks for the
            // retrain, predict traffic does not.
            let repaired = shared
                .registry
                .find(&model)
                .ok_or(ServeError::UnknownModel { name: model })
                .and_then(|mid| repair::repair_live(shared, mid));
            match repaired {
                Ok(r) => Response::Repair(r),
                Err(e) => return send_error(shared, writer, id, &e),
            }
        }
        Request::Rollback { model } => {
            let rolled = shared
                .registry
                .find(&model)
                .ok_or(ServeError::UnknownModel { name: model })
                .and_then(|mid| repair::rollback_live(shared, mid));
            match rolled {
                Ok(r) => Response::Rollback(r),
                Err(e) => return send_error(shared, writer, id, &e),
            }
        }
        Request::ListVersions { model } => match shared.registry.find(&model) {
            Some(mid) => Response::Versions(shared.registry.versions(mid)),
            None => {
                return send_error(
                    shared,
                    writer,
                    id,
                    &ServeError::UnknownModel { name: model },
                )
            }
        },
        Request::Predict(p) => {
            let submitted = shared
                .registry
                .find(&p.model)
                .ok_or(ServeError::UnknownModel { name: p.model })
                .and_then(|model| {
                    validate_job(&shared.registry, model, &p.rows, &p.true_labels)?;
                    // A request-supplied deadline budget starts counting
                    // here, at admission; jobs still queued when it runs
                    // out are shed before compute.
                    let deadline = (p.deadline_ms > 0)
                        .then(|| Instant::now() + Duration::from_millis(p.deadline_ms));
                    shared.scheduler.submit(Job {
                        model,
                        rows: p.rows,
                        want_logits: p.want_logits,
                        cases: (!p.true_labels.is_empty())
                            .then(|| Arc::clone(&shared.cases[model.index()])),
                        true_labels: p.true_labels,
                        deadline,
                        deadline_ms: p.deadline_ms,
                        responder: Responder::Stream {
                            writer: Arc::clone(writer),
                            id,
                        },
                    })
                });
            match submitted {
                // The worker owns the reply now.
                Ok(()) => return,
                Err(e) => return send_error(shared, writer, id, &e),
            }
        }
    };
    let _ = write_wire(writer, &encode_response(id, &response));
}
