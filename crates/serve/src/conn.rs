//! Per-connection state shared between the event loops and the
//! scheduler workers.
//!
//! Three pieces live here:
//!
//! * [`FrameAssembler`] — the incremental decoder for the u32
//!   length-prefixed wire format. The event loop feeds it whatever byte
//!   chunks the socket yields; it emits complete frames and flags
//!   unrecoverable framing (oversized length claims) without ever
//!   panicking on hostile input. Public because the protocol proptests
//!   drive it directly with adversarial splits.
//! * `Outbound` — the bounded per-connection outbound byte buffer.
//!   Scheduler workers and admin threads *enqueue* response frames here
//!   instead of writing to the socket; the owning event loop flushes
//!   when the socket is writable. The bound is the backpressure policy:
//!   a peer that stops reading eventually overflows its buffer and is
//!   disconnected rather than growing server memory without limit.
//! * `ConnHandle` — what a worker holds: the outbound buffer plus the
//!   owning loop's waker. `ConnHandle::send` is the server's transport
//!   fault seam (the old `write_wire`): when a `deepmorph-faults` plan
//!   is armed, a response may be dropped, truncated, stalled, or the
//!   connection reset at this boundary, exactly as before the event
//!   loop existed.

use std::collections::VecDeque;
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

use deepmorph_faults::NetAction;

use crate::batch::ServeStats;
use crate::protocol::MAX_FRAME_BYTES;
use crate::sync::LockRecover;

/// Why a stream's framing was declared unrecoverable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FramingError {
    /// Human-readable reason, echoed in the typed error frame the
    /// server sends before closing the connection.
    pub reason: String,
}

enum AssemblerState {
    /// Accumulating the 4-byte length prefix.
    Prefix { buf: [u8; 4], filled: usize },
    /// Accumulating a frame body of known length.
    Body { buf: Vec<u8>, filled: usize },
    /// Framing lost; every further byte is rejected.
    Failed(String),
}

/// Incremental decoder for u32 length-prefixed frames.
///
/// Byte-boundary agnostic: a frame may arrive in any number of chunks
/// split anywhere, including mid-prefix, and multiple frames may share
/// one chunk. The assembler never allocates more than one frame body
/// (bounded by `max_frame`) and never panics on garbage.
pub struct FrameAssembler {
    max_frame: usize,
    state: AssemblerState,
}

impl FrameAssembler {
    /// A fresh assembler rejecting frames larger than `max_frame` bytes.
    pub fn new(max_frame: usize) -> FrameAssembler {
        FrameAssembler {
            max_frame,
            state: AssemblerState::Prefix {
                buf: [0; 4],
                filled: 0,
            },
        }
    }

    /// An assembler with the protocol's frame cap
    /// ([`MAX_FRAME_BYTES`]).
    pub fn for_protocol() -> FrameAssembler {
        FrameAssembler::new(MAX_FRAME_BYTES)
    }

    /// `true` while a frame is partially accumulated (a peer
    /// disconnecting now is a mid-frame disconnect, not a clean EOF).
    pub fn mid_frame(&self) -> bool {
        match &self.state {
            AssemblerState::Prefix { filled, .. } => *filled > 0,
            AssemblerState::Body { .. } => true,
            AssemblerState::Failed(_) => false,
        }
    }

    /// Consumes one chunk of stream bytes, appending every frame body
    /// that completed to `frames` (prefixes stripped).
    ///
    /// # Errors
    ///
    /// Returns [`FramingError`] when the stream claims a frame larger
    /// than the cap — resynchronization is impossible at that point, so
    /// the error is sticky and the connection must be closed after the
    /// typed error frame.
    pub fn feed(
        &mut self,
        mut chunk: &[u8],
        frames: &mut Vec<Vec<u8>>,
    ) -> Result<(), FramingError> {
        while !chunk.is_empty() {
            match &mut self.state {
                AssemblerState::Failed(reason) => {
                    return Err(FramingError {
                        reason: reason.clone(),
                    });
                }
                AssemblerState::Prefix { buf, filled } => {
                    let take = chunk.len().min(4 - *filled);
                    buf[*filled..*filled + take].copy_from_slice(&chunk[..take]);
                    *filled += take;
                    chunk = &chunk[take..];
                    if *filled == 4 {
                        let len = u32::from_le_bytes(*buf) as usize;
                        if len > self.max_frame {
                            let reason =
                                format!("frame claims {len} bytes (limit {})", self.max_frame);
                            self.state = AssemblerState::Failed(reason.clone());
                            return Err(FramingError { reason });
                        }
                        if len == 0 {
                            // A zero-length frame completes immediately;
                            // the decode layer rejects it as truncated.
                            frames.push(Vec::new());
                            self.state = AssemblerState::Prefix {
                                buf: [0; 4],
                                filled: 0,
                            };
                        } else {
                            self.state = AssemblerState::Body {
                                buf: vec![0; len],
                                filled: 0,
                            };
                        }
                    }
                }
                AssemblerState::Body { buf, filled } => {
                    let take = chunk.len().min(buf.len() - *filled);
                    buf[*filled..*filled + take].copy_from_slice(&chunk[..take]);
                    *filled += take;
                    chunk = &chunk[take..];
                    if *filled == buf.len() {
                        let body = std::mem::take(buf);
                        frames.push(body);
                        self.state = AssemblerState::Prefix {
                            buf: [0; 4],
                            filled: 0,
                        };
                    }
                }
            }
        }
        Ok(())
    }
}

/// What a flush attempt left behind.
pub(crate) enum FlushState {
    /// Buffer drained; connection stays in its steady state.
    Idle,
    /// Buffer drained and the connection was marked to close once empty
    /// (injected reset/truncate, or protocol error close).
    CloseNow,
    /// Bytes remain (socket would block); watch for writability.
    Pending {
        /// Bytes still buffered, for the backpressure check.
        buffered: usize,
    },
    /// The buffer was closed or overflowed; drop the connection.
    Dead,
}

struct OutState {
    buf: VecDeque<u8>,
    closed: bool,
    close_after_flush: bool,
}

/// Bounded outbound byte buffer of one connection.
///
/// Shared between the owning event loop (which flushes) and any number
/// of scheduler workers / admin threads (which enqueue). The short
/// critical sections — memcpy in, write syscall out — are why a plain
/// mutex is fine here.
pub(crate) struct Outbound {
    cap: usize,
    state: Mutex<OutState>,
}

impl Outbound {
    pub(crate) fn new(cap: usize) -> Outbound {
        Outbound {
            cap: cap.max(1),
            state: Mutex::new(OutState {
                buf: VecDeque::new(),
                closed: false,
                close_after_flush: false,
            }),
        }
    }

    /// Enqueues response bytes. Returns `false` when the connection is
    /// gone (bytes discarded) or the enqueue overflowed the bound —
    /// overflow means the peer has stopped reading faster than we
    /// produce, so the buffer is dropped wholesale and the connection
    /// marked dead for the loop to reap.
    pub(crate) fn push(&self, stats: &ServeStats, bytes: &[u8]) -> bool {
        let mut state = self.state.lock_recover();
        if state.closed {
            return false;
        }
        if state.buf.len() + bytes.len() > self.cap {
            state.closed = true;
            state.buf = VecDeque::new();
            return false;
        }
        state.buf.extend(bytes);
        stats
            .outbound_hwm_bytes
            .fetch_max(state.buf.len() as u64, Ordering::Relaxed);
        true
    }

    /// Marks the connection to be shut down once the buffer drains
    /// (typed-error close and the injected truncate/reset faults).
    pub(crate) fn mark_close_after_flush(&self) {
        self.state.lock_recover().close_after_flush = true;
    }

    /// Marks the connection dead immediately; subsequent pushes are
    /// discarded. Called by the loop when it drops the connection.
    pub(crate) fn close(&self) {
        let mut state = self.state.lock_recover();
        state.closed = true;
        state.buf = VecDeque::new();
    }

    /// Bytes currently buffered (the live flush path reports this via
    /// [`FlushState::Pending`]; only tests need to ask directly).
    #[cfg(test)]
    pub(crate) fn pending(&self) -> usize {
        self.state.lock_recover().buf.len()
    }

    /// Writes as much buffered data as the socket takes right now.
    ///
    /// # Errors
    ///
    /// Propagates real socket errors (connection reset etc.); the
    /// caller closes the connection. `WouldBlock` is not an error — it
    /// ends the flush with [`FlushState::Pending`].
    pub(crate) fn flush_into(&self, stream: &TcpStream) -> std::io::Result<FlushState> {
        let mut state = self.state.lock_recover();
        if state.closed {
            return Ok(FlushState::Dead);
        }
        while !state.buf.is_empty() {
            let (front, _) = state.buf.as_slices();
            debug_assert!(!front.is_empty());
            match (&mut (&*stream)).write(front) {
                Ok(0) => {
                    state.closed = true;
                    return Ok(FlushState::Dead);
                }
                Ok(n) => {
                    state.buf.drain(..n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    return Ok(FlushState::Pending {
                        buffered: state.buf.len(),
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    state.closed = true;
                    return Err(e);
                }
            }
        }
        Ok(if state.close_after_flush {
            FlushState::CloseNow
        } else {
            FlushState::Idle
        })
    }
}

/// How producer threads wake a (possibly sleeping) event loop and tell
/// it which connections have pending outbound bytes.
pub(crate) struct LoopNotify {
    /// Pulls the loop's `epoll_wait` out of the kernel.
    pub(crate) waker: deepmorph_net::Waker,
    /// Tokens with freshly enqueued outbound data.
    dirty: Mutex<Vec<u64>>,
}

impl LoopNotify {
    pub(crate) fn new() -> std::io::Result<LoopNotify> {
        Ok(LoopNotify {
            waker: deepmorph_net::Waker::new()?,
            dirty: Mutex::new(Vec::new()),
        })
    }

    /// Flags `token` as having pending outbound bytes and wakes the
    /// loop.
    pub(crate) fn notify(&self, token: u64) {
        self.dirty.lock_recover().push(token);
        self.waker.wake();
    }

    /// Drains the dirty set into `into` (deduplication is the caller's
    /// concern; flushing an already-flushed token is a no-op).
    pub(crate) fn take_dirty(&self, into: &mut Vec<u64>) {
        into.append(&mut self.dirty.lock_recover());
    }
}

/// A worker's handle to one connection: enqueue bytes, wake the loop.
///
/// Cloned into every [`crate::batch::Responder::Stream`]. Stale handles
/// (connection closed, token reused) degrade safely: pushes to a closed
/// [`Outbound`] are discarded, and a spurious dirty notification makes
/// the loop flush a connection that has nothing pending.
#[derive(Clone)]
pub(crate) struct ConnHandle {
    pub(crate) outbound: Arc<Outbound>,
    pub(crate) notify: Arc<LoopNotify>,
    pub(crate) token: u64,
}

impl ConnHandle {
    /// Enqueues one wire frame for delivery, applying the armed
    /// transport fault (if any) at this seam — the event-loop era
    /// equivalent of the old `write_wire`:
    ///
    /// * `Drop` — the frame vanishes in the "network".
    /// * `Truncate` — half the frame is delivered, then the connection
    ///   closes (after any previously queued frames flush, which on the
    ///   old direct-write path had already reached the socket).
    /// * `Stall` — the producer thread sleeps before enqueueing, the
    ///   same latency the old path injected before its write.
    /// * `Reset` — nothing more is delivered and the connection closes
    ///   after pending bytes flush.
    pub(crate) fn send(&self, stats: &ServeStats, wire: &[u8]) {
        match deepmorph_faults::net_action() {
            NetAction::Deliver => {
                self.outbound.push(stats, wire);
            }
            NetAction::Drop => return,
            NetAction::Truncate => {
                self.outbound.push(stats, &wire[..wire.len() / 2]);
                self.outbound.mark_close_after_flush();
            }
            NetAction::Stall(pause) => {
                std::thread::sleep(pause);
                self.outbound.push(stats, wire);
            }
            NetAction::Reset => {
                self.outbound.mark_close_after_flush();
            }
        }
        self.notify.notify(self.token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(body: &[u8]) -> Vec<u8> {
        let mut wire = (body.len() as u32).to_le_bytes().to_vec();
        wire.extend_from_slice(body);
        wire
    }

    #[test]
    fn assembler_reassembles_across_arbitrary_splits() {
        let bodies: Vec<Vec<u8>> = vec![vec![1, 2, 3], vec![], vec![9; 300], vec![42]];
        let mut wire = Vec::new();
        for body in &bodies {
            wire.extend_from_slice(&frame(body));
        }
        // Split after every single byte: the most adversarial chunking.
        let mut assembler = FrameAssembler::for_protocol();
        let mut frames = Vec::new();
        for byte in &wire {
            assembler
                .feed(std::slice::from_ref(byte), &mut frames)
                .unwrap();
        }
        assert_eq!(frames, bodies);
        assert!(!assembler.mid_frame());
    }

    #[test]
    fn assembler_emits_multiple_frames_from_one_chunk() {
        let mut wire = frame(b"abc");
        wire.extend_from_slice(&frame(b"defg"));
        wire.extend_from_slice(&frame(b""));
        let mut assembler = FrameAssembler::for_protocol();
        let mut frames = Vec::new();
        assembler.feed(&wire, &mut frames).unwrap();
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0], b"abc");
        assert_eq!(frames[1], b"defg");
        assert!(frames[2].is_empty());
    }

    #[test]
    fn oversized_claim_is_a_sticky_framing_error() {
        let mut assembler = FrameAssembler::new(64);
        let mut frames = Vec::new();
        let wire = frame(&[0u8; 65]);
        let err = assembler.feed(&wire, &mut frames).unwrap_err();
        assert!(
            err.reason.contains("65"),
            "reason names the claim: {}",
            err.reason
        );
        assert!(frames.is_empty());
        // Sticky: even innocent bytes afterwards keep failing.
        assert!(assembler.feed(&frame(b"x"), &mut frames).is_err());
    }

    #[test]
    fn outbound_overflow_kills_the_buffer_instead_of_growing() {
        let stats = ServeStats::default();
        let outbound = Outbound::new(10);
        assert!(outbound.push(&stats, &[0; 6]));
        assert!(!outbound.push(&stats, &[0; 6]), "11 bytes > cap of 10");
        assert_eq!(outbound.pending(), 0, "overflow drops the whole buffer");
        assert!(
            !outbound.push(&stats, &[0; 1]),
            "buffer is dead after overflow"
        );
        assert_eq!(stats.outbound_hwm_bytes.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn outbound_flushes_through_a_socket_pair() {
        use std::io::Read;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let stats = ServeStats::default();
        let outbound = Outbound::new(1 << 20);
        assert!(outbound.push(&stats, b"hello "));
        assert!(outbound.push(&stats, b"world"));
        match outbound.flush_into(&server_side).unwrap() {
            FlushState::Idle => {}
            _ => panic!("small write drains in one flush"),
        }
        let mut got = [0u8; 11];
        let mut client = client;
        client
            .set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .unwrap();
        client.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"hello world");

        outbound.mark_close_after_flush();
        match outbound.flush_into(&server_side).unwrap() {
            FlushState::CloseNow => {}
            _ => panic!("close-after-flush reported once drained"),
        }
    }
}
