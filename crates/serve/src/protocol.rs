//! The length-prefixed binary wire protocol.
//!
//! Every message travels as one *frame*:
//!
//! ```text
//! frame_len  u32        little-endian byte length of what follows
//! container  [u8; len]  a `deepmorph_tensor::io` sealed container:
//!   magic     b"DMSV"
//!   version   u16       codec version
//!   len       u64       body length
//!   body      [u8; len] message (below)
//!   checksum  u64       FNV-64 over magic..body
//! ```
//!
//! The `u32` prefix tells the socket reader how many bytes to pull; the
//! container's own magic/version/length/checksum then validate them, so a
//! truncated, corrupted, or desynchronized stream always surfaces as a
//! typed [`CodecError`] — the server answers with an error frame and never
//! dies.
//!
//! A body is `kind: u8`, `id: u64` (echoed verbatim in the response),
//! then kind-specific fields built from the same [`ByteWriter`] /
//! [`ByteReader`] primitives every other format in this workspace uses.
//! Request kinds occupy `0x00..=0x7E`; a response reuses the request's
//! kind with the high bit set, and `0x7F` is the error frame.

use deepmorph_telemetry::{
    HistogramSnapshot, KernelTiming, TelemetrySnapshot, Trace, VersionTraffic, NUM_BUCKETS,
    STAGE_COUNT,
};
use deepmorph_tensor::io::{
    open_container, read_tensor, seal_container, write_tensor, ByteReader, ByteWriter, CodecError,
    CodecResult,
};
use deepmorph_tensor::Tensor;

use crate::error::ErrorCode;

/// Magic tag of a serve frame container.
pub const FRAME_MAGIC: [u8; 4] = *b"DMSV";

/// Upper bound on a frame's container length. A peer claiming more is
/// answered with a protocol error before anything is allocated.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

const KIND_PING: u8 = 0;
const KIND_LIST_MODELS: u8 = 1;
const KIND_PREDICT: u8 = 2;
const KIND_DIAGNOSE: u8 = 3;
const KIND_STATS: u8 = 4;
const KIND_REPAIR: u8 = 5;
const KIND_LIST_VERSIONS: u8 = 6;
const KIND_ROLLBACK: u8 = 7;
const KIND_TELEMETRY: u8 = 8;
const RESPONSE_BIT: u8 = 0x80;
const KIND_ERROR: u8 = 0x7F;

/// Version tag of the telemetry response payload. The payload is
/// length-prefixed and append-only: a decoder reads the fields it knows
/// and skips the rest, so old clients tolerate counters and sections
/// appended by newer servers (unlike the fixed-layout `Stats` frame,
/// which stays bitwise-intact for existing clients).
pub const TELEMETRY_PAYLOAD_VERSION: u16 = 1;

/// A client→server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check; answered with [`Response::Pong`].
    Ping,
    /// Registry listing; answered with [`Response::Models`].
    ListModels,
    /// Batched inference; answered with [`Response::Predict`].
    Predict(PredictRequest),
    /// Live defect diagnosis over accumulated misclassified traffic;
    /// answered with [`Response::Diagnose`].
    Diagnose {
        /// Registered model name.
        model: String,
    },
    /// Serving counters; answered with [`Response::Stats`].
    Stats,
    /// Close the loop: diagnose the accumulated traffic, derive and
    /// execute the repair, and — if the retrained model holds up on the
    /// held-out set — hot-swap it in as a new version. Answered with
    /// [`Response::Repair`].
    Repair {
        /// Registered model name.
        model: String,
    },
    /// Version-chain listing for one model; answered with
    /// [`Response::Versions`].
    ListVersions {
        /// Registered model name.
        model: String,
    },
    /// Ungated revert to the previous version in the chain (the escape
    /// hatch when a gated repair turns out bad in production). Answered
    /// with [`Response::Rollback`].
    Rollback {
        /// Registered model name.
        model: String,
    },
    /// Full observability dump — counters plus latency histograms,
    /// per-stage spans, slowest traces, and per-version live-traffic
    /// stats; answered with [`Response::Telemetry`].
    Telemetry,
}

/// Payload of [`Request::Predict`].
#[derive(Debug, Clone, PartialEq)]
pub struct PredictRequest {
    /// Registered model name.
    pub model: String,
    /// Input rows, `[n, c, h, w]` matching the model's input shape.
    pub rows: Tensor,
    /// Return the raw logits alongside the argmax predictions.
    pub want_logits: bool,
    /// Ground-truth labels (one per row) for live defect accumulation;
    /// empty for unlabeled traffic.
    pub true_labels: Vec<usize>,
    /// Deadline budget in milliseconds, measured from the moment the
    /// server reads the frame; `0` means no deadline. A request still
    /// queued when its budget runs out is shed before compute with a
    /// typed [`ErrorCode::Expired`] frame.
    pub deadline_ms: u64,
}

/// A server→client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong {
        /// Number of registered models.
        models: u64,
    },
    /// Answer to [`Request::ListModels`].
    Models(Vec<ModelInfo>),
    /// Answer to [`Request::Predict`].
    Predict(PredictResponse),
    /// Answer to [`Request::Diagnose`].
    Diagnose(DiagnoseResponse),
    /// Answer to [`Request::Stats`].
    Stats(StatsSnapshot),
    /// Answer to [`Request::Repair`].
    Repair(RepairResponse),
    /// Answer to [`Request::ListVersions`].
    Versions(Vec<VersionInfo>),
    /// Answer to [`Request::Rollback`].
    Rollback(RollbackResponse),
    /// Answer to [`Request::Telemetry`].
    Telemetry(TelemetryReport),
    /// Typed failure; may answer any request.
    Error(ErrorFrame),
}

/// Payload of [`Response::Telemetry`]: the flat counters plus everything
/// the armed [`deepmorph_telemetry`] registry aggregated. When telemetry
/// is not armed, `armed` is `false` and `snapshot` is empty — the
/// counters still report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetryReport {
    /// The lifetime serving counters (same values as [`Response::Stats`],
    /// but carried in the versioned payload so appended counters don't
    /// break old clients).
    pub stats: StatsSnapshot,
    /// Whether a telemetry registry was armed when the snapshot was
    /// taken.
    pub armed: bool,
    /// Histograms, stage spans, slow traces, per-version traffic, and
    /// kernel timings.
    pub snapshot: TelemetrySnapshot,
}

impl TelemetryReport {
    /// Renders the report as Prometheus text exposition: the lifetime
    /// counters as `deepmorph_<name>` gauges/counters followed by the
    /// snapshot's histogram and per-version series.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let s = &self.stats;
        for (name, value) in [
            ("requests_total", s.requests),
            ("rows_total", s.rows),
            ("batches_total", s.batches),
            ("coalesced_batches_total", s.coalesced_batches),
            ("errors_total", s.errors),
            ("busy_rejections_total", s.busy_rejections),
            ("diagnoses_total", s.diagnoses),
            ("probe_trainings_total", s.probe_trainings),
            ("repairs_total", s.repairs),
            ("swaps_total", s.swaps),
            ("expired_total", s.expired),
            ("worker_panics_total", s.worker_panics),
            ("rollbacks_total", s.rollbacks),
            ("conn_rejections_total", s.conn_rejections),
            ("active_connections", s.active_connections),
            ("conns_accepted_total", s.conns_accepted),
            ("conns_closed_total", s.conns_closed),
            ("outbound_hwm_bytes", s.outbound_hwm_bytes),
            ("loop_wakeups_total", s.loop_wakeups),
            ("accept_backoffs_total", s.accept_backoffs),
        ] {
            let _ = writeln!(out, "deepmorph_{name} {value}");
        }
        let _ = writeln!(out, "deepmorph_telemetry_armed {}", u64::from(self.armed));
        out.push_str(&self.snapshot.to_prometheus());
        out
    }
}

/// One registry entry as reported by [`Response::Models`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelInfo {
    /// Registered name (the file stem for directory-loaded registries).
    pub name: String,
    /// Version currently serving under this name (starts at 1; bumped by
    /// every hot-swapped repair).
    pub version: u32,
    /// 128-bit content fingerprint of the model container, as hex.
    pub fingerprint: String,
    /// Expected input shape `[c, h, w]`.
    pub input_shape: [usize; 3],
    /// Number of output classes.
    pub num_classes: usize,
    /// Trainable parameter count.
    pub param_count: u64,
}

/// Payload of [`Response::Predict`].
#[derive(Debug, Clone, PartialEq)]
pub struct PredictResponse {
    /// Argmax class per input row.
    pub predictions: Vec<usize>,
    /// Raw logits `[n, classes]` when the request set `want_logits`.
    pub logits: Option<Tensor>,
}

/// Payload of [`Response::Diagnose`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiagnoseResponse {
    /// The `DefectReport` as JSON (parse with
    /// `deepmorph::report::DefectReport::from_json`).
    pub report_json: String,
    /// Number of accumulated misclassified cases the report covers.
    pub cases: u64,
}

/// Serving counters reported by [`Response::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Predict requests accepted into the queue.
    pub requests: u64,
    /// Input rows run through a model.
    pub rows: u64,
    /// `Graph::forward` calls (dispatched batches).
    pub batches: u64,
    /// Batches that coalesced more than one request.
    pub coalesced_batches: u64,
    /// Error frames sent.
    pub errors: u64,
    /// Requests rejected because the queue was full.
    pub busy_rejections: u64,
    /// Diagnose calls answered (repair calls include one).
    pub diagnoses: u64,
    /// Diagnosis sessions prepared — each is one probe-training pass. A
    /// second diagnose of an unchanged model must not move this counter:
    /// sessions are memoized per model content fingerprint.
    pub probe_trainings: u64,
    /// Repair calls answered.
    pub repairs: u64,
    /// Hot-swaps performed (repairs whose gate passed).
    pub swaps: u64,
    /// Requests shed because their deadline expired before compute.
    pub expired: u64,
    /// Worker panics contained by the scheduler (each one drops a batch
    /// but leaves the worker serving).
    pub worker_panics: u64,
    /// Rollback calls that reverted a version.
    pub rollbacks: u64,
    /// Connections rejected because the connection cap was reached.
    pub conn_rejections: u64,
    /// Connections currently registered with the event loops (a gauge,
    /// not a monotonic counter).
    pub active_connections: u64,
    /// Connections admitted past the cap check since start.
    pub conns_accepted: u64,
    /// Admitted connections that have since closed.
    pub conns_closed: u64,
    /// Largest per-connection outbound buffer observed, in bytes — how
    /// close a slow reader has come to the backpressure limit.
    pub outbound_hwm_bytes: u64,
    /// Event-loop `epoll_wait` returns. Mostly a liveness signal: a
    /// serving loop under traffic must keep waking.
    pub loop_wakeups: u64,
    /// Accept backoffs taken after `EMFILE`/`ENFILE` (fd exhaustion).
    pub accept_backoffs: u64,
}

impl StatsSnapshot {
    /// Mean rows per dispatched batch (0 when nothing ran yet).
    pub fn avg_batch_rows(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.rows as f64 / self.batches as f64
        }
    }
}

/// One version of a model's chain as reported by
/// [`Response::Versions`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionInfo {
    /// Version number (starts at 1).
    pub version: u32,
    /// Content fingerprint of that version's container.
    pub fingerprint: String,
    /// `true` for the version currently serving.
    pub active: bool,
}

/// Payload of [`Response::Repair`]: what the diagnose → repair →
/// hot-swap loop did.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairResponse {
    /// Human-readable repair plan that was executed.
    pub plan: String,
    /// Accumulated misclassified cases the diagnosis covered.
    pub cases: u64,
    /// Held-out accuracy of the version that was serving when the repair
    /// started.
    pub accuracy_before: f32,
    /// Held-out accuracy of the repaired, retrained model.
    pub accuracy_after: f32,
    /// Whether the repaired model was swapped in (`false` when the gate
    /// rejected it because it was no better than the serving version).
    pub swapped: bool,
    /// Version serving after this call (unchanged when not swapped).
    pub version: u32,
    /// Fingerprint of the version serving after this call.
    pub fingerprint: String,
    /// Wall time of the atomic swap itself — publish + traffic-buffer
    /// reset, not the retraining — in microseconds (0 when not swapped).
    pub swap_micros: u64,
}

/// Payload of [`Response::Rollback`]: the revert that was performed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RollbackResponse {
    /// Version serving after the rollback (the previous version in the
    /// chain, keeping its original number).
    pub version: u32,
    /// Fingerprint of the version serving after the rollback.
    pub fingerprint: String,
    /// Wall time of the atomic revert — pointer swap + traffic-buffer
    /// reset — in microseconds.
    pub swap_micros: u64,
}

/// Payload of [`Response::Error`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorFrame {
    /// Error category.
    pub code: ErrorCode,
    /// Human-readable description.
    pub message: String,
}

fn finish(kind: u8, id: u64, body: ByteWriter) -> Vec<u8> {
    let mut full = ByteWriter::new();
    full.put_u8(kind);
    full.put_u64(id);
    full.put_bytes(body.as_slice());
    let container = seal_container(FRAME_MAGIC, full.as_slice());
    let mut wire = Vec::with_capacity(4 + container.len());
    wire.extend_from_slice(&(container.len() as u32).to_le_bytes());
    wire.extend_from_slice(&container);
    wire
}

/// Encodes a request as wire bytes (length prefix included).
pub fn encode_request(id: u64, request: &Request) -> Vec<u8> {
    let mut w = ByteWriter::new();
    let kind = match request {
        Request::Ping => KIND_PING,
        Request::ListModels => KIND_LIST_MODELS,
        Request::Predict(p) => {
            w.put_str(&p.model);
            w.put_u8(u8::from(p.want_logits));
            w.put_u64(p.deadline_ms);
            write_tensor(&mut w, &p.rows);
            w.put_usizes(&p.true_labels);
            KIND_PREDICT
        }
        Request::Diagnose { model } => {
            w.put_str(model);
            KIND_DIAGNOSE
        }
        Request::Stats => KIND_STATS,
        Request::Repair { model } => {
            w.put_str(model);
            KIND_REPAIR
        }
        Request::ListVersions { model } => {
            w.put_str(model);
            KIND_LIST_VERSIONS
        }
        Request::Rollback { model } => {
            w.put_str(model);
            KIND_ROLLBACK
        }
        Request::Telemetry => KIND_TELEMETRY,
    };
    finish(kind, id, w)
}

/// Serving-counter values in their canonical wire order (the order the
/// `Stats` frame has always used; the telemetry payload prefixes it with
/// a count so the list can grow).
fn stats_values(s: &StatsSnapshot) -> [u64; 20] {
    [
        s.requests,
        s.rows,
        s.batches,
        s.coalesced_batches,
        s.errors,
        s.busy_rejections,
        s.diagnoses,
        s.probe_trainings,
        s.repairs,
        s.swaps,
        s.expired,
        s.worker_panics,
        s.rollbacks,
        s.conn_rejections,
        s.active_connections,
        s.conns_accepted,
        s.conns_closed,
        s.outbound_hwm_bytes,
        s.loop_wakeups,
        s.accept_backoffs,
    ]
}

fn stats_from_values(values: &[u64; 20]) -> StatsSnapshot {
    StatsSnapshot {
        requests: values[0],
        rows: values[1],
        batches: values[2],
        coalesced_batches: values[3],
        errors: values[4],
        busy_rejections: values[5],
        diagnoses: values[6],
        probe_trainings: values[7],
        repairs: values[8],
        swaps: values[9],
        expired: values[10],
        worker_panics: values[11],
        rollbacks: values[12],
        conn_rejections: values[13],
        active_connections: values[14],
        conns_accepted: values[15],
        conns_closed: values[16],
        outbound_hwm_bytes: values[17],
        loop_wakeups: values[18],
        accept_backoffs: values[19],
    }
}

/// Sparse histogram encoding: total bucket count, then `(index, count)`
/// pairs for the nonzero buckets only — a mostly-empty 1024-bucket
/// histogram costs a few dozen bytes, not 8 KiB.
fn write_histogram(w: &mut ByteWriter, hist: &HistogramSnapshot) {
    w.put_u64(hist.buckets.len() as u64);
    let nonzero = hist.buckets.iter().filter(|&&n| n > 0).count();
    w.put_u64(nonzero as u64);
    for (index, &count) in hist.buckets.iter().enumerate() {
        if count > 0 {
            w.put_u64(index as u64);
            w.put_u64(count);
        }
    }
}

fn read_histogram(r: &mut ByteReader<'_>) -> CodecResult<HistogramSnapshot> {
    // The sender's bucket count is informational: a peer with a larger
    // layout folds out-of-range indices into our top (saturation) bucket.
    let _sender_buckets = r.get_u64("histogram buckets")?;
    let nonzero = r.get_len("histogram nonzero")?;
    let mut snapshot = HistogramSnapshot::default();
    for _ in 0..nonzero {
        let index = r.get_len("histogram index")?.min(NUM_BUCKETS - 1);
        let count = r.get_u64("histogram count")?;
        snapshot.buckets[index] += count;
    }
    Ok(snapshot)
}

fn write_telemetry_payload(w: &mut ByteWriter, t: &TelemetryReport) {
    let counters = stats_values(&t.stats);
    w.put_u64(counters.len() as u64);
    for v in counters {
        w.put_u64(v);
    }
    w.put_u8(u8::from(t.armed));
    write_histogram(w, &t.snapshot.request_us);
    w.put_u64(t.snapshot.stages.len() as u64);
    for stage in &t.snapshot.stages {
        write_histogram(w, stage);
    }
    w.put_u64(t.snapshot.versions.len() as u64);
    for v in &t.snapshot.versions {
        w.put_str(&v.fingerprint);
        for value in [v.requests, v.errors, v.expired, v.labeled, v.misclassified] {
            w.put_u64(value);
        }
    }
    w.put_u64(t.snapshot.slowest.len() as u64);
    for trace in &t.snapshot.slowest {
        w.put_u64(trace.id);
        w.put_u64(trace.total_us);
        for &micros in &trace.stages {
            w.put_u64(micros);
        }
    }
    w.put_u64(t.snapshot.kernels.len() as u64);
    for kernel in &t.snapshot.kernels {
        w.put_u64(kernel.m);
        w.put_u64(kernel.k);
        w.put_u64(kernel.n);
        write_histogram(w, &kernel.nanos);
    }
}

fn read_telemetry_payload(r: &mut ByteReader<'_>) -> CodecResult<TelemetryReport> {
    // Counters: count-prefixed so a newer server can append fields
    // without breaking this decoder — unknown trailing counters are
    // consumed and dropped.
    let counter_count = r.get_len("telemetry counter count")?;
    let mut counters = [0u64; 20];
    for slot in 0..counter_count {
        let value = r.get_u64("telemetry counter")?;
        if slot < counters.len() {
            counters[slot] = value;
        }
    }
    let armed = r.get_u8("telemetry armed")? != 0;
    let request_us = read_histogram(r)?;
    let stage_count = r.get_len("telemetry stage count")?;
    let mut stages = Vec::with_capacity(stage_count.min(64));
    for _ in 0..stage_count {
        stages.push(read_histogram(r)?);
    }
    // `TelemetrySnapshot` consumers index stages by `Stage`; pad a short
    // (older) sender out to the full set.
    while stages.len() < STAGE_COUNT {
        stages.push(HistogramSnapshot::default());
    }
    let version_count = r.get_len("telemetry version count")?;
    let mut versions = Vec::with_capacity(version_count.min(64));
    for _ in 0..version_count {
        let fingerprint = r.get_str("telemetry version fingerprint")?;
        let mut values = [0u64; 5];
        for value in &mut values {
            *value = r.get_u64("telemetry version counter")?;
        }
        versions.push(VersionTraffic {
            fingerprint,
            requests: values[0],
            errors: values[1],
            expired: values[2],
            labeled: values[3],
            misclassified: values[4],
        });
    }
    let trace_count = r.get_len("telemetry trace count")?;
    let mut slowest = Vec::with_capacity(trace_count.min(64));
    for _ in 0..trace_count {
        let mut trace = Trace {
            id: r.get_u64("telemetry trace id")?,
            total_us: r.get_u64("telemetry trace total")?,
            stages: [0; STAGE_COUNT],
        };
        // Traces carry one span per stage the *sender* knew about;
        // spans past our fixed set are consumed and dropped.
        for slot in 0..stage_count {
            let micros = r.get_u64("telemetry trace stage")?;
            if slot < STAGE_COUNT {
                trace.stages[slot] = micros;
            }
        }
        slowest.push(trace);
    }
    let kernel_count = r.get_len("telemetry kernel count")?;
    let mut kernels = Vec::with_capacity(kernel_count.min(64));
    for _ in 0..kernel_count {
        kernels.push(KernelTiming {
            m: r.get_u64("telemetry kernel m")?,
            k: r.get_u64("telemetry kernel k")?,
            n: r.get_u64("telemetry kernel n")?,
            nanos: read_histogram(r)?,
        });
    }
    Ok(TelemetryReport {
        stats: stats_from_values(&counters),
        armed,
        snapshot: TelemetrySnapshot {
            request_us,
            stages,
            slowest,
            versions,
            kernels,
        },
    })
}

/// Encodes a response as wire bytes (length prefix included).
pub fn encode_response(id: u64, response: &Response) -> Vec<u8> {
    let mut w = ByteWriter::new();
    let kind = match response {
        Response::Pong { models } => {
            w.put_u64(*models);
            RESPONSE_BIT | KIND_PING
        }
        Response::Models(models) => {
            w.put_u64(models.len() as u64);
            for m in models {
                w.put_str(&m.name);
                w.put_u64(u64::from(m.version));
                w.put_str(&m.fingerprint);
                for &d in &m.input_shape {
                    w.put_u64(d as u64);
                }
                w.put_u64(m.num_classes as u64);
                w.put_u64(m.param_count);
            }
            RESPONSE_BIT | KIND_LIST_MODELS
        }
        Response::Predict(p) => {
            w.put_usizes(&p.predictions);
            w.put_u8(u8::from(p.logits.is_some()));
            if let Some(logits) = &p.logits {
                write_tensor(&mut w, logits);
            }
            RESPONSE_BIT | KIND_PREDICT
        }
        Response::Diagnose(d) => {
            w.put_str(&d.report_json);
            w.put_u64(d.cases);
            RESPONSE_BIT | KIND_DIAGNOSE
        }
        Response::Stats(s) => {
            for v in [
                s.requests,
                s.rows,
                s.batches,
                s.coalesced_batches,
                s.errors,
                s.busy_rejections,
                s.diagnoses,
                s.probe_trainings,
                s.repairs,
                s.swaps,
                s.expired,
                s.worker_panics,
                s.rollbacks,
                s.conn_rejections,
                s.active_connections,
                s.conns_accepted,
                s.conns_closed,
                s.outbound_hwm_bytes,
                s.loop_wakeups,
                s.accept_backoffs,
            ] {
                w.put_u64(v);
            }
            RESPONSE_BIT | KIND_STATS
        }
        Response::Repair(r) => {
            w.put_str(&r.plan);
            w.put_u64(r.cases);
            w.put_f32(r.accuracy_before);
            w.put_f32(r.accuracy_after);
            w.put_u8(u8::from(r.swapped));
            w.put_u64(u64::from(r.version));
            w.put_str(&r.fingerprint);
            w.put_u64(r.swap_micros);
            RESPONSE_BIT | KIND_REPAIR
        }
        Response::Versions(versions) => {
            w.put_u64(versions.len() as u64);
            for v in versions {
                w.put_u64(u64::from(v.version));
                w.put_str(&v.fingerprint);
                w.put_u8(u8::from(v.active));
            }
            RESPONSE_BIT | KIND_LIST_VERSIONS
        }
        Response::Rollback(r) => {
            w.put_u64(u64::from(r.version));
            w.put_str(&r.fingerprint);
            w.put_u64(r.swap_micros);
            RESPONSE_BIT | KIND_ROLLBACK
        }
        Response::Telemetry(t) => {
            // Versioned and length-prefixed: the outer decoder consumes
            // the payload as one opaque blob, so fields appended inside
            // it never trip the trailing-bytes check of old clients.
            let mut payload = ByteWriter::new();
            write_telemetry_payload(&mut payload, t);
            w.put_u16(TELEMETRY_PAYLOAD_VERSION);
            w.put_u64(payload.as_slice().len() as u64);
            w.put_bytes(payload.as_slice());
            RESPONSE_BIT | KIND_TELEMETRY
        }
        Response::Error(e) => {
            w.put_u8(e.code.tag());
            w.put_str(&e.message);
            KIND_ERROR
        }
    };
    finish(kind, id, w)
}

fn open_body(frame: &[u8]) -> CodecResult<(u8, u64, ByteReader<'_>)> {
    let payload = open_container(FRAME_MAGIC, frame)?;
    let mut r = ByteReader::new(payload);
    let kind = r.get_u8("frame kind")?;
    let id = r.get_u64("frame id")?;
    Ok((kind, id, r))
}

fn expect_exhausted(r: &ByteReader<'_>, what: &str) -> CodecResult<()> {
    if r.is_exhausted() {
        Ok(())
    } else {
        Err(CodecError::Invalid {
            context: format!("{} trailing bytes after {what}", r.remaining()),
        })
    }
}

/// Decodes a request frame (container bytes, without the `u32` prefix).
///
/// # Errors
///
/// Returns the typed [`CodecError`] for truncation, corruption, version
/// skew, or an unknown request kind.
pub fn decode_request(frame: &[u8]) -> CodecResult<(u64, Request)> {
    let (kind, id, mut r) = open_body(frame)?;
    let request = match kind {
        KIND_PING => Request::Ping,
        KIND_LIST_MODELS => Request::ListModels,
        KIND_PREDICT => {
            let model = r.get_str("predict model")?;
            let want_logits = r.get_u8("predict flags")? != 0;
            let deadline_ms = r.get_u64("predict deadline")?;
            let rows = read_tensor(&mut r)?;
            let true_labels = r.get_usizes("predict labels")?;
            Request::Predict(PredictRequest {
                model,
                rows,
                want_logits,
                true_labels,
                deadline_ms,
            })
        }
        KIND_DIAGNOSE => Request::Diagnose {
            model: r.get_str("diagnose model")?,
        },
        KIND_STATS => Request::Stats,
        KIND_REPAIR => Request::Repair {
            model: r.get_str("repair model")?,
        },
        KIND_LIST_VERSIONS => Request::ListVersions {
            model: r.get_str("list-versions model")?,
        },
        KIND_ROLLBACK => Request::Rollback {
            model: r.get_str("rollback model")?,
        },
        KIND_TELEMETRY => Request::Telemetry,
        other => {
            return Err(CodecError::Invalid {
                context: format!("unknown request kind {other:#04x}"),
            })
        }
    };
    expect_exhausted(&r, "request")?;
    Ok((id, request))
}

/// Decodes a response frame (container bytes, without the `u32` prefix).
///
/// # Errors
///
/// Same conditions as [`decode_request`].
pub fn decode_response(frame: &[u8]) -> CodecResult<(u64, Response)> {
    let (kind, id, mut r) = open_body(frame)?;
    let response = match kind {
        k if k == RESPONSE_BIT | KIND_PING => Response::Pong {
            models: r.get_u64("pong models")?,
        },
        k if k == RESPONSE_BIT | KIND_LIST_MODELS => {
            let n = r.get_len("model count")?;
            let mut models = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                models.push(ModelInfo {
                    name: r.get_str("model name")?,
                    version: u32::try_from(r.get_u64("model version")?).map_err(|_| {
                        CodecError::Invalid {
                            context: "model version exceeds u32".into(),
                        }
                    })?,
                    fingerprint: r.get_str("model fingerprint")?,
                    input_shape: [
                        r.get_len("model shape")?,
                        r.get_len("model shape")?,
                        r.get_len("model shape")?,
                    ],
                    num_classes: r.get_len("model classes")?,
                    param_count: r.get_u64("model params")?,
                });
            }
            Response::Models(models)
        }
        k if k == RESPONSE_BIT | KIND_PREDICT => {
            let predictions = r.get_usizes("predictions")?;
            let logits = if r.get_u8("logits flag")? != 0 {
                Some(read_tensor(&mut r)?)
            } else {
                None
            };
            Response::Predict(PredictResponse {
                predictions,
                logits,
            })
        }
        k if k == RESPONSE_BIT | KIND_DIAGNOSE => Response::Diagnose(DiagnoseResponse {
            report_json: r.get_str("report json")?,
            cases: r.get_u64("report cases")?,
        }),
        k if k == RESPONSE_BIT | KIND_STATS => Response::Stats(StatsSnapshot {
            requests: r.get_u64("stats")?,
            rows: r.get_u64("stats")?,
            batches: r.get_u64("stats")?,
            coalesced_batches: r.get_u64("stats")?,
            errors: r.get_u64("stats")?,
            busy_rejections: r.get_u64("stats")?,
            diagnoses: r.get_u64("stats")?,
            probe_trainings: r.get_u64("stats")?,
            repairs: r.get_u64("stats")?,
            swaps: r.get_u64("stats")?,
            expired: r.get_u64("stats")?,
            worker_panics: r.get_u64("stats")?,
            rollbacks: r.get_u64("stats")?,
            conn_rejections: r.get_u64("stats")?,
            active_connections: r.get_u64("stats")?,
            conns_accepted: r.get_u64("stats")?,
            conns_closed: r.get_u64("stats")?,
            outbound_hwm_bytes: r.get_u64("stats")?,
            loop_wakeups: r.get_u64("stats")?,
            accept_backoffs: r.get_u64("stats")?,
        }),
        k if k == RESPONSE_BIT | KIND_REPAIR => {
            let plan = r.get_str("repair plan")?;
            let cases = r.get_u64("repair cases")?;
            let accuracy_before = r.get_f32("repair accuracy")?;
            let accuracy_after = r.get_f32("repair accuracy")?;
            let swapped = r.get_u8("repair swapped")? != 0;
            let version =
                u32::try_from(r.get_u64("repair version")?).map_err(|_| CodecError::Invalid {
                    context: "repair version exceeds u32".into(),
                })?;
            Response::Repair(RepairResponse {
                plan,
                cases,
                accuracy_before,
                accuracy_after,
                swapped,
                version,
                fingerprint: r.get_str("repair fingerprint")?,
                swap_micros: r.get_u64("repair swap micros")?,
            })
        }
        k if k == RESPONSE_BIT | KIND_LIST_VERSIONS => {
            let n = r.get_len("version count")?;
            let mut versions = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                versions.push(VersionInfo {
                    version: u32::try_from(r.get_u64("version number")?).map_err(|_| {
                        CodecError::Invalid {
                            context: "version number exceeds u32".into(),
                        }
                    })?,
                    fingerprint: r.get_str("version fingerprint")?,
                    active: r.get_u8("version active")? != 0,
                });
            }
            Response::Versions(versions)
        }
        k if k == RESPONSE_BIT | KIND_ROLLBACK => {
            let version =
                u32::try_from(r.get_u64("rollback version")?).map_err(|_| CodecError::Invalid {
                    context: "rollback version exceeds u32".into(),
                })?;
            Response::Rollback(RollbackResponse {
                version,
                fingerprint: r.get_str("rollback fingerprint")?,
                swap_micros: r.get_u64("rollback swap micros")?,
            })
        }
        k if k == RESPONSE_BIT | KIND_TELEMETRY => {
            let version = r.get_u16("telemetry payload version")?;
            if version == 0 {
                return Err(CodecError::Invalid {
                    context: "telemetry payload version 0".into(),
                });
            }
            let len = r.get_len("telemetry payload length")?;
            let bytes = r.get_bytes(len, "telemetry payload")?;
            let mut inner = ByteReader::new(bytes);
            // Trailing bytes inside the payload are deliberately
            // tolerated: that's where future fields land.
            Response::Telemetry(read_telemetry_payload(&mut inner)?)
        }
        KIND_ERROR => Response::Error(ErrorFrame {
            code: ErrorCode::from_tag(r.get_u8("error code")?),
            message: r.get_str("error message")?,
        }),
        other => {
            return Err(CodecError::Invalid {
                context: format!("unknown response kind {other:#04x}"),
            })
        }
    };
    expect_exhausted(&r, "response")?;
    Ok((id, response))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strip_prefix(wire: &[u8]) -> &[u8] {
        let len = u32::from_le_bytes(wire[..4].try_into().unwrap()) as usize;
        assert_eq!(wire.len(), 4 + len);
        &wire[4..]
    }

    #[test]
    fn requests_round_trip() {
        let rows =
            Tensor::from_vec((0..8).map(|v| v as f32 * 0.5).collect(), &[2, 1, 2, 2]).unwrap();
        let cases = [
            Request::Ping,
            Request::ListModels,
            Request::Predict(PredictRequest {
                model: "lenet".into(),
                rows,
                want_logits: true,
                true_labels: vec![3, 7],
                deadline_ms: 250,
            }),
            Request::Diagnose {
                model: "lenet".into(),
            },
            Request::Stats,
            Request::Repair {
                model: "lenet".into(),
            },
            Request::ListVersions {
                model: "lenet".into(),
            },
            Request::Rollback {
                model: "lenet".into(),
            },
            Request::Telemetry,
        ];
        for (i, request) in cases.iter().enumerate() {
            let wire = encode_request(i as u64 + 10, request);
            let (id, back) = decode_request(strip_prefix(&wire)).unwrap();
            assert_eq!(id, i as u64 + 10);
            assert_eq!(&back, request);
        }
    }

    #[test]
    fn responses_round_trip() {
        let logits = Tensor::from_vec(vec![0.25, -1.5, f32::NEG_INFINITY, 3.0], &[2, 2]).unwrap();
        let cases = [
            Response::Pong { models: 2 },
            Response::Models(vec![ModelInfo {
                name: "lenet".into(),
                version: 3,
                fingerprint: "ab".repeat(16),
                input_shape: [1, 16, 16],
                num_classes: 10,
                param_count: 12345,
            }]),
            Response::Predict(PredictResponse {
                predictions: vec![1, 0],
                logits: Some(logits),
            }),
            Response::Predict(PredictResponse {
                predictions: vec![9],
                logits: None,
            }),
            Response::Diagnose(DiagnoseResponse {
                report_json: "{\"ratios\":{}}".into(),
                cases: 4,
            }),
            Response::Stats(StatsSnapshot {
                requests: 1,
                rows: 2,
                batches: 3,
                coalesced_batches: 1,
                errors: 0,
                busy_rejections: 5,
                diagnoses: 2,
                probe_trainings: 1,
                repairs: 1,
                swaps: 1,
                expired: 4,
                worker_panics: 1,
                rollbacks: 2,
                conn_rejections: 6,
                active_connections: 17,
                conns_accepted: 23,
                conns_closed: 6,
                outbound_hwm_bytes: 4096,
                loop_wakeups: 99,
                accept_backoffs: 1,
            }),
            Response::Repair(RepairResponse {
                plan: "collect more training data for classes [0, 1]".into(),
                cases: 17,
                accuracy_before: 0.62,
                accuracy_after: 0.84,
                swapped: true,
                version: 2,
                fingerprint: "cd".repeat(16),
                swap_micros: 412,
            }),
            Response::Versions(vec![
                VersionInfo {
                    version: 1,
                    fingerprint: "ab".repeat(16),
                    active: false,
                },
                VersionInfo {
                    version: 2,
                    fingerprint: "cd".repeat(16),
                    active: true,
                },
            ]),
            Response::Rollback(RollbackResponse {
                version: 1,
                fingerprint: "ab".repeat(16),
                swap_micros: 88,
            }),
            Response::Error(ErrorFrame {
                code: ErrorCode::Busy,
                message: "queue full".into(),
            }),
            Response::Error(ErrorFrame {
                code: ErrorCode::Expired,
                message: "deadline expired before compute".into(),
            }),
        ];
        for (i, response) in cases.iter().enumerate() {
            let wire = encode_response(i as u64, response);
            let (id, back) = decode_response(strip_prefix(&wire)).unwrap();
            assert_eq!(id, i as u64);
            assert_eq!(&back, response);
        }
    }

    #[test]
    fn corrupt_frames_are_typed() {
        let wire = encode_request(1, &Request::Ping);
        let frame = strip_prefix(&wire);

        // Truncations at every boundary.
        for cut in [0, 3, frame.len() / 2, frame.len() - 1] {
            assert!(decode_request(&frame[..cut]).is_err(), "cut {cut}");
        }

        // Bit flip → checksum mismatch.
        let mut bad = frame.to_vec();
        let mid = bad.len() - 9; // inside the body, before the checksum
        bad[mid] ^= 0x20;
        assert!(matches!(
            decode_request(&bad).unwrap_err(),
            CodecError::ChecksumMismatch { .. }
        ));

        // Unknown kind decodes the container but rejects the body.
        let mut w = ByteWriter::new();
        w.put_u8(0x6E);
        w.put_u64(0);
        let container = seal_container(FRAME_MAGIC, w.as_slice());
        assert!(matches!(
            decode_request(&container).unwrap_err(),
            CodecError::Invalid { .. }
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = ByteWriter::new();
        w.put_u8(KIND_PING);
        w.put_u64(4);
        w.put_u8(99); // stray byte
        let container = seal_container(FRAME_MAGIC, w.as_slice());
        assert!(matches!(
            decode_request(&container).unwrap_err(),
            CodecError::Invalid { .. }
        ));
    }

    #[test]
    fn avg_batch_rows_is_safe_on_zero() {
        assert_eq!(StatsSnapshot::default().avg_batch_rows(), 0.0);
    }

    fn populated_report() -> TelemetryReport {
        let telemetry =
            deepmorph_telemetry::Telemetry::new(deepmorph_telemetry::TelemetryConfig::default());
        telemetry.record_request(120);
        telemetry.record_request(90_000);
        telemetry.record_stage(deepmorph_telemetry::Stage::QueueWait, 40);
        telemetry.record_stage(deepmorph_telemetry::Stage::Compute, 85_000);
        telemetry.offer_trace(Trace {
            id: 7,
            total_us: 90_000,
            stages: [1, 2, 40, 3, 85_000, 9],
        });
        let v = telemetry.version(&"ef".repeat(16));
        v.requests.add(11);
        v.errors.add(1);
        v.expired.add(2);
        v.labeled.add(8);
        v.misclassified.add(3);
        TelemetryReport {
            stats: StatsSnapshot {
                requests: 13,
                errors: 1,
                expired: 2,
                ..StatsSnapshot::default()
            },
            armed: true,
            snapshot: telemetry.snapshot(),
        }
    }

    #[test]
    fn telemetry_round_trips() {
        for (i, report) in [TelemetryReport::default(), populated_report()]
            .into_iter()
            .enumerate()
        {
            let wire = encode_response(40 + i as u64, &Response::Telemetry(report.clone()));
            let (id, back) = decode_response(strip_prefix(&wire)).unwrap();
            assert_eq!(id, 40 + i as u64);
            assert_eq!(back, Response::Telemetry(report));
        }
    }

    #[test]
    fn telemetry_reports_misclassification_rate_per_version() {
        let report = populated_report();
        let wire = encode_response(1, &Response::Telemetry(report));
        let (_, back) = decode_response(strip_prefix(&wire)).unwrap();
        let Response::Telemetry(t) = back else {
            panic!("not a telemetry response");
        };
        assert_eq!(t.snapshot.versions.len(), 1);
        assert_eq!(t.snapshot.versions[0].fingerprint, "ef".repeat(16));
        assert_eq!(t.snapshot.versions[0].misclassification_rate(), 0.375);
        assert!(t.to_prometheus().contains(
            "deepmorph_version_misclassification_rate{fingerprint=\"efefefefefefefefefefefefefefefef\"} 0.375"
        ));
    }

    /// A *future* server appends counters and whole sections to the
    /// telemetry payload; this decoder must keep working, reading the
    /// fields it knows and skipping the rest.
    #[test]
    fn telemetry_payload_is_forward_compatible() {
        let mut payload = ByteWriter::new();
        // 22 counters — two more than this decoder knows about.
        payload.put_u64(22);
        for value in 1..=22u64 {
            payload.put_u64(value * 100);
        }
        payload.put_u8(1); // armed
        write_histogram(&mut payload, &HistogramSnapshot::default());
        // 8 stages — two more than this decoder's Stage enum.
        payload.put_u64(8);
        for _ in 0..8 {
            write_histogram(&mut payload, &HistogramSnapshot::default());
        }
        payload.put_u64(0); // versions
                            // One trace with 8 stage spans (matching the sender's stages).
        payload.put_u64(1);
        payload.put_u64(42); // id
        payload.put_u64(999); // total_us
        for span in 0..8u64 {
            payload.put_u64(span);
        }
        payload.put_u64(0); // kernels
                            // A section this decoder has never heard of.
        payload.put_str("future section");
        payload.put_u64(0xDEAD_BEEF);

        let mut body = ByteWriter::new();
        body.put_u8(RESPONSE_BIT | KIND_TELEMETRY);
        body.put_u64(77);
        body.put_u16(2); // a future payload version
        body.put_u64(payload.as_slice().len() as u64);
        body.put_bytes(payload.as_slice());
        let container = seal_container(FRAME_MAGIC, body.as_slice());

        let (id, back) = decode_response(&container).expect("forward-compatible decode");
        assert_eq!(id, 77);
        let Response::Telemetry(t) = back else {
            panic!("not a telemetry response");
        };
        assert!(t.armed);
        assert_eq!(t.stats.requests, 100);
        assert_eq!(t.stats.accept_backoffs, 2000); // 20th counter
        assert_eq!(t.snapshot.stages.len(), 8);
        assert_eq!(t.snapshot.slowest.len(), 1);
        assert_eq!(t.snapshot.slowest[0].id, 42);
        assert_eq!(t.snapshot.slowest[0].stages, [0, 1, 2, 3, 4, 5]);
    }

    /// The flip side of forward compat: the legacy fixed-layout Stats
    /// frame must stay bitwise-identical so existing clients never skew.
    #[test]
    fn stats_frame_layout_is_pinned() {
        let snapshot = StatsSnapshot {
            requests: 1,
            rows: 2,
            batches: 3,
            coalesced_batches: 4,
            errors: 5,
            busy_rejections: 6,
            diagnoses: 7,
            probe_trainings: 8,
            repairs: 9,
            swaps: 10,
            expired: 11,
            worker_panics: 12,
            rollbacks: 13,
            conn_rejections: 14,
            active_connections: 15,
            conns_accepted: 16,
            conns_closed: 17,
            outbound_hwm_bytes: 18,
            loop_wakeups: 19,
            accept_backoffs: 20,
        };
        let wire = encode_response(5, &Response::Stats(snapshot));
        let frame = strip_prefix(&wire);
        let body = open_container(FRAME_MAGIC, frame).unwrap();
        // kind + id + exactly 20 bare u64s — no prefix, no version tag.
        assert_eq!(body.len(), 1 + 8 + 20 * 8);
        assert_eq!(body[0], RESPONSE_BIT | KIND_STATS);
        for (i, chunk) in body[9..].chunks_exact(8).enumerate() {
            assert_eq!(
                u64::from_le_bytes(chunk.try_into().unwrap()),
                i as u64 + 1,
                "counter {i} moved"
            );
        }
    }
}
