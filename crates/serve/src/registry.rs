//! The model registry: named, versioned, hot-swappable models.
//!
//! A registry maps names to *version chains*. Each name owns a slot whose
//! current version sits behind an atomically swappable pointer
//! (`RwLock<Arc<ModelEntry>>` plus a monotonically increasing *epoch*):
//! [`ModelRegistry::publish`] installs a new version without ever making
//! predict traffic wait on anything slower than one uncontended read
//! lock. Scheduler workers cache the epoch alongside their replica and
//! refresh at batch boundaries when it moves, so an in-flight batch
//! always finishes on the version it started with — a swap can never
//! error a request or change a response mid-batch.
//!
//! Each version is decoded once at registration to validate it and
//! extract its spec, then kept as bytes; serving workers instantiate
//! *replicas* on demand — decoding rebuilds the architecture from the
//! spec and imports the exact state, so every replica predicts bitwise
//! identically to the model that was saved. Every version is stamped with
//! a 128-bit content fingerprint of its container bytes (the same FNV-1a
//! construction as the artifact store), reported to clients so they can
//! pin the exact model revision they are talking to.
//!
//! Registries load from a directory of `<name>.dmmd` /
//! `<name>@vN.dmmd` files ([`ModelRegistry::open`]) or take live models
//! in process ([`ModelRegistry::register`]). A directory-backed registry
//! persists published versions as `<name>@vN.dmmd` plus a
//! `<name>@vN.meta.json` sidecar, so a restart resumes serving the
//! repaired version.
//!
//! The `<name>.meta.json` sidecar supplies the [`DiagnosisContext`] the
//! live diagnosis and repair endpoints need — which deterministic dataset
//! (and seed), what defect was injected into the training set, and the
//! training hyper-parameters, so the server can regenerate the model's
//! actual training data and retrain without shipping either.
//!
//! # Crash consistency and recovery
//!
//! Publishing persists sidecar-then-model through tmp+rename, so the model
//! file's rename is the commit point. [`ModelRegistry::open`] is the other
//! half of that contract: stale `.tmp` files, truncated/corrupt `*.dmmd`
//! containers, and unparseable sidecars are *quarantined* (moved into a
//! `quarantine/` subdirectory) instead of failing startup — a crashed or
//! torn publish can cost at most the version it was publishing, never the
//! chain. Chains can also be *rolled back* ([`ModelRegistry::rollback`])
//! and bounded by a retention policy ([`ModelRegistry::set_retention`])
//! whose GC refuses to delete versions pinned by in-flight diagnosis
//! sessions ([`ModelRegistry::pin_version`]).

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use deepmorph::prelude::DefectSpec;
use deepmorph_data::DatasetKind;
use deepmorph_json::Json;
use deepmorph_models::{decode_model, encode_model, ModelHandle, ModelSpec};
use deepmorph_nn::prelude::{BackendKind, ComputeCtx, Precision, TrainConfig};
use deepmorph_nn::train::OptimizerKind;

pub use deepmorph::artifact::content_fingerprint;

use crate::error::{ServeError, ServeResult};
use crate::protocol::{ModelInfo, VersionInfo};
use crate::sync::{LockRecover, RwRecover};

/// File extension of a registry model container.
pub const MODEL_EXT: &str = "dmmd";

/// File suffix of a registry diagnosis sidecar.
pub const META_SUFFIX: &str = ".meta.json";

/// What the live-diagnosis and repair endpoints need to know about a
/// model's provenance: the deterministic training data it was fitted on
/// (including the defect injected into it — the paper's scenarios train
/// on *defective* data, and a repair has to modify that actual training
/// set), the held-out set size, and the training hyper-parameters a
/// repair retrains with.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagnosisContext {
    /// Synthetic dataset family the model was trained on.
    pub dataset: DatasetKind,
    /// Seed of the scenario data stream.
    pub seed: u64,
    /// Training samples generated per class (before injection).
    pub train_per_class: usize,
    /// Held-out samples generated per class (the clean test set repair
    /// gating evaluates on).
    pub test_per_class: usize,
    /// The defect injected into the training set ([`DefectSpec::Healthy`]
    /// when the data is clean).
    pub defect: DefectSpec,
    /// Training hyper-parameters a repair retrains with.
    pub train: TrainConfig,
}

impl DiagnosisContext {
    /// A context with the scenario defaults: clean data, 30 held-out
    /// samples per class, and the stock scenario training configuration
    /// (4 epochs, batch 32, lr 0.05).
    pub fn new(dataset: DatasetKind, seed: u64, train_per_class: usize) -> Self {
        DiagnosisContext {
            dataset,
            seed,
            train_per_class,
            test_per_class: 30,
            defect: DefectSpec::Healthy,
            train: TrainConfig {
                epochs: 4,
                batch_size: 32,
                learning_rate: 0.05,
                ..TrainConfig::default()
            },
        }
    }

    /// Sets the injected defect.
    pub fn with_defect(mut self, defect: DefectSpec) -> Self {
        self.defect = defect;
        self
    }

    /// Sets the held-out samples per class.
    pub fn with_test_per_class(mut self, n: usize) -> Self {
        self.test_per_class = n;
        self
    }

    /// Sets the training configuration.
    pub fn with_train_config(mut self, train: TrainConfig) -> Self {
        self.train = train;
        self
    }

    fn defect_json(&self) -> Json {
        match &self.defect {
            DefectSpec::Healthy => Json::obj([("kind", Json::str("healthy"))]),
            DefectSpec::Itd { classes, fraction } => Json::obj([
                ("kind", Json::str("itd")),
                (
                    "classes",
                    Json::arr(classes.iter().map(|&c| Json::usize(c))),
                ),
                ("fraction", Json::num(f64::from(*fraction))),
            ]),
            DefectSpec::Utd {
                source_class,
                target_class,
                fraction,
            } => Json::obj([
                ("kind", Json::str("utd")),
                ("source", Json::usize(*source_class)),
                ("target", Json::usize(*target_class)),
                ("fraction", Json::num(f64::from(*fraction))),
            ]),
            DefectSpec::Sd { removed_convs } => Json::obj([
                ("kind", Json::str("sd")),
                ("removed_convs", Json::usize(*removed_convs)),
            ]),
        }
    }

    fn train_json(&self) -> Json {
        let optimizer = match self.train.optimizer {
            OptimizerKind::Sgd {
                momentum,
                weight_decay,
            } => Json::obj([
                ("kind", Json::str("sgd")),
                ("momentum", Json::num(f64::from(momentum))),
                ("weight_decay", Json::num(f64::from(weight_decay))),
            ]),
            OptimizerKind::Adam => Json::obj([("kind", Json::str("adam"))]),
        };
        let mut fields = vec![
            ("epochs", Json::usize(self.train.epochs)),
            ("batch_size", Json::usize(self.train.batch_size)),
            (
                "learning_rate",
                Json::num(f64::from(self.train.learning_rate)),
            ),
            ("lr_decay", Json::num(f64::from(self.train.lr_decay))),
            ("optimizer", optimizer),
            ("shuffle", Json::Bool(self.train.shuffle)),
        ];
        if let Some(clip) = self.train.clip_grad_norm {
            fields.push(("clip_grad_norm", Json::num(f64::from(clip))));
        }
        Json::obj(fields)
    }

    /// Serializes the context as the sidecar JSON document.
    pub fn to_json(&self) -> String {
        Json::obj([
            ("dataset", Json::str(self.dataset.name())),
            ("seed", Json::num(self.seed as f64)),
            ("train_per_class", Json::usize(self.train_per_class)),
            ("test_per_class", Json::usize(self.test_per_class)),
            ("defect", self.defect_json()),
            ("train", self.train_json()),
        ])
        .to_string_pretty()
    }

    fn parse_defect(doc: &Json) -> ServeResult<DefectSpec> {
        let bad = |reason: String| ServeError::BadInput { reason };
        let Some(defect) = doc.get("defect") else {
            // Pre-versioning sidecars carry no defect: clean data.
            return Ok(DefectSpec::Healthy);
        };
        let fraction = |d: &Json| {
            d.get("fraction")
                .and_then(Json::as_f64)
                .filter(|f| (0.0..=1.0).contains(f))
                .map(|f| f as f32)
                .ok_or_else(|| bad("defect lacks a `fraction` in [0, 1]".into()))
        };
        match defect.get("kind").and_then(Json::as_str) {
            Some("healthy") => Ok(DefectSpec::Healthy),
            Some("itd") => {
                let classes = defect
                    .get("classes")
                    .and_then(Json::as_arr)
                    .map(|a| a.iter().map(Json::as_usize).collect::<Option<Vec<_>>>())
                    .ok_or_else(|| bad("ITD defect lacks `classes`".into()))?
                    .ok_or_else(|| bad("ITD defect classes must be integers".into()))?;
                Ok(DefectSpec::insufficient_training_data(
                    classes,
                    fraction(defect)?,
                ))
            }
            Some("utd") => {
                let field = |k: &str| {
                    defect
                        .get(k)
                        .and_then(Json::as_usize)
                        .ok_or_else(|| bad(format!("UTD defect lacks `{k}`")))
                };
                Ok(DefectSpec::unreliable_training_data(
                    field("source")?,
                    field("target")?,
                    fraction(defect)?,
                ))
            }
            Some("sd") => Ok(DefectSpec::structure_defect(
                defect
                    .get("removed_convs")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| bad("SD defect lacks `removed_convs`".into()))?,
            )),
            Some(other) => Err(bad(format!("unknown defect kind `{other}`"))),
            None => Err(bad("defect lacks `kind`".into())),
        }
    }

    /// Parses a sidecar JSON document. Fields added since the first
    /// sidecar revision (defect, held-out size, training config) fall back
    /// to the scenario defaults, so old sidecars keep working.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadInput`] for unparseable JSON, missing
    /// required keys, or an unknown dataset/defect.
    pub fn from_json(text: &str) -> ServeResult<Self> {
        let bad = |reason: String| ServeError::BadInput { reason };
        let doc = Json::parse(text).map_err(|e| bad(format!("diagnosis sidecar: {e}")))?;
        let dataset = match doc.get("dataset").and_then(Json::as_str) {
            Some("synth-digits") | Some("digits") => DatasetKind::Digits,
            Some("synth-objects") | Some("objects") => DatasetKind::Objects,
            Some(other) => return Err(bad(format!("unknown dataset `{other}`"))),
            None => return Err(bad("diagnosis sidecar lacks `dataset`".into())),
        };
        let seed = doc
            .get("seed")
            .and_then(Json::as_f64)
            .filter(|v| *v >= 0.0 && v.fract() == 0.0)
            .ok_or_else(|| bad("diagnosis sidecar lacks an integral `seed`".into()))?
            as u64;
        let train_per_class = doc
            .get("train_per_class")
            .and_then(Json::as_usize)
            .filter(|&n| n > 0)
            .ok_or_else(|| bad("diagnosis sidecar lacks a positive `train_per_class`".into()))?;
        let mut ctx = DiagnosisContext::new(dataset, seed, train_per_class);
        if let Some(n) = doc.get("test_per_class").and_then(Json::as_usize) {
            if n == 0 {
                return Err(bad("`test_per_class` must be positive".into()));
            }
            ctx.test_per_class = n;
        }
        ctx.defect = Self::parse_defect(&doc)?;
        if let Some(train) = doc.get("train") {
            if let Some(epochs) = train.get("epochs").and_then(Json::as_usize) {
                ctx.train.epochs = epochs;
            }
            if let Some(batch) = train.get("batch_size").and_then(Json::as_usize) {
                ctx.train.batch_size = batch;
            }
            if let Some(lr) = train.get("learning_rate").and_then(Json::as_f64) {
                ctx.train.learning_rate = lr as f32;
            }
            if let Some(decay) = train.get("lr_decay").and_then(Json::as_f64) {
                ctx.train.lr_decay = decay as f32;
            }
            if let Some(shuffle) = train.get("shuffle").and_then(Json::as_bool) {
                ctx.train.shuffle = shuffle;
            }
            ctx.train.clip_grad_norm = train
                .get("clip_grad_norm")
                .and_then(Json::as_f64)
                .map(|c| c as f32);
            if let Some(optimizer) = train.get("optimizer") {
                ctx.train.optimizer = match optimizer.get("kind").and_then(Json::as_str) {
                    Some("sgd") => {
                        let field = |k: &str| {
                            optimizer
                                .get(k)
                                .and_then(Json::as_f64)
                                .map(|v| v as f32)
                                .ok_or_else(|| bad(format!("sgd optimizer lacks `{k}`")))
                        };
                        OptimizerKind::Sgd {
                            momentum: field("momentum")?,
                            weight_decay: field("weight_decay")?,
                        }
                    }
                    Some("adam") => OptimizerKind::Adam,
                    Some(other) => return Err(bad(format!("unknown optimizer `{other}`"))),
                    None => return Err(bad("optimizer lacks `kind`".into())),
                };
            }
        }
        Ok(ctx)
    }
}

/// A stable handle to one registered model name. Handles index the
/// registry's slot table, which only grows before serving starts —
/// they stay valid across any number of version swaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelId(pub(crate) usize);

impl ModelId {
    /// Slot index for registry-parallel server tables.
    pub(crate) fn index(self) -> usize {
        self.0
    }
}

/// One concrete model version.
#[derive(Debug, Clone)]
pub struct ModelEntry {
    /// Registered name (without the `@vN` version suffix).
    pub name: String,
    /// Version number within the name's chain (starts at 1).
    pub version: u32,
    /// Content fingerprint of the container bytes (32 hex chars).
    pub fingerprint: String,
    /// The spec the model was built from.
    pub spec: ModelSpec,
    /// Trainable parameter count.
    pub param_count: usize,
    /// Training-data provenance for live diagnosis, when known.
    pub diagnosis: Option<DiagnosisContext>,
    /// Inference precision serving replicas of this version run at.
    /// Always [`Precision::F32`] for freshly registered/published
    /// versions; [`ModelRegistry::set_serving_mode`] installs quantized
    /// serving variants. Diagnosis and repair always work on the f32
    /// parameters ([`ModelEntry::instantiate`]), never the quantized view.
    pub precision: Precision,
    /// Compute backend serving replicas of this version bind.
    pub backend: BackendKind,
    /// The encoded model container.
    bytes: Vec<u8>,
}

impl ModelEntry {
    /// The entry as wire metadata.
    pub fn info(&self) -> ModelInfo {
        ModelInfo {
            name: self.name.clone(),
            version: self.version,
            fingerprint: self.fingerprint.clone(),
            input_shape: self.spec.input_shape,
            num_classes: self.spec.num_classes,
            param_count: self.param_count as u64,
        }
    }

    /// Builds an independent replica of this version: the spec rebuilds
    /// the architecture, the stored state dict restores the exact
    /// parameters. Replicas share no storage, so each serving worker owns
    /// its own and forwards concurrently.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Model`] if the stored bytes no longer decode
    /// against the current architecture code.
    pub fn instantiate(&self) -> ServeResult<ModelHandle> {
        Ok(decode_model(&self.bytes)?)
    }

    /// A clone of this version with a different serving mode. Same bytes,
    /// same fingerprint, same version number — only how serving replicas
    /// are prepared changes. Constructed here because the container bytes
    /// are private to the registry.
    pub fn with_serving_mode(&self, precision: Precision, backend: BackendKind) -> ModelEntry {
        let mut entry = self.clone();
        entry.precision = precision;
        entry.backend = backend;
        entry
    }

    /// Builds a replica prepared for *serving*: instantiates the f32
    /// model, binds the entry's compute backend, and applies its serving
    /// precision (f16 parameter rounding or i8 weight quantization).
    /// For the default mode (f32 + scalar) this is exactly
    /// [`ModelEntry::instantiate`] — bitwise-identical serving.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Model`] if the bytes no longer decode or the
    /// precision cannot be applied.
    pub fn instantiate_for_serving(&self) -> ServeResult<ModelHandle> {
        let mut model = self.instantiate()?;
        if self.backend != BackendKind::Scalar {
            model.bind_compute(&ComputeCtx::for_kind(self.backend));
        }
        if self.precision != Precision::F32 {
            model
                .apply_precision(self.precision)
                .map_err(|e| ServeError::Model {
                    reason: format!("applying {} serving precision: {e}", self.precision),
                })?;
        }
        Ok(model)
    }
}

/// Metadata of one (possibly superseded) version in a chain.
#[derive(Debug, Clone)]
struct VersionMeta {
    version: u32,
    fingerprint: String,
    /// The decoded entry of a *superseded* version, kept in memory so a
    /// rollback can restore it without touching disk. `None` for the
    /// active version, for versions GC'd from memory, and for superseded
    /// versions discovered by `open` (those reload from their `@vN` file).
    retained: Option<Arc<ModelEntry>>,
}

/// One name's version chain: the swappable current version plus the
/// chain's history.
#[derive(Debug)]
struct ModelSlot {
    name: String,
    /// `(epoch, current version)` — kept together under one lock so a
    /// reader can never pair a new epoch with an old entry or vice versa.
    current: RwLock<(u64, Arc<ModelEntry>)>,
    /// Lock-free mirror of the epoch for the scheduler's per-batch
    /// staleness check (one atomic load on the hot path; the read lock is
    /// only taken when the epoch actually moved).
    epoch_hint: AtomicU64,
    /// Every version ever registered under this name, oldest first.
    history: Mutex<Vec<VersionMeta>>,
}

/// A named collection of versioned models the server answers for.
#[derive(Debug)]
pub struct ModelRegistry {
    slots: Vec<ModelSlot>,
    /// Directory published versions persist into (`None` = memory-only).
    dir: Option<PathBuf>,
    /// How many superseded versions each chain keeps (`usize::MAX` =
    /// unlimited, the default — GC never runs).
    retention: AtomicUsize,
    /// Version-pin refcounts keyed by fingerprint: GC skips any version
    /// with a live [`VersionPin`] (diagnosis sessions hold one).
    pins: Arc<Mutex<HashMap<String, usize>>>,
    /// Files `open` moved into `quarantine/` instead of serving.
    quarantined: Vec<PathBuf>,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        ModelRegistry {
            slots: Vec::new(),
            dir: None,
            retention: AtomicUsize::new(usize::MAX),
            pins: Arc::default(),
            quarantined: Vec::new(),
        }
    }
}

/// A refcount keeping one version's files safe from retention GC for as
/// long as the pin is alive. Held by memoized diagnosis sessions, whose
/// footprints and repair plans are only meaningful against the exact
/// version they were computed from.
#[derive(Debug)]
pub struct VersionPin {
    pins: Arc<Mutex<HashMap<String, usize>>>,
    fingerprint: String,
}

impl VersionPin {
    /// Fingerprint of the pinned version.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }
}

impl Drop for VersionPin {
    fn drop(&mut self) {
        let mut pins = self.pins.lock_recover();
        if let Some(count) = pins.get_mut(&self.fingerprint) {
            *count -= 1;
            if *count == 0 {
                pins.remove(&self.fingerprint);
            }
        }
    }
}

/// Splits a file stem into `(base name, version)`: `"m@v3"` → `("m", 3)`,
/// `"m"` → `("m", 1)`. The `@vN` suffix (N ≥ 1) is *reserved* as the
/// version marker; any other stem — including ones that merely resemble
/// it, like `m@vnext` or `m@v0` — is a plain model name at version 1,
/// so no file is ever silently skipped.
fn parse_stem(stem: &str) -> (&str, u32) {
    if let Some((base, v)) = stem.rsplit_once("@v") {
        if !base.is_empty() {
            if let Some(v) = v.parse().ok().filter(|&v| v >= 1) {
                return (base, v);
            }
        }
    }
    (stem, 1)
}

impl ModelRegistry {
    /// An empty, memory-only registry.
    pub fn new() -> Self {
        ModelRegistry::default()
    }

    /// Loads every `*.dmmd` file in `dir`, grouping `<name>.dmmd`
    /// (version 1) and `<name>@vN.dmmd` files into version chains; each
    /// name serves its highest version. Sidecars are looked up per
    /// version (`<name>@vN.meta.json`), falling back to the base
    /// `<name>.meta.json`. Versions published later persist back into
    /// `dir`, so a restarted server resumes from the repaired chain.
    ///
    /// Only the version that will serve is decode-validated; superseded
    /// versions are read just far enough to fingerprint them for the
    /// history, so restart cost does not grow with every repair the chain
    /// has ever absorbed.
    ///
    /// Open is *crash-consistent*: debris a crashed or torn publish can
    /// leave behind is moved into a `quarantine/` subdirectory instead of
    /// failing startup. Stale `.tmp` files are swept; a truncated or
    /// corrupt serving container is quarantined and the chain falls back
    /// to its next-highest decodable version (a name whose every version
    /// is corrupt is skipped entirely); an unparseable sidecar is
    /// quarantined and the version serves without diagnosis provenance.
    /// [`ModelRegistry::quarantined`] reports what was moved.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] for filesystem failures (the directory
    /// or a superseded file being unreadable) and [`ServeError::Model`]
    /// for an *ambiguous* chain (two files claiming the same version) —
    /// that is an operator error, not crash debris.
    pub fn open(dir: impl AsRef<Path>) -> ServeResult<Self> {
        let dir = dir.as_ref();
        let mut registry = ModelRegistry {
            dir: Some(dir.to_path_buf()),
            ..ModelRegistry::new()
        };
        let mut paths = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|x| x == "tmp") {
                // A crash between write and rename leaves the temp file;
                // its rename never happened, so it was never committed.
                registry.quarantine(&path);
            } else if path.extension().is_some_and(|x| x == MODEL_EXT) && path.is_file() {
                paths.push(path);
            }
        }
        paths.sort();
        // (base, version, path), grouped by base in first-seen order.
        let mut chains: Vec<(String, Vec<(u32, PathBuf)>)> = Vec::new();
        for path in paths {
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            let (base, version) = parse_stem(stem);
            match chains.iter_mut().find(|(b, _)| b == base) {
                Some((_, versions)) => versions.push((version, path.clone())),
                None => chains.push((base.to_string(), vec![(version, path.clone())])),
            }
        }
        for (base, mut versions) in chains {
            versions.sort_by_key(|&(v, _)| v);
            if let Some(pair) = versions.windows(2).find(|w| w[0].0 == w[1].0) {
                // E.g. `m.dmmd` (implicit v1) next to an explicit
                // `m@v1.dmmd`: refusing beats serving an ambiguous chain
                // whose history would flag two fingerprints as active.
                return Err(ServeError::Model {
                    reason: format!(
                        "model `{base}` has two files claiming version {} ({} and {})",
                        pair[0].0,
                        pair[0].1.display(),
                        pair[1].1.display()
                    ),
                });
            }
            // Walk from the highest version down until one decodes; a
            // corrupt candidate (torn publish) is quarantined and the
            // previous version takes over — exactly what a rollback would
            // have produced.
            let mut serving: Option<ModelEntry> = None;
            while let Some((version, path)) = versions.pop() {
                let Ok(bytes) = std::fs::read(&path) else {
                    registry.quarantine(&path);
                    continue;
                };
                let stem = path
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .unwrap_or(&base)
                    .to_string();
                let diagnosis = registry.read_sidecar(dir, &stem, &base);
                match Self::validate_bytes(base.clone(), version, bytes, diagnosis) {
                    Ok(entry) => {
                        serving = Some(entry);
                        break;
                    }
                    Err(_) => registry.quarantine(&path),
                }
            }
            let Some(entry) = serving else {
                // Every version of this name was corrupt; the files are
                // quarantined and the name is absent, not fatal.
                continue;
            };
            // Whatever remains in `versions` is older than the serving
            // version: superseded, fingerprint only.
            let mut history = Vec::with_capacity(versions.len());
            for (version, path) in &versions {
                history.push(VersionMeta {
                    version: *version,
                    fingerprint: content_fingerprint(&std::fs::read(path)?),
                    retained: None,
                });
            }
            registry.push_slot_with_history(entry, history);
        }
        Ok(registry)
    }

    /// Reads and parses the sidecar for `stem` (falling back to the base
    /// name's sidecar). A present-but-unparseable sidecar is quarantined
    /// and the version serves without provenance.
    fn read_sidecar(&mut self, dir: &Path, stem: &str, base: &str) -> Option<DiagnosisContext> {
        let mut meta_path = dir.join(format!("{stem}{META_SUFFIX}"));
        if !meta_path.exists() {
            meta_path = dir.join(format!("{base}{META_SUFFIX}"));
        }
        let text = std::fs::read_to_string(&meta_path).ok()?;
        match DiagnosisContext::from_json(&text) {
            Ok(ctx) => Some(ctx),
            Err(_) => {
                self.quarantine(&meta_path);
                None
            }
        }
    }

    /// Best-effort move of `path` into the registry's `quarantine/`
    /// subdirectory (collision-proofed with a numeric suffix). Recorded in
    /// [`ModelRegistry::quarantined`] even if the move itself fails — the
    /// file is skipped either way.
    fn quarantine(&mut self, path: &Path) {
        if let Some(dir) = &self.dir {
            let qdir = dir.join("quarantine");
            let _ = std::fs::create_dir_all(&qdir);
            if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                let mut dest = qdir.join(name);
                let mut n = 0u32;
                while dest.exists() {
                    dest = qdir.join(format!("{name}.{n}"));
                    n += 1;
                }
                let _ = std::fs::rename(path, &dest);
            }
        }
        self.quarantined.push(path.to_path_buf());
    }

    /// Files the last [`ModelRegistry::open`] quarantined instead of
    /// serving (empty for in-process registries).
    pub fn quarantined(&self) -> &[PathBuf] {
        &self.quarantined
    }

    /// Registers a live model under `name` as version 1 (encodes it; takes
    /// `&mut` because walking the parameters does). Call before
    /// `Server::start`; later versions arrive via
    /// [`ModelRegistry::publish`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadInput`] for a duplicate name.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        model: &mut ModelHandle,
        diagnosis: Option<DiagnosisContext>,
    ) -> ServeResult<ModelId> {
        let name = name.into();
        if self.find(&name).is_some() {
            return Err(ServeError::BadInput {
                reason: format!("model `{name}` is already registered"),
            });
        }
        let entry = Self::validate_bytes(name, 1, encode_model(model), diagnosis)?;
        Ok(ModelId(self.push_slot(entry)))
    }

    /// Decode-validates a container and assembles the entry.
    fn validate_bytes(
        name: String,
        version: u32,
        bytes: Vec<u8>,
        diagnosis: Option<DiagnosisContext>,
    ) -> ServeResult<ModelEntry> {
        // Decode once up front: validates the container and yields the
        // spec + parameter count without keeping the live graph around.
        let mut probe = decode_model(&bytes)?;
        Ok(ModelEntry {
            name,
            version,
            fingerprint: content_fingerprint(&bytes),
            spec: probe.spec,
            param_count: probe.param_count(),
            diagnosis,
            precision: Precision::F32,
            backend: BackendKind::Scalar,
            bytes,
        })
    }

    fn push_slot(&mut self, entry: ModelEntry) -> usize {
        self.push_slot_with_history(entry, Vec::new())
    }

    /// Adds a slot serving `entry`, seeded with the (older) versions in
    /// `prior` — the chain a directory-backed registry resumes from.
    fn push_slot_with_history(&mut self, entry: ModelEntry, mut prior: Vec<VersionMeta>) -> usize {
        prior.push(VersionMeta {
            version: entry.version,
            fingerprint: entry.fingerprint.clone(),
            retained: None,
        });
        self.slots.push(ModelSlot {
            name: entry.name.clone(),
            current: RwLock::new((0, Arc::new(entry))),
            epoch_hint: AtomicU64::new(0),
            history: Mutex::new(prior),
        });
        self.slots.len() - 1
    }

    /// Handle of the model registered under `name`.
    pub fn find(&self, name: &str) -> Option<ModelId> {
        self.slots.iter().position(|s| s.name == name).map(ModelId)
    }

    /// The current version of the model at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this registry's
    /// [`ModelRegistry::find`]/[`ModelRegistry::register`].
    pub fn current(&self, id: ModelId) -> Arc<ModelEntry> {
        Arc::clone(&self.slots[id.0].current.read_recover().1)
    }

    /// The swap epoch of the slot at `id`: bumped once per published
    /// version. Workers compare it against the epoch their cached replica
    /// was built at; equality means the replica is current.
    pub fn epoch(&self, id: ModelId) -> u64 {
        self.slots[id.0].epoch_hint.load(Ordering::Acquire)
    }

    /// The current version together with the epoch it was installed at —
    /// read under one lock, so the pair is always consistent.
    pub fn current_with_epoch(&self, id: ModelId) -> (u64, Arc<ModelEntry>) {
        let guard = self.slots[id.0].current.read_recover();
        (guard.0, Arc::clone(&guard.1))
    }

    /// Atomically installs a new version of the model at `id`: validates
    /// the encoded model, requires its input shape and class count to
    /// match the serving version (predict traffic must stay valid across
    /// the swap), persists it as `<name>@vN.dmmd` (+ sidecar) when the
    /// registry is directory-backed, then swaps the current pointer and
    /// bumps the epoch. In-flight batches keep the old `Arc` alive and
    /// finish on it. Concurrent publishes of one model serialize (the
    /// slot's history lock doubles as the publish lock), so version
    /// numbers are unique and the on-disk chain is never clobbered.
    ///
    /// The published sidecar carries the provenance the caller supplies —
    /// for a repair, the *original* scenario. Diagnosing a repaired
    /// version therefore learns patterns from the pre-repair training
    /// distribution; recording the plan chain so vN regenerates its
    /// actual (repaired) training set is an open roadmap item.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Model`] for an undecodable model,
    /// [`ServeError::BadInput`] for a shape/class mismatch, and
    /// [`ServeError::Io`] when persistence fails (nothing is swapped).
    pub fn publish(
        &self,
        id: ModelId,
        model: &mut ModelHandle,
        diagnosis: Option<DiagnosisContext>,
    ) -> ServeResult<Arc<ModelEntry>> {
        let slot = &self.slots[id.0];
        // Serialize publishers for this slot: two concurrent publishes
        // must not both read the same old version, race the version
        // number, and overwrite each other's `@vN` file.
        let mut history = slot.history.lock_recover();
        let (old_version, old_spec, old_entry) = {
            let guard = slot.current.read_recover();
            (guard.1.version, guard.1.spec, Arc::clone(&guard.1))
        };
        let entry = Self::validate_bytes(
            slot.name.clone(),
            old_version + 1,
            encode_model(model),
            diagnosis,
        )?;
        if entry.spec.input_shape != old_spec.input_shape
            || entry.spec.num_classes != old_spec.num_classes
        {
            return Err(ServeError::BadInput {
                reason: format!(
                    "published model expects {:?} → {} classes; serving version expects {:?} → {}",
                    entry.spec.input_shape,
                    entry.spec.num_classes,
                    old_spec.input_shape,
                    old_spec.num_classes
                ),
            });
        }
        // Persist before swapping, sidecar first: the model file's rename
        // is the commit point (`open` keys chains off `*.dmmd` files; an
        // orphan sidecar is ignored), so a crash at any step leaves the
        // old version serving and either no trace or an inert sidecar —
        // never a half-published chain and never a version on disk whose
        // publish was reported failed. Both writes go through tmp+rename
        // so a restart can never see a truncated file.
        if let Some(dir) = &self.dir {
            let stem = format!("{}@v{}", slot.name, entry.version);
            if let Some(ctx) = &entry.diagnosis {
                let tmp = dir.join(format!(".{stem}.meta.tmp"));
                deepmorph_faults::write(&tmp, ctx.to_json().as_bytes())?;
                if let Err(e) =
                    deepmorph_faults::rename(&tmp, &dir.join(format!("{stem}{META_SUFFIX}")))
                {
                    let _ = std::fs::remove_file(&tmp);
                    return Err(e.into());
                }
            }
            let tmp = dir.join(format!(".{stem}.tmp"));
            deepmorph_faults::write(&tmp, &entry.bytes)?;
            if let Err(e) = deepmorph_faults::rename(&tmp, &dir.join(format!("{stem}.{MODEL_EXT}")))
            {
                let _ = std::fs::remove_file(&tmp);
                return Err(e.into());
            }
        }
        // The outgoing version is kept in memory on its history meta so an
        // ungated rollback can restore it bitwise without touching disk.
        if let Some(meta) = history.iter_mut().find(|m| m.version == old_version) {
            meta.retained = Some(old_entry);
        }
        let installed = slot.install_locked(entry, &mut history);
        self.gc_locked(slot, &mut history);
        Ok(installed)
    }

    /// Reverts the model at `id` to the previous version in its chain —
    /// the *ungated* escape hatch for a repair that passed the held-out
    /// gate but turned out bad in production. The previous version is
    /// restored bitwise (from the retained in-memory entry, or re-read and
    /// fingerprint-checked from its `@vN` file), keeping its original
    /// version number; the rolled-back version is removed from the history
    /// and its files are quarantined, so a restart — and the next publish,
    /// which reuses its number — agree with the in-memory state.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadInput`] when there is no previous version
    /// to roll back to (or it is no longer retained anywhere) and
    /// [`ServeError::Model`] when the on-disk previous version no longer
    /// matches its recorded fingerprint.
    pub fn rollback(&self, id: ModelId) -> ServeResult<Arc<ModelEntry>> {
        let slot = &self.slots[id.0];
        // The history lock doubles as the publish lock: rollbacks
        // serialize against publishes and mode swaps.
        let mut history = slot.history.lock_recover();
        let current_version = slot.current.read_recover().1.version;
        let Some(prev_idx) = history.iter().rposition(|m| m.version < current_version) else {
            return Err(ServeError::BadInput {
                reason: format!(
                    "model `{}` has no previous version to roll back to",
                    slot.name
                ),
            });
        };
        let target = history[prev_idx].clone();
        let entry = match target.retained {
            Some(entry) => entry,
            None => Arc::new(self.load_version(&slot.name, &target)?),
        };
        // Drop the rolled-back version: out of the history, files into
        // quarantine (not deleted — an operator may want the post-mortem).
        history.retain(|m| m.version != current_version);
        if let Some(dir) = &self.dir {
            let stem = format!("{}@v{}", slot.name, current_version);
            for name in [
                format!("{stem}.{MODEL_EXT}"),
                format!("{stem}{META_SUFFIX}"),
            ] {
                let path = dir.join(name);
                if path.exists() {
                    Self::quarantine_in(dir, &path);
                }
            }
        }
        // The target is active again; its retained copy is redundant.
        if let Some(meta) = history.iter_mut().find(|m| m.version == target.version) {
            meta.retained = None;
        }
        slot.install_current(Arc::clone(&entry));
        Ok(entry)
    }

    /// Re-reads a superseded version from disk for a rollback whose
    /// in-memory entry was not retained, verifying the bytes still match
    /// the fingerprint recorded when the version was live.
    fn load_version(&self, name: &str, meta: &VersionMeta) -> ServeResult<ModelEntry> {
        let Some(dir) = &self.dir else {
            return Err(ServeError::BadInput {
                reason: format!(
                    "version {} of `{name}` is no longer retained in memory \
                     and the registry has no backing directory",
                    meta.version
                ),
            });
        };
        let mut path = dir.join(format!("{name}@v{}.{MODEL_EXT}", meta.version));
        if !path.exists() && meta.version == 1 {
            path = dir.join(format!("{name}.{MODEL_EXT}"));
        }
        let bytes = std::fs::read(&path)?;
        if content_fingerprint(&bytes) != meta.fingerprint {
            return Err(ServeError::Model {
                reason: format!(
                    "{}: bytes no longer match the fingerprint recorded for version {}",
                    path.display(),
                    meta.version
                ),
            });
        }
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or(name)
            .to_string();
        let mut meta_path = dir.join(format!("{stem}{META_SUFFIX}"));
        if !meta_path.exists() {
            meta_path = dir.join(format!("{name}{META_SUFFIX}"));
        }
        let diagnosis = std::fs::read_to_string(&meta_path)
            .ok()
            .and_then(|text| DiagnosisContext::from_json(&text).ok());
        Self::validate_bytes(name.to_string(), meta.version, bytes, diagnosis)
    }

    /// Best-effort quarantine used outside `open` (rollback, GC paths)
    /// where `&mut self` is unavailable.
    fn quarantine_in(dir: &Path, path: &Path) {
        let qdir = dir.join("quarantine");
        let _ = std::fs::create_dir_all(&qdir);
        if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
            let mut dest = qdir.join(name);
            let mut n = 0u32;
            while dest.exists() {
                dest = qdir.join(format!("{name}.{n}"));
                n += 1;
            }
            let _ = std::fs::rename(path, &dest);
        }
    }

    /// Sets the retention policy: how many *superseded* versions each
    /// chain keeps (`None` = unlimited, the default). Applies to every
    /// slot; enforced by the GC pass that runs after each publish (and on
    /// demand via [`ModelRegistry::gc`]). Versions pinned by a live
    /// [`VersionPin`] are never collected, whatever the policy says.
    pub fn set_retention(&self, retain: Option<usize>) {
        self.retention
            .store(retain.unwrap_or(usize::MAX), Ordering::Relaxed);
    }

    /// The current retention policy (`None` = unlimited).
    pub fn retention(&self) -> Option<usize> {
        match self.retention.load(Ordering::Relaxed) {
            usize::MAX => None,
            n => Some(n),
        }
    }

    /// Pins the version with `fingerprint`: retention GC will not delete
    /// it while the returned guard is alive. Pins are refcounted, so
    /// overlapping holders compose.
    pub fn pin_version(&self, fingerprint: impl Into<String>) -> VersionPin {
        let fingerprint = fingerprint.into();
        *self
            .pins
            .lock_recover()
            .entry(fingerprint.clone())
            .or_insert(0) += 1;
        VersionPin {
            pins: Arc::clone(&self.pins),
            fingerprint,
        }
    }

    /// Runs one retention-GC pass over the model at `id`, returning the
    /// versions that were deleted. A no-op under the default unlimited
    /// policy. Publish runs this automatically; it is public so dropped
    /// pins can be collected without waiting for the next publish.
    pub fn gc(&self, id: ModelId) -> Vec<u32> {
        let slot = &self.slots[id.0];
        let mut history = slot.history.lock_recover();
        self.gc_locked(slot, &mut history)
    }

    /// GC body; the caller holds the history (publish) lock. Considers the
    /// superseded versions beyond the newest `retention`, oldest first,
    /// and deletes the unpinned ones — meta, retained entry, and on-disk
    /// files. Pinned versions simply survive until a later pass finds
    /// them unpinned.
    fn gc_locked(&self, slot: &ModelSlot, history: &mut Vec<VersionMeta>) -> Vec<u32> {
        let retain = self.retention.load(Ordering::Relaxed);
        if retain == usize::MAX {
            return Vec::new();
        }
        let active = slot.current.read_recover().1.version;
        let superseded: Vec<u32> = history
            .iter()
            .filter(|m| m.version != active)
            .map(|m| m.version)
            .collect();
        if superseded.len() <= retain {
            return Vec::new();
        }
        let excess = superseded.len() - retain;
        let pins = self.pins.lock_recover();
        let mut deleted = Vec::new();
        for &version in superseded.iter().take(excess) {
            let meta = history
                .iter()
                .find(|m| m.version == version)
                .expect("superseded version is in history");
            if pins.get(&meta.fingerprint).copied().unwrap_or(0) > 0 {
                continue;
            }
            if let Some(dir) = &self.dir {
                let stem = format!("{}@v{version}", slot.name);
                let mut files = vec![
                    format!("{stem}.{MODEL_EXT}"),
                    format!("{stem}{META_SUFFIX}"),
                ];
                if version == 1 {
                    // v1 may predate versioned publishing. Its base
                    // sidecar stays: later versions without their own
                    // sidecar fall back to it for provenance.
                    files.push(format!("{}.{MODEL_EXT}", slot.name));
                }
                for name in files {
                    let _ = std::fs::remove_file(dir.join(name));
                }
            }
            deleted.push(version);
        }
        history.retain(|m| !deleted.contains(&m.version));
        deleted
    }

    /// The version history of the model at `id`, oldest first, with the
    /// current version flagged active.
    pub fn versions(&self, id: ModelId) -> Vec<VersionInfo> {
        let slot = &self.slots[id.0];
        // History first, then current — the same order publish uses; a
        // publish cannot interleave between the two reads.
        let history = slot.history.lock_recover();
        let active = slot.current.read_recover().1.version;
        history
            .iter()
            .map(|m| VersionInfo {
                version: m.version,
                fingerprint: m.fingerprint.clone(),
                active: m.version == active,
            })
            .collect()
    }

    /// Number of registered model names.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Handles of every slot, in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ModelId> + '_ {
        (0..self.slots.len()).map(ModelId)
    }

    /// Wire metadata for every model's current version.
    pub fn infos(&self) -> Vec<ModelInfo> {
        self.ids().map(|id| self.current(id).info()).collect()
    }

    /// Builds an independent replica of the model at `id`'s *current*
    /// version (see [`ModelEntry::instantiate`]).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Model`] if the stored bytes no longer decode
    /// against the current architecture code.
    pub fn instantiate(&self, id: ModelId) -> ServeResult<ModelHandle> {
        self.current(id).instantiate()
    }

    /// Switches the serving mode of the model at `id`: the current
    /// version's bytes stay exactly as published, but workers rebuild
    /// their replicas (the epoch bumps) with the new precision and
    /// backend. No history entry is appended — the version and
    /// fingerprint are unchanged, so diagnosis sessions keyed by
    /// fingerprint stay valid and `versions()` keeps listing the same
    /// chain. The candidate replica is built once up front, so an
    /// un-instantiable mode is rejected before anything swaps.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Model`] when the mode cannot be applied to
    /// the current version.
    pub fn set_serving_mode(
        &self,
        id: ModelId,
        precision: Precision,
        backend: BackendKind,
    ) -> ServeResult<Arc<ModelEntry>> {
        let slot = &self.slots[id.0];
        // The history lock doubles as the publish lock: mode swaps
        // serialize against publishes, so the entry read here is the one
        // replaced below.
        let history = slot.history.lock_recover();
        let entry = {
            let guard = slot.current.read_recover();
            guard.1.with_serving_mode(precision, backend)
        };
        entry.instantiate_for_serving()?;
        let entry = Arc::new(entry);
        slot.install_current(Arc::clone(&entry));
        drop(history);
        Ok(entry)
    }
}

impl ModelSlot {
    /// Swaps `entry` in as the current version and bumps the epoch. The
    /// caller holds the history lock (which serializes publishers); the
    /// history entry is appended *before* the swap, so a concurrent
    /// `versions()` may list the incoming version as inactive for an
    /// instant but can never miss the active version.
    fn install_locked(&self, entry: ModelEntry, history: &mut Vec<VersionMeta>) -> Arc<ModelEntry> {
        history.push(VersionMeta {
            version: entry.version,
            fingerprint: entry.fingerprint.clone(),
            retained: None,
        });
        let entry = Arc::new(entry);
        self.install_current(Arc::clone(&entry));
        entry
    }

    /// Swaps `entry` in as the current version and bumps the epoch,
    /// without touching the history. The caller holds the history lock.
    fn install_current(&self, entry: Arc<ModelEntry>) {
        let mut guard = self.current.write_recover();
        guard.0 += 1;
        guard.1 = entry;
        let epoch = guard.0;
        // Publish the hint only after the pair is installed: a worker that
        // sees the new epoch is guaranteed to read the new entry.
        self.epoch_hint.store(epoch, Ordering::Release);
        drop(guard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmorph_models::{build_model, ModelFamily, ModelScale};
    use deepmorph_nn::layer::Mode;
    use deepmorph_tensor::init::stream_rng;
    use deepmorph_tensor::Tensor;

    fn tiny_model(seed: u64) -> ModelHandle {
        let spec = ModelSpec::new(ModelFamily::LeNet, ModelScale::Tiny, [1, 16, 16], 10);
        build_model(&spec, &mut stream_rng(seed, "registry-test")).unwrap()
    }

    #[test]
    fn register_find_instantiate() {
        let mut registry = ModelRegistry::new();
        let mut model = tiny_model(3);
        let id = registry.register("lenet", &mut model, None).unwrap();
        assert_eq!(registry.find("lenet"), Some(id));
        assert_eq!(registry.find("missing"), None);
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.current(id).fingerprint.len(), 32);
        assert_eq!(registry.current(id).version, 1);
        assert_eq!(registry.epoch(id), 0);

        let x = Tensor::from_vec(
            (0..256).map(|i| (i % 7) as f32 / 7.0).collect(),
            &[1, 1, 16, 16],
        )
        .unwrap();
        let expect = model.graph.forward(&x, Mode::Eval).unwrap();
        let mut replica = registry.instantiate(id).unwrap();
        let got = replica.graph.forward(&x, Mode::Eval).unwrap();
        for (a, b) in expect.data().iter().zip(got.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut registry = ModelRegistry::new();
        let mut model = tiny_model(4);
        registry.register("m", &mut model, None).unwrap();
        assert!(matches!(
            registry.register("m", &mut model, None),
            Err(ServeError::BadInput { .. })
        ));
    }

    #[test]
    fn publish_swaps_atomically_and_versions_track() {
        let mut registry = ModelRegistry::new();
        let id = registry.register("m", &mut tiny_model(5), None).unwrap();
        let v1 = registry.current(id);

        let published = registry.publish(id, &mut tiny_model(6), None).unwrap();
        assert_eq!(published.version, 2);
        assert_eq!(registry.epoch(id), 1);
        let current = registry.current(id);
        assert_eq!(current.version, 2);
        assert_ne!(current.fingerprint, v1.fingerprint);
        // The old Arc stays alive for in-flight batches.
        assert_eq!(v1.version, 1);

        let versions = registry.versions(id);
        assert_eq!(versions.len(), 2);
        assert!(!versions[0].active && versions[0].version == 1);
        assert!(versions[1].active && versions[1].version == 2);

        let (epoch, entry) = registry.current_with_epoch(id);
        assert_eq!((epoch, entry.version), (1, 2));
    }

    #[test]
    fn publish_rejects_incompatible_shapes() {
        let mut registry = ModelRegistry::new();
        let id = registry.register("m", &mut tiny_model(7), None).unwrap();
        let spec = ModelSpec::new(ModelFamily::LeNet, ModelScale::Tiny, [1, 16, 16], 7);
        let mut other = build_model(&spec, &mut stream_rng(1, "registry-test")).unwrap();
        assert!(matches!(
            registry.publish(id, &mut other, None),
            Err(ServeError::BadInput { .. })
        ));
        assert_eq!(
            registry.current(id).version,
            1,
            "failed publish must not swap"
        );
        assert_eq!(registry.epoch(id), 0);
    }

    #[test]
    fn stem_parsing() {
        assert_eq!(parse_stem("m"), ("m", 1));
        assert_eq!(parse_stem("m@v3"), ("m", 3));
        assert_eq!(parse_stem("a@b@v12"), ("a@b", 12));
        // Only a numeric `@vN` (N >= 1) is the reserved version suffix;
        // anything else is a plain name, never dropped.
        assert_eq!(parse_stem("m@vX"), ("m@vX", 1));
        assert_eq!(parse_stem("m@v0"), ("m@v0", 1));
        assert_eq!(parse_stem("@v2"), ("@v2", 1));
    }

    #[test]
    fn duplicate_versions_on_disk_are_rejected() {
        let dir =
            std::env::temp_dir().join(format!("deepmorph-registry-dup-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // `m.dmmd` is implicitly version 1; an explicit `m@v1.dmmd` next
        // to it makes the chain ambiguous and must refuse to load.
        deepmorph_models::save_model(dir.join("m.dmmd"), &mut tiny_model(10)).unwrap();
        deepmorph_models::save_model(dir.join("m@v1.dmmd"), &mut tiny_model(11)).unwrap();
        match ModelRegistry::open(&dir) {
            Err(ServeError::Model { reason }) => {
                assert!(reason.contains("version 1"), "reason: {reason}");
            }
            other => panic!("expected a duplicate-version error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn directory_chains_resume_highest_version() {
        let dir =
            std::env::temp_dir().join(format!("deepmorph-registry-chain-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let mut registry = ModelRegistry::new();
        let id = registry.register("m", &mut tiny_model(8), None).unwrap();
        // Persist v1 by hand the way an operator would deploy it.
        deepmorph_models::save_model(dir.join("m.dmmd"), &mut tiny_model(8)).unwrap();
        // Publish v2 through a directory-backed registry.
        let on_disk = ModelRegistry::open(&dir).unwrap();
        let disk_id = on_disk.find("m").unwrap();
        assert_eq!(on_disk.current(disk_id).version, 1);
        on_disk.publish(disk_id, &mut tiny_model(9), None).unwrap();
        drop(on_disk);
        drop(registry);
        let _ = id;

        // A fresh open resumes at v2 with the full history.
        let reopened = ModelRegistry::open(&dir).unwrap();
        let rid = reopened.find("m").unwrap();
        assert_eq!(reopened.current(rid).version, 2);
        let versions = reopened.versions(rid);
        assert_eq!(versions.len(), 2);
        assert!(versions[1].active);
        assert_eq!(
            versions[1].fingerprint,
            content_fingerprint(&std::fs::read(dir.join("m@v2.dmmd")).unwrap())
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn diagnosis_context_round_trips() {
        let ctx = DiagnosisContext::new(DatasetKind::Objects, 42, 100)
            .with_defect(DefectSpec::insufficient_training_data(vec![0, 3], 0.75))
            .with_test_per_class(25)
            .with_train_config(TrainConfig {
                epochs: 6,
                batch_size: 16,
                learning_rate: 0.1,
                lr_decay: 0.9,
                optimizer: OptimizerKind::Sgd {
                    momentum: 0.9,
                    weight_decay: 1e-4,
                },
                shuffle: false,
                clip_grad_norm: Some(5.0),
            });
        assert_eq!(DiagnosisContext::from_json(&ctx.to_json()).unwrap(), ctx);

        let utd = DiagnosisContext::new(DatasetKind::Digits, 7, 80)
            .with_defect(DefectSpec::unreliable_training_data(3, 5, 0.5))
            .with_train_config(TrainConfig {
                optimizer: OptimizerKind::Adam,
                ..TrainConfig::default()
            });
        assert_eq!(DiagnosisContext::from_json(&utd.to_json()).unwrap(), utd);
        let sd = DiagnosisContext::new(DatasetKind::Digits, 7, 80)
            .with_defect(DefectSpec::structure_defect(6));
        assert_eq!(DiagnosisContext::from_json(&sd.to_json()).unwrap(), sd);

        assert!(DiagnosisContext::from_json("{}").is_err());
        assert!(DiagnosisContext::from_json("not json").is_err());
        assert!(DiagnosisContext::from_json(
            "{\"dataset\": \"mars\", \"seed\": 1, \"train_per_class\": 5}"
        )
        .is_err());

        // A pre-versioning sidecar (no defect/test/train keys) parses with
        // the scenario defaults.
        let legacy = DiagnosisContext::from_json(
            "{\"dataset\": \"synth-digits\", \"seed\": 3, \"train_per_class\": 12}",
        )
        .unwrap();
        assert_eq!(legacy.defect, DefectSpec::Healthy);
        assert_eq!(legacy.test_per_class, 30);
        assert_eq!(legacy.train.epochs, 4);
    }

    #[test]
    fn fingerprints_track_content() {
        let a = content_fingerprint(b"abc");
        let b = content_fingerprint(b"abd");
        assert_ne!(a, b);
        assert_eq!(a, content_fingerprint(b"abc"));
        assert_eq!(a.len(), 32);
    }

    #[test]
    fn rollback_restores_previous_version_bitwise() {
        let mut registry = ModelRegistry::new();
        let id = registry.register("m", &mut tiny_model(20), None).unwrap();
        let v1 = registry.current(id);
        registry.publish(id, &mut tiny_model(21), None).unwrap();
        assert_eq!(registry.current(id).version, 2);
        let epoch_before = registry.epoch(id);

        let restored = registry.rollback(id).unwrap();
        assert_eq!(restored.version, 1);
        assert_eq!(restored.fingerprint, v1.fingerprint);
        assert_eq!(restored.bytes, v1.bytes, "restored bitwise");
        assert_eq!(registry.current(id).version, 1);
        assert!(
            registry.epoch(id) > epoch_before,
            "rollback must move the epoch so replicas refresh"
        );

        // The rolled-back version is gone from the chain; the next
        // publish reuses its number without ambiguity.
        let versions = registry.versions(id);
        assert_eq!(versions.len(), 1);
        assert!(versions[0].active && versions[0].version == 1);
        let republished = registry.publish(id, &mut tiny_model(22), None).unwrap();
        assert_eq!(republished.version, 2);
    }

    #[test]
    fn rollback_without_previous_version_is_typed() {
        let mut registry = ModelRegistry::new();
        let id = registry.register("m", &mut tiny_model(23), None).unwrap();
        assert!(matches!(
            registry.rollback(id),
            Err(ServeError::BadInput { .. })
        ));
        assert_eq!(registry.current(id).version, 1, "nothing changed");
    }

    #[test]
    fn rollback_reloads_from_disk_and_quarantines_the_bad_version() {
        let dir = std::env::temp_dir().join(format!(
            "deepmorph-registry-rollback-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        deepmorph_models::save_model(dir.join("m.dmmd"), &mut tiny_model(24)).unwrap();
        let registry = ModelRegistry::open(&dir).unwrap();
        let id = registry.find("m").unwrap();
        registry.publish(id, &mut tiny_model(25), None).unwrap();
        drop(registry);

        // A *reopened* registry has no retained in-memory entries: the
        // rollback target must be re-read from disk and verified against
        // the fingerprint recorded when it was live.
        let reopened = ModelRegistry::open(&dir).unwrap();
        let id = reopened.find("m").unwrap();
        let v1_bytes = std::fs::read(dir.join("m.dmmd")).unwrap();
        assert_eq!(reopened.current(id).version, 2);
        let restored = reopened.rollback(id).unwrap();
        assert_eq!(restored.version, 1);
        assert_eq!(restored.fingerprint, content_fingerprint(&v1_bytes));
        assert_eq!(restored.bytes, v1_bytes, "restored bitwise from disk");

        // v2's file moved to quarantine, so a restart agrees with memory.
        assert!(!dir.join("m@v2.dmmd").exists());
        assert!(dir.join("quarantine").join("m@v2.dmmd").exists());
        let after_restart = ModelRegistry::open(&dir).unwrap();
        let rid = after_restart.find("m").unwrap();
        assert_eq!(after_restart.current(rid).version, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_gc_deletes_oldest_superseded_but_never_pinned() {
        let dir =
            std::env::temp_dir().join(format!("deepmorph-registry-gc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        deepmorph_models::save_model(dir.join("m.dmmd"), &mut tiny_model(30)).unwrap();
        let registry = ModelRegistry::open(&dir).unwrap();
        let id = registry.find("m").unwrap();
        registry.set_retention(Some(1));
        assert_eq!(registry.retention(), Some(1));

        let v2 = registry.publish(id, &mut tiny_model(31), None).unwrap();
        // superseded = {v1} <= retain 1: nothing collected yet.
        assert!(dir.join("m.dmmd").exists());

        // Pin v2 (as a live diagnosis session would), then supersede it
        // twice: GC wants to collect {v1, v2} but must skip the pin.
        let pin = registry.pin_version(&v2.fingerprint);
        registry.publish(id, &mut tiny_model(32), None).unwrap();
        registry.publish(id, &mut tiny_model(33), None).unwrap();

        assert!(!dir.join("m.dmmd").exists(), "v1 collected");
        assert!(dir.join("m@v2.dmmd").exists(), "pinned v2 survives GC");
        assert!(dir.join("m@v3.dmmd").exists(), "newest superseded kept");
        assert!(dir.join("m@v4.dmmd").exists(), "active version kept");
        let versions: Vec<u32> = registry.versions(id).iter().map(|v| v.version).collect();
        assert_eq!(versions, vec![2, 3, 4]);

        // Dropping the pin makes v2 collectable by the next pass.
        drop(pin);
        let deleted = registry.gc(id);
        assert_eq!(deleted, vec![2]);
        assert!(!dir.join("m@v2.dmmd").exists());
        let versions: Vec<u32> = registry.versions(id).iter().map(|v| v.version).collect();
        assert_eq!(versions, vec![3, 4]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn default_retention_keeps_every_version() {
        let mut registry = ModelRegistry::new();
        let id = registry.register("m", &mut tiny_model(40), None).unwrap();
        for seed in 41..45 {
            registry.publish(id, &mut tiny_model(seed), None).unwrap();
        }
        assert_eq!(registry.retention(), None);
        assert_eq!(registry.versions(id).len(), 5, "unlimited by default");
        assert!(registry.gc(id).is_empty());
    }

    #[test]
    fn overlapping_pins_are_refcounted() {
        let registry = ModelRegistry::new();
        let a = registry.pin_version("fp");
        let b = registry.pin_version("fp");
        drop(a);
        // One holder remains: still pinned.
        assert_eq!(registry.pins.lock_recover().get("fp"), Some(&1));
        drop(b);
        assert!(registry.pins.lock_recover().get("fp").is_none());
    }
}
