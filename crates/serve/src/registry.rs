//! The model registry: named, fingerprinted, instantiable models.
//!
//! A registry maps names to encoded model containers (the
//! `deepmorph-models` save format: spec + topology + state dict). Each
//! entry is decoded once at registration to validate it and extract its
//! spec, then kept as bytes; serving workers instantiate *replicas* on
//! demand — decoding rebuilds the architecture from the spec and imports
//! the exact state, so every replica predicts bitwise identically to the
//! model that was saved.
//!
//! Registries load from a directory of `<name>.dmmd` files
//! ([`ModelRegistry::open`]) or take live models in process
//! ([`ModelRegistry::register`]). Each entry is stamped with a 128-bit
//! content fingerprint of its container bytes (same FNV-1a construction
//! as the artifact store), reported to clients so they can pin the exact
//! model revision they are talking to.
//!
//! An optional sidecar `<name>.meta.json` supplies the
//! [`DiagnosisContext`] the live diagnosis endpoint needs — which
//! deterministic dataset (and seed) the model was trained on, so the
//! server can regenerate the training set without shipping it.

use std::path::Path;

use deepmorph_data::DatasetKind;
use deepmorph_json::Json;
use deepmorph_models::{decode_model, encode_model, ModelHandle, ModelSpec};
use deepmorph_tensor::io::{fnv64, fnv64_seeded};

use crate::error::{ServeError, ServeResult};
use crate::protocol::ModelInfo;

/// File extension of a registry model container.
pub const MODEL_EXT: &str = "dmmd";

/// File suffix of a registry diagnosis sidecar.
pub const META_SUFFIX: &str = ".meta.json";

/// Second FNV basis for the high fingerprint half (the artifact store's
/// construction: two independent 64-bit digests over the same bytes).
const FP_HI_BASIS: u64 = 0x6c62_272e_07bb_0142;

/// 128-bit content fingerprint of a model container, as 32 hex chars.
pub fn content_fingerprint(bytes: &[u8]) -> String {
    format!(
        "{:016x}{:016x}",
        fnv64_seeded(FP_HI_BASIS, bytes),
        fnv64(bytes)
    )
}

/// What the live-diagnosis endpoint needs to know about a model's
/// provenance: the deterministic training data it was fitted on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiagnosisContext {
    /// Synthetic dataset family the model was trained on.
    pub dataset: DatasetKind,
    /// Seed of the scenario data stream.
    pub seed: u64,
    /// Training samples generated per class.
    pub train_per_class: usize,
}

impl DiagnosisContext {
    /// Serializes the context as the sidecar JSON document.
    pub fn to_json(&self) -> String {
        Json::obj([
            ("dataset", Json::str(self.dataset.name())),
            ("seed", Json::num(self.seed as f64)),
            ("train_per_class", Json::usize(self.train_per_class)),
        ])
        .to_string_pretty()
    }

    /// Parses a sidecar JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadInput`] for unparseable JSON, missing
    /// keys, or an unknown dataset name.
    pub fn from_json(text: &str) -> ServeResult<Self> {
        let bad = |reason: String| ServeError::BadInput { reason };
        let doc = Json::parse(text).map_err(|e| bad(format!("diagnosis sidecar: {e}")))?;
        let dataset = match doc.get("dataset").and_then(Json::as_str) {
            Some("synth-digits") | Some("digits") => DatasetKind::Digits,
            Some("synth-objects") | Some("objects") => DatasetKind::Objects,
            Some(other) => return Err(bad(format!("unknown dataset `{other}`"))),
            None => return Err(bad("diagnosis sidecar lacks `dataset`".into())),
        };
        let seed = doc
            .get("seed")
            .and_then(Json::as_f64)
            .filter(|v| *v >= 0.0 && v.fract() == 0.0)
            .ok_or_else(|| bad("diagnosis sidecar lacks an integral `seed`".into()))?
            as u64;
        let train_per_class = doc
            .get("train_per_class")
            .and_then(Json::as_usize)
            .filter(|&n| n > 0)
            .ok_or_else(|| bad("diagnosis sidecar lacks a positive `train_per_class`".into()))?;
        Ok(DiagnosisContext {
            dataset,
            seed,
            train_per_class,
        })
    }
}

/// One registered model.
#[derive(Debug, Clone)]
pub struct ModelEntry {
    /// Registered name.
    pub name: String,
    /// Content fingerprint of the container bytes (32 hex chars).
    pub fingerprint: String,
    /// The spec the model was built from.
    pub spec: ModelSpec,
    /// Trainable parameter count.
    pub param_count: usize,
    /// Training-data provenance for live diagnosis, when known.
    pub diagnosis: Option<DiagnosisContext>,
    /// The encoded model container.
    bytes: Vec<u8>,
}

impl ModelEntry {
    /// The entry as wire metadata.
    pub fn info(&self) -> ModelInfo {
        ModelInfo {
            name: self.name.clone(),
            fingerprint: self.fingerprint.clone(),
            input_shape: self.spec.input_shape,
            num_classes: self.spec.num_classes,
            param_count: self.param_count as u64,
        }
    }
}

/// A named collection of models the server answers for.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    entries: Vec<ModelEntry>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ModelRegistry::default()
    }

    /// Loads every `*.dmmd` file in `dir` (sorted by name; the file stem
    /// becomes the model name), picking up `<stem>.meta.json` sidecars.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] for filesystem failures and
    /// [`ServeError::Model`] for a container that fails to decode —
    /// a corrupt model is rejected at startup, not at first request.
    pub fn open(dir: impl AsRef<Path>) -> ServeResult<Self> {
        let dir = dir.as_ref();
        let mut paths: Vec<_> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == MODEL_EXT))
            .collect();
        paths.sort();
        let mut registry = ModelRegistry::new();
        for path in paths {
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            let bytes = std::fs::read(&path)?;
            let meta_path = dir.join(format!("{stem}{META_SUFFIX}"));
            let diagnosis = if meta_path.exists() {
                Some(DiagnosisContext::from_json(&std::fs::read_to_string(
                    meta_path,
                )?)?)
            } else {
                None
            };
            registry
                .add_bytes(stem.to_string(), bytes, diagnosis)
                .map_err(|e| ServeError::Model {
                    reason: format!("{}: {e}", path.display()),
                })?;
        }
        Ok(registry)
    }

    /// Registers a live model under `name` (encodes it; takes `&mut`
    /// because walking the parameters does). Returns the entry index.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadInput`] for a duplicate name.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        model: &mut ModelHandle,
        diagnosis: Option<DiagnosisContext>,
    ) -> ServeResult<usize> {
        self.add_bytes(name.into(), encode_model(model), diagnosis)
    }

    fn add_bytes(
        &mut self,
        name: String,
        bytes: Vec<u8>,
        diagnosis: Option<DiagnosisContext>,
    ) -> ServeResult<usize> {
        if self.find(&name).is_some() {
            return Err(ServeError::BadInput {
                reason: format!("model `{name}` is already registered"),
            });
        }
        // Decode once up front: validates the container and yields the
        // spec + parameter count without keeping the live graph around.
        let mut probe = decode_model(&bytes)?;
        let entry = ModelEntry {
            name,
            fingerprint: content_fingerprint(&bytes),
            spec: probe.spec,
            param_count: probe.param_count(),
            diagnosis,
            bytes,
        };
        self.entries.push(entry);
        Ok(self.entries.len() - 1)
    }

    /// Index of the entry registered under `name`.
    pub fn find(&self, name: &str) -> Option<usize> {
        self.entries.iter().position(|e| e.name == name)
    }

    /// All entries, in registration order.
    pub fn entries(&self) -> &[ModelEntry] {
        &self.entries
    }

    /// The entry at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range (indices come from
    /// [`ModelRegistry::find`]).
    pub fn entry(&self, index: usize) -> &ModelEntry {
        &self.entries[index]
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Wire metadata for every entry.
    pub fn infos(&self) -> Vec<ModelInfo> {
        self.entries.iter().map(ModelEntry::info).collect()
    }

    /// Builds an independent replica of the entry at `index`: the spec
    /// rebuilds the architecture, the stored state dict restores the
    /// exact parameters. Replicas share no storage, so each serving
    /// worker owns its own and forwards concurrently.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Model`] if the stored bytes no longer decode
    /// against the current architecture code.
    pub fn instantiate(&self, index: usize) -> ServeResult<ModelHandle> {
        Ok(decode_model(&self.entries[index].bytes)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmorph_models::{build_model, ModelFamily, ModelScale};
    use deepmorph_nn::layer::Mode;
    use deepmorph_tensor::init::stream_rng;
    use deepmorph_tensor::Tensor;

    fn tiny_model() -> ModelHandle {
        let spec = ModelSpec::new(ModelFamily::LeNet, ModelScale::Tiny, [1, 16, 16], 10);
        build_model(&spec, &mut stream_rng(3, "registry-test")).unwrap()
    }

    #[test]
    fn register_find_instantiate() {
        let mut registry = ModelRegistry::new();
        let mut model = tiny_model();
        let idx = registry.register("lenet", &mut model, None).unwrap();
        assert_eq!(registry.find("lenet"), Some(idx));
        assert_eq!(registry.find("missing"), None);
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.entry(idx).fingerprint.len(), 32);

        let x = Tensor::from_vec(
            (0..256).map(|i| (i % 7) as f32 / 7.0).collect(),
            &[1, 1, 16, 16],
        )
        .unwrap();
        let expect = model.graph.forward(&x, Mode::Eval).unwrap();
        let mut replica = registry.instantiate(idx).unwrap();
        let got = replica.graph.forward(&x, Mode::Eval).unwrap();
        for (a, b) in expect.data().iter().zip(got.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut registry = ModelRegistry::new();
        let mut model = tiny_model();
        registry.register("m", &mut model, None).unwrap();
        assert!(matches!(
            registry.register("m", &mut model, None),
            Err(ServeError::BadInput { .. })
        ));
    }

    #[test]
    fn diagnosis_context_round_trips() {
        let ctx = DiagnosisContext {
            dataset: DatasetKind::Objects,
            seed: 42,
            train_per_class: 100,
        };
        assert_eq!(DiagnosisContext::from_json(&ctx.to_json()).unwrap(), ctx);
        assert!(DiagnosisContext::from_json("{}").is_err());
        assert!(DiagnosisContext::from_json("not json").is_err());
        assert!(DiagnosisContext::from_json(
            "{\"dataset\": \"mars\", \"seed\": 1, \"train_per_class\": 5}"
        )
        .is_err());
    }

    #[test]
    fn fingerprints_track_content() {
        let a = content_fingerprint(b"abc");
        let b = content_fingerprint(b"abd");
        assert_ne!(a, b);
        assert_eq!(a, content_fingerprint(b"abc"));
        assert_eq!(a.len(), 32);
    }
}
