//! **deepmorph-serve** — online inference and live defect diagnosis.
//!
//! After three PRs of offline machinery, this crate turns the DeepMorph
//! reproduction into a *service*: a threaded TCP server that loads
//! trained models from the `deepmorph-models` save format, answers
//! inference requests over a length-prefixed binary protocol, coalesces
//! concurrent requests into micro-batches, and — true to the paper's
//! framing of defect diagnosis as something operators run against
//! *deployed* models — diagnoses a model's live misclassified traffic
//! with the full DeepMorph pipeline on demand.
//!
//! The pieces:
//!
//! * [`protocol`] — the wire format: `u32` length prefix + a checksummed
//!   `deepmorph_tensor::io` container per frame. Malformed input becomes
//!   a typed error frame; the server never dies on client bytes.
//! * [`registry`] — named, *versioned* models, loaded from `*.dmmd` /
//!   `*@vN.dmmd` files or registered in process, each version stamped
//!   with a 128-bit content fingerprint. Every name is a hot-swappable
//!   version chain: publishing a repaired model atomically replaces the
//!   serving version without dropping or perturbing a single predict
//!   request. Serving workers instantiate independent *replicas*
//!   (rebuild from spec + exact state import), which predict bitwise
//!   identically to the saved model, and refresh them at batch
//!   boundaries when the version epoch moves.
//! * [`batch`] — the dynamic micro-batching scheduler: a bounded queue,
//!   worker-owned replicas, coalescing up to `max_batch` rows or
//!   `max_wait`, one `Graph::forward_inference` per batch, per-row
//!   scatter. Batched responses are **bitwise identical** to solo
//!   responses (eval-mode rows are computed independently — pinned by
//!   tests at the GEMM, graph, scheduler, and protocol levels).
//! * [`server`] / [`client`] — the TCP endpoints. The server is
//!   readiness-driven: a fixed pool of epoll event-loop threads
//!   (`deepmorph-net`, raw syscall bindings — no async runtime) holds
//!   every connection, assembles frames incrementally ([`conn`]), and
//!   flushes worker-enqueued responses from bounded per-connection
//!   outbound buffers, so one process carries tens of thousands of
//!   mostly idle sockets on a constant thread count.
//! * [`cases`] — per-model accumulation of labeled misclassified
//!   traffic, the input to the diagnose endpoint; version-scoped, so a
//!   hot-swap can never leak pre-repair mistakes into the next
//!   diagnosis.
//! * [`repair`] — the online diagnose → repair → hot-swap loop: a
//!   memoized per-version diagnosis session, plan execution through the
//!   staged engine (cached in an artifact store), a held-out accuracy
//!   gate, and the atomic version swap.
//!
//! # Example (in-process round trip)
//!
//! ```no_run
//! use deepmorph_serve::prelude::*;
//! use deepmorph_models::{build_model, ModelFamily, ModelScale, ModelSpec};
//! use deepmorph_tensor::{init::stream_rng, Tensor};
//!
//! # fn main() -> Result<(), ServeError> {
//! let spec = ModelSpec::new(ModelFamily::LeNet, ModelScale::Tiny, [1, 16, 16], 10);
//! let mut model = build_model(&spec, &mut stream_rng(0, "doc"))?;
//! let mut registry = ModelRegistry::new();
//! registry.register("lenet", &mut model, None)?;
//!
//! let server = Server::start(registry, ServerConfig::default())?;
//! let mut client = Client::connect(server.local_addr())?;
//! let rows = Tensor::zeros(&[1, 1, 16, 16]);
//! let response = client.predict("lenet", &rows)?;
//! assert_eq!(response.predictions.len(), 1);
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

pub mod batch;
pub mod cases;
pub mod conn;
mod error;
mod event_loop;
pub mod protocol;
pub mod registry;
pub mod repair;
pub mod server;
mod sync;

pub mod client;

pub use batch::{BatchConfig, JobOutput, Scheduler, ServeStats};
pub use client::{Client, ClientConfig, RetryPolicy};
pub use conn::{FrameAssembler, FramingError};
pub use error::{ErrorCode, ServeError, ServeResult};
pub use registry::{DiagnosisContext, ModelId, ModelRegistry, VersionPin};
pub use repair::{ArtifactBackend, PromoteResponse};
pub use server::{Server, ServerConfig};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::batch::{BatchConfig, JobOutput, Scheduler, ServeStats};
    pub use crate::cases::LiveCases;
    pub use crate::client::{Client, ClientConfig, RetryPolicy};
    pub use crate::error::{ErrorCode, ServeError, ServeResult};
    pub use crate::protocol::{
        DiagnoseResponse, ModelInfo, PredictResponse, RepairResponse, RollbackResponse,
        StatsSnapshot, TelemetryReport, VersionInfo,
    };
    pub use crate::registry::{DiagnosisContext, ModelId, ModelRegistry, VersionPin};
    pub use crate::repair::{ArtifactBackend, PromoteResponse};
    pub use crate::server::{Server, ServerConfig};
    pub use deepmorph_nn::prelude::{BackendKind, ComputeCtx, Precision};
    pub use deepmorph_telemetry::{
        HistogramSnapshot, Stage, Telemetry, TelemetryConfig, TelemetrySnapshot, Trace,
        VersionTraffic,
    };
}
