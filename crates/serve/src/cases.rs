//! Accumulation of misclassified live traffic for the diagnose endpoint.

use deepmorph::prelude::FaultyCases;
use deepmorph_tensor::Tensor;

use crate::error::{ServeError, ServeResult};

/// A capped, per-model buffer of misclassified requests.
///
/// Labeled predict requests whose prediction disagrees with the supplied
/// ground truth are recorded here (first `cap` cases kept, later ones
/// counted); a diagnose request turns the buffer into the
/// [`FaultyCases`] the DeepMorph pipeline analyzes — the serving
/// equivalent of the offline protocol's "collect the faulty cases from
/// the test set" step.
#[derive(Debug)]
pub struct LiveCases {
    shape: [usize; 3],
    cap: usize,
    rows: Vec<f32>,
    true_labels: Vec<usize>,
    predicted: Vec<usize>,
    /// Total misclassifications observed, including those beyond the cap.
    pub seen: u64,
}

impl LiveCases {
    /// An empty buffer for inputs of shape `[c, h, w]`, keeping at most
    /// `cap` cases (`cap` is clamped to at least 1).
    pub fn new(shape: [usize; 3], cap: usize) -> Self {
        LiveCases {
            shape,
            cap: cap.max(1),
            rows: Vec::new(),
            true_labels: Vec::new(),
            predicted: Vec::new(),
            seen: 0,
        }
    }

    /// Records one misclassified row (`row` is the flattened `c*h*w`
    /// image). Rows beyond the cap only bump [`LiveCases::seen`].
    pub fn record(&mut self, row: &[f32], true_label: usize, predicted: usize) {
        debug_assert_eq!(row.len(), self.shape.iter().product::<usize>());
        self.seen += 1;
        if self.len() >= self.cap {
            return;
        }
        self.rows.extend_from_slice(row);
        self.true_labels.push(true_label);
        self.predicted.push(predicted);
    }

    /// Number of retained cases.
    pub fn len(&self) -> usize {
        self.true_labels.len()
    }

    /// `true` when no case has been retained.
    pub fn is_empty(&self) -> bool {
        self.true_labels.is_empty()
    }

    /// Drops every retained case and resets the counter.
    pub fn clear(&mut self) {
        self.rows.clear();
        self.true_labels.clear();
        self.predicted.clear();
        self.seen = 0;
    }

    /// Materializes the buffer as [`FaultyCases`] for diagnosis.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Diagnosis`] when the buffer is empty.
    pub fn to_faulty_cases(&self) -> ServeResult<FaultyCases> {
        if self.is_empty() {
            return Err(ServeError::Diagnosis {
                reason: "no misclassified labeled traffic accumulated yet".into(),
            });
        }
        let [c, h, w] = self.shape;
        let images = Tensor::from_vec(self.rows.clone(), &[self.len(), c, h, w])?;
        Ok(FaultyCases {
            images,
            true_labels: self.true_labels.clone(),
            predicted: self.predicted.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caps_but_keeps_counting() {
        let mut cases = LiveCases::new([1, 2, 2], 2);
        for i in 0..5 {
            cases.record(&[i as f32; 4], i, (i + 1) % 3);
        }
        assert_eq!(cases.len(), 2);
        assert_eq!(cases.seen, 5);
        let faulty = cases.to_faulty_cases().unwrap();
        assert_eq!(faulty.images.shape(), &[2, 1, 2, 2]);
        assert_eq!(faulty.true_labels, vec![0, 1]);
        cases.clear();
        assert!(cases.to_faulty_cases().is_err());
        assert_eq!(cases.seen, 0);
    }
}
