//! Accumulation of misclassified live traffic for the diagnose endpoint.

use deepmorph::prelude::FaultyCases;
use deepmorph_tensor::Tensor;

use crate::error::{ServeError, ServeResult};

/// A capped, per-model buffer of misclassified requests.
///
/// Labeled predict requests whose prediction disagrees with the supplied
/// ground truth are recorded here (first `cap` cases kept, later ones
/// counted); a diagnose request turns the buffer into the
/// [`FaultyCases`] the DeepMorph pipeline analyzes — the serving
/// equivalent of the offline protocol's "collect the faulty cases from
/// the test set" step.
///
/// The buffer is *version-scoped*: every record carries the registry
/// epoch of the replica that produced the misclassification, and records
/// from any other epoch than the buffer's own are dropped (counted in
/// [`LiveCases::stale`]). When a repair hot-swaps a new model version in,
/// the swap advances the buffer's epoch and clears it, so a worker still
/// finishing an in-flight batch on the old version can never seed the new
/// version's diagnosis with pre-repair mistakes.
#[derive(Debug)]
pub struct LiveCases {
    shape: [usize; 3],
    cap: usize,
    epoch: u64,
    rows: Vec<f32>,
    true_labels: Vec<usize>,
    predicted: Vec<usize>,
    /// Total misclassifications observed at the current epoch, including
    /// those beyond the cap.
    pub seen: u64,
    /// Records dropped because they were produced by a superseded model
    /// version (their epoch predates the buffer's).
    pub stale: u64,
}

impl LiveCases {
    /// An empty buffer for inputs of shape `[c, h, w]`, keeping at most
    /// `cap` cases (`cap` is clamped to at least 1). Starts at epoch 0 —
    /// the registry epoch of a never-swapped model.
    pub fn new(shape: [usize; 3], cap: usize) -> Self {
        LiveCases {
            shape,
            cap: cap.max(1),
            epoch: 0,
            rows: Vec::new(),
            true_labels: Vec::new(),
            predicted: Vec::new(),
            seen: 0,
            stale: 0,
        }
    }

    /// Records one misclassified row (`row` is the flattened `c*h*w`
    /// image) observed on the model version installed at registry epoch
    /// `epoch`. Rows beyond the cap only bump [`LiveCases::seen`]; rows
    /// from a superseded epoch only bump [`LiveCases::stale`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadInput`] when `row` does not hold exactly
    /// `c*h*w` values — a wrong-length row is rejected before it can
    /// corrupt the flat buffer (and with it every later
    /// [`LiveCases::to_faulty_cases`]).
    pub fn record(
        &mut self,
        epoch: u64,
        row: &[f32],
        true_label: usize,
        predicted: usize,
    ) -> ServeResult<()> {
        let expect: usize = self.shape.iter().product();
        if row.len() != expect {
            return Err(ServeError::BadInput {
                reason: format!(
                    "live case row has {} values; inputs of shape {:?} need {expect}",
                    row.len(),
                    self.shape
                ),
            });
        }
        if epoch != self.epoch {
            self.stale += 1;
            return Ok(());
        }
        self.seen += 1;
        if self.len() >= self.cap {
            return Ok(());
        }
        self.rows.extend_from_slice(row);
        self.true_labels.push(true_label);
        self.predicted.push(predicted);
        Ok(())
    }

    /// Number of retained cases.
    pub fn len(&self) -> usize {
        self.true_labels.len()
    }

    /// `true` when no case has been retained.
    pub fn is_empty(&self) -> bool {
        self.true_labels.is_empty()
    }

    /// The epoch this buffer currently accumulates for.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Drops every retained case and resets the counters (same epoch).
    pub fn clear(&mut self) {
        self.rows.clear();
        self.true_labels.clear();
        self.predicted.clear();
        self.seen = 0;
        self.stale = 0;
    }

    /// Starts accumulating for a newly swapped-in model version: clears
    /// the buffer and moves its epoch forward, so records still arriving
    /// from the superseded version are dropped as stale.
    pub fn advance_epoch(&mut self, epoch: u64) {
        self.clear();
        self.epoch = epoch;
    }

    /// Materializes the buffer as [`FaultyCases`] for diagnosis.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Diagnosis`] when the buffer is empty.
    pub fn to_faulty_cases(&self) -> ServeResult<FaultyCases> {
        if self.is_empty() {
            return Err(ServeError::Diagnosis {
                reason: "no misclassified labeled traffic accumulated yet".into(),
            });
        }
        let [c, h, w] = self.shape;
        let images = Tensor::from_vec(self.rows.clone(), &[self.len(), c, h, w])?;
        Ok(FaultyCases {
            images,
            true_labels: self.true_labels.clone(),
            predicted: self.predicted.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caps_but_keeps_counting() {
        let mut cases = LiveCases::new([1, 2, 2], 2);
        for i in 0..5 {
            cases.record(0, &[i as f32; 4], i, (i + 1) % 3).unwrap();
        }
        assert_eq!(cases.len(), 2);
        assert_eq!(cases.seen, 5);
        let faulty = cases.to_faulty_cases().unwrap();
        assert_eq!(faulty.images.shape(), &[2, 1, 2, 2]);
        assert_eq!(faulty.true_labels, vec![0, 1]);
        cases.clear();
        assert!(cases.to_faulty_cases().is_err());
        assert_eq!(cases.seen, 0);
    }

    // Runs in release test builds too: the length check is a hard
    // validation, not a debug assertion — a wrong-length row must be a
    // typed error, never silent buffer corruption.
    #[test]
    fn wrong_length_rows_are_rejected_not_recorded() {
        let mut cases = LiveCases::new([1, 2, 2], 8);
        cases.record(0, &[0.5; 4], 0, 1).unwrap();

        for bad_len in [0usize, 3, 5, 16] {
            let row = vec![1.0; bad_len];
            match cases.record(0, &row, 1, 2) {
                Err(ServeError::BadInput { reason }) => {
                    assert!(reason.contains(&bad_len.to_string()), "reason: {reason}");
                    assert!(reason.contains('4'), "reason: {reason}");
                }
                other => panic!("len {bad_len}: expected BadInput, got {other:?}"),
            }
        }
        // The rejected rows corrupted nothing: the buffer still converts.
        assert_eq!(cases.len(), 1);
        assert_eq!(cases.seen, 1);
        let faulty = cases.to_faulty_cases().unwrap();
        assert_eq!(faulty.images.shape(), &[1, 1, 2, 2]);
    }

    #[test]
    fn epoch_advance_clears_and_rejects_stale() {
        let mut cases = LiveCases::new([1, 2, 2], 8);
        cases.record(0, &[0.1; 4], 0, 1).unwrap();
        assert_eq!(cases.len(), 1);

        cases.advance_epoch(1);
        assert!(cases.is_empty(), "swap must clear pre-repair cases");
        assert_eq!(cases.epoch(), 1);

        // A worker still on the old version records after the swap: the
        // stale case must not reach the next diagnosis.
        cases.record(0, &[0.2; 4], 1, 2).unwrap();
        assert!(cases.is_empty());
        assert_eq!(cases.stale, 1);

        // Traffic from the new version accumulates normally.
        cases.record(1, &[0.3; 4], 2, 3).unwrap();
        assert_eq!(cases.len(), 1);
        assert_eq!(cases.seen, 1);
    }
}
