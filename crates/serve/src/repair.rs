//! The online repair subsystem: diagnose → repair → hot-swap.
//!
//! The paper's evaluation closes the loop — "based on the defect reported
//! by DeepMorph, we modify the models accordingly and evaluate whether
//! DeepMorph is helpful to improving model performance" — and the offline
//! engine already automates that ([`StagedEngine::run_with_repair`]).
//! This module closes the loop *online*, against a running server:
//!
//! 1. **Diagnose** the accumulated misclassified traffic through a
//!    [`DiagnosisSession`] that is memoized per model content
//!    fingerprint — the expensive probe training runs once per served
//!    version, and every later diagnose (or repair) of the unchanged
//!    model reuses it.
//! 2. **Derive** the repair plan with `deepmorph::repair::recommend`
//!    (ITD → generate data for the starved classes, UTD → relabel the
//!    contaminated pair, SD → restore conv capacity).
//! 3. **Execute** the plan through the staged engine
//!    ([`StagedEngine::repaired`]): the scenario reconstructed from the
//!    model's sidecar regenerates its actual (defect-injected) training
//!    set, the plan is applied, and the model retrains — cached in the
//!    server's [`ArtifactStore`], so repeating an identical repair
//!    retrains nothing.
//! 4. **Gate** on the held-out set: the repaired model must be at least
//!    as accurate as the serving version, or nothing is swapped.
//! 5. **Hot-swap**: publish the repaired model as `<name>@vN` (persisted
//!    next to the originals for directory-backed registries, so restarts
//!    resume the repaired chain), advance the live-traffic buffer's epoch
//!    (stale pre-repair cases must not poison the next diagnosis), and
//!    drop the memoized session of the superseded version.
//!
//! Predict traffic never waits on any of this: workers pick up the new
//! version at their next batch boundary, and batches already running
//! finish on the old replica. Diagnoses of *other* models are also
//! unaffected; a diagnose of the model under repair may briefly rebuild
//! its own session (the repair borrows the memoized one for the
//! retrain) rather than block behind it.
//!
//! Known limitation (tracked in ROADMAP.md): a repaired version keeps
//! its ancestor's provenance sidecar, so diagnosing `v2` learns
//! patterns from the *original* (pre-repair) training distribution —
//! faithful for the generator-backed scenarios here, but recording the
//! plan chain so `vN` regenerates its actual repaired training set is
//! an open item.

use std::sync::Mutex;
use std::time::Instant;

use deepmorph::pipeline::{DeepMorph, DeepMorphConfig, DiagnosisSession};
use deepmorph::prelude::{recommend, ArtifactStore, Scenario, StagedEngine};
use deepmorph_nn::prelude::{BackendKind, Precision};
use deepmorph_nn::train::evaluate_accuracy;

use crate::error::{ServeError, ServeResult};
use crate::protocol::{DiagnoseResponse, RepairResponse, RollbackResponse};
use crate::registry::{DiagnosisContext, ModelEntry, ModelId, VersionPin};
use crate::server::ServerShared;
use crate::sync::LockRecover;

/// Where the server's staged engine keeps repair artifacts.
#[derive(Debug, Clone, Default)]
pub enum ArtifactBackend {
    /// No caching: every repair retrains.
    Disabled,
    /// Process-local cache (the default): identical repairs of the same
    /// model retrain once per server lifetime.
    #[default]
    Memory,
    /// On-disk cache rooted at the given directory: identical repairs
    /// retrain once across restarts.
    Disk(std::path::PathBuf),
}

impl ArtifactBackend {
    fn open(&self) -> ArtifactStore {
        match self {
            ArtifactBackend::Disabled => ArtifactStore::disabled(),
            ArtifactBackend::Memory => ArtifactStore::in_memory(),
            // Falling back to a disabled store only costs recomputation.
            ArtifactBackend::Disk(dir) => {
                ArtifactStore::open(dir).unwrap_or_else(|_| ArtifactStore::disabled())
            }
        }
    }
}

/// A memoized diagnosis session, valid for exactly one model version.
struct CachedSession {
    /// Content fingerprint of the model version the session instruments.
    fingerprint: String,
    session: DiagnosisSession,
    /// Retention pin: as long as this session lives (including while on
    /// loan to a repair), version GC must not delete the on-disk files of
    /// the version it instruments.
    _pin: VersionPin,
}

/// Per-slot repair machinery owned by the server.
pub(crate) struct RepairState {
    /// Memoized diagnosis sessions, parallel to the registry slots. The
    /// slot mutex also serializes diagnoses of one model (diagnoses of
    /// different models, and all predict traffic, proceed concurrently).
    sessions: Vec<Mutex<Option<CachedSession>>>,
    /// Serializes repairs of one model; a second concurrent repair gets a
    /// typed error instead of retraining the same thing twice.
    locks: Vec<Mutex<()>>,
    engine: StagedEngine,
}

impl RepairState {
    pub(crate) fn new(slots: usize, backend: &ArtifactBackend) -> Self {
        RepairState {
            sessions: (0..slots).map(|_| Mutex::new(None)).collect(),
            locks: (0..slots).map(|_| Mutex::new(())).collect(),
            engine: StagedEngine::new(backend.open()),
        }
    }
}

/// Reconstructs the scenario a model's sidecar describes: the same
/// deterministic data stream, defect injection, and training
/// configuration the model was produced under, paired with the server's
/// DeepMorph configuration.
fn scenario_for(
    entry: &ModelEntry,
    ctx: &DiagnosisContext,
    deepmorph: &DeepMorphConfig,
) -> ServeResult<Scenario> {
    Scenario::builder(entry.spec.family, ctx.dataset)
        .seed(ctx.seed)
        .scale(entry.spec.scale)
        .train_per_class(ctx.train_per_class)
        .test_per_class(ctx.test_per_class)
        .inject(ctx.defect.clone())
        .train_config(ctx.train.clone())
        .deepmorph_config(*deepmorph)
        .build()
        .map_err(|e| ServeError::Diagnosis {
            reason: format!("sidecar scenario: {e}"),
        })
}

fn context_of(entry: &ModelEntry) -> ServeResult<DiagnosisContext> {
    entry
        .diagnosis
        .clone()
        .ok_or_else(|| ServeError::Diagnosis {
            reason: format!(
                "model `{}` has no training-data context (sidecar missing)",
                entry.name
            ),
        })
}

/// Ensures `slot` holds a session for `entry`'s version, building one
/// (probe training — the expensive part) only when the fingerprint
/// changed since the last call. `scenario` must be the one
/// [`scenario_for`] derives from `entry`'s sidecar.
fn ensure_session<'a>(
    shared: &ServerShared,
    slot: &'a mut Option<CachedSession>,
    entry: &ModelEntry,
    scenario: &Scenario,
) -> ServeResult<&'a mut CachedSession> {
    let fresh = match slot {
        Some(cached) => cached.fingerprint != entry.fingerprint,
        None => true,
    };
    if fresh {
        let (train, _test) = scenario.injected_data()?;
        let replica = entry.instantiate()?;
        let session = DeepMorph::new(shared.deepmorph).prepare(replica, &train)?;
        shared
            .stats
            .probe_trainings
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        *slot = Some(CachedSession {
            fingerprint: entry.fingerprint.clone(),
            session,
            _pin: shared.registry.pin_version(&entry.fingerprint),
        });
    }
    Ok(slot.as_mut().expect("session just ensured"))
}

/// Returns a borrowed session to its slot unless a concurrent diagnose
/// already rebuilt one (both are deterministic products of the same
/// version, so either copy is equally valid).
fn restore_session(shared: &ServerShared, id: ModelId, session: CachedSession) {
    let mut slot = shared.repair.sessions[id.index()].lock_recover();
    if slot.is_none() {
        *slot = Some(session);
    }
}

fn subject_for(entry: &ModelEntry, cases: usize) -> String {
    format!(
        "{}@v{} {} live traffic ({} misclassified)",
        entry.name,
        entry.version,
        &entry.fingerprint[..8],
        cases
    )
}

/// The diagnose endpoint: feeds the accumulated misclassified traffic
/// through the DeepMorph pipeline against the memoized per-version
/// diagnosis session. Only the faulty-case footprints and the defect
/// classification run per call; probe training is paid once per version.
pub(crate) fn diagnose_live(shared: &ServerShared, id: ModelId) -> ServeResult<DiagnoseResponse> {
    // Snapshot the serving version and drain the buffer under the cases
    // lock — the same lock a hot-swap holds while it publishes and
    // resets the buffer — so the pair is always consistent: either the
    // old version with its traffic, or the new version with an empty
    // buffer (a typed refusal). Never one version's session fed the
    // other version's mistakes.
    let (entry, faulty) = {
        let cases = shared.cases[id.index()].lock_recover();
        let entry = shared.registry.current(id);
        let faulty = cases.to_faulty_cases()?;
        (entry, faulty)
    };
    let ctx = context_of(&entry)?;
    let scenario = scenario_for(&entry, &ctx, &shared.deepmorph)?;
    let mut slot = shared.repair.sessions[id.index()].lock_recover();
    let cached = ensure_session(shared, &mut slot, &entry, &scenario)?;
    shared
        .stats
        .diagnoses
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let report = cached
        .session
        .diagnose(&faulty, &subject_for(&entry, faulty.len()))?;
    Ok(DiagnoseResponse {
        cases: report.num_cases as u64,
        report_json: report.to_json(),
    })
}

/// The repair endpoint: the full diagnose → repair → gate → hot-swap
/// loop described in the module docs. Returns what happened either way;
/// `swapped == false` means the gate kept the serving version.
pub(crate) fn repair_live(shared: &ServerShared, id: ModelId) -> ServeResult<RepairResponse> {
    let state = &shared.repair;
    let Ok(_repairing) = state.locks[id.index()].try_lock() else {
        return Err(ServeError::Repair {
            reason: "a repair of this model is already running".into(),
        });
    };
    shared
        .stats
        .repairs
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);

    // Same consistent snapshot as diagnose_live (see there).
    let (entry, faulty) = {
        let cases = shared.cases[id.index()].lock_recover();
        let entry = shared.registry.current(id);
        let faulty = cases.to_faulty_cases()?;
        (entry, faulty)
    };
    let ctx = context_of(&entry)?;
    let scenario = scenario_for(&entry, &ctx, &shared.deepmorph)?;

    // Diagnose the live traffic (memoized session; counted like any other
    // diagnosis), derive the plan, and *take* the session for the retrain:
    // holding the slot lock across a from-scratch retrain would block
    // concurrent diagnoses of this model for its whole duration, long
    // enough to trip their clients' response timeout. A diagnose arriving
    // mid-repair instead rebuilds its own (identical, deterministic)
    // session.
    let (report, plan, mut session) = {
        let mut slot = shared.repair.sessions[id.index()].lock_recover();
        let cached = ensure_session(shared, &mut slot, &entry, &scenario)?;
        shared
            .stats
            .diagnoses
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let report = cached
            .session
            .diagnose(&faulty, &subject_for(&entry, faulty.len()))?;
        let plan = recommend(&report).ok_or_else(|| ServeError::Repair {
            reason: "the diagnosis yields no actionable repair plan".into(),
        })?;
        (report, plan, slot.take().expect("session just ensured"))
    };

    // The session is on loan from here to the swap decision: every early
    // return must hand it back, or the next diagnose of this (unchanged)
    // model would re-pay probe training.
    let attempt = (|| {
        // Held-out accuracy of the serving version: the gate's baseline.
        let (_train, test) = scenario.injected_data().map_err(|e| ServeError::Repair {
            reason: format!("held-out data: {e}"),
        })?;
        let mut serving = entry.instantiate()?;
        let accuracy_before =
            evaluate_accuracy(&mut serving.graph, test.images(), test.labels(), 64)?;

        // Execute the plan through the staged engine (cached by scenario ×
        // model fingerprint × plan — an identical repair retrains nothing).
        let repaired = state
            .engine
            .repaired(
                &scenario,
                &entry.fingerprint,
                &plan,
                session.session.instrumented_mut(),
            )
            .map_err(|e| ServeError::Repair {
                reason: format!("executing `{plan}`: {e}"),
            })?;
        Ok((accuracy_before, repaired))
    })();
    let (accuracy_before, repaired) = match attempt {
        Ok(outcome) => outcome,
        Err(e) => {
            restore_session(shared, id, session);
            return Err(e);
        }
    };

    // Gate: never swap in a model that lost held-out accuracy.
    if repaired.accuracy_after < accuracy_before {
        // The serving version stays; hand the borrowed session back for
        // the next diagnose.
        restore_session(shared, id, session);
        return Ok(RepairResponse {
            plan: plan.to_string(),
            cases: report.num_cases as u64,
            accuracy_before,
            accuracy_after: repaired.accuracy_after,
            swapped: false,
            version: entry.version,
            fingerprint: entry.fingerprint.clone(),
            swap_micros: 0,
        });
    }

    // Hot-swap: publish the new version, then move the traffic buffer to
    // the new epoch so in-flight batches on the old version cannot seed
    // the new version's diagnosis, and drop any memoized session of the
    // superseded version (ours, plus one a concurrent diagnose may have
    // rebuilt — stale sessions also self-invalidate by fingerprint, this
    // just frees them promptly).
    let mut new_model = match repaired.instantiate() {
        Ok(model) => model,
        Err(e) => {
            restore_session(shared, id, session);
            return Err(ServeError::Repair {
                reason: format!("repaired model: {e}"),
            });
        }
    };
    let swap_started = Instant::now();
    let published = {
        // Publish and buffer reset happen under the cases lock, so they
        // are atomic from every observer's view: a diagnose draining the
        // buffer (or a worker recording into it) sees either the old
        // version with the old traffic or the new version with an empty
        // buffer — never the new version paired with pre-repair mistakes.
        let mut cases = shared.cases[id.index()].lock_recover();
        shared
            .registry
            .publish(id, &mut new_model, Some(ctx))
            .inspect(|_| cases.advance_epoch(shared.registry.epoch(id)))
    };
    let new_entry = match published {
        Ok(entry) => entry,
        Err(e) => {
            // Nothing swapped (publish is all-or-nothing): the serving
            // version and its session remain valid.
            restore_session(shared, id, session);
            return Err(e);
        }
    };
    drop(session);
    {
        let mut slot = shared.repair.sessions[id.index()].lock_recover();
        if slot
            .as_ref()
            .is_some_and(|s| s.fingerprint != new_entry.fingerprint)
        {
            *slot = None;
        }
    }
    let swap_micros = swap_started.elapsed().as_micros() as u64;
    shared
        .stats
        .swaps
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);

    Ok(RepairResponse {
        plan: plan.to_string(),
        cases: report.num_cases as u64,
        accuracy_before,
        accuracy_after: repaired.accuracy_after,
        swapped: true,
        version: new_entry.version,
        fingerprint: new_entry.fingerprint.clone(),
        swap_micros,
    })
}

/// The rollback endpoint: reverts `model` to its previous published
/// version — **ungated**. Rollback is the operator's escape hatch when a
/// swapped-in version misbehaves in ways the held-out gate cannot see
/// (the gate measures accuracy, not latency, memory, or crashes), so it
/// must not depend on the machinery being rolled away from. The restored
/// version serves bitwise-identically to when it last served (pinned by
/// tests): it is reinstalled either from the retained in-memory entry or
/// from its fingerprint-verified on-disk file.
///
/// Like a repair swap, the install and the traffic-buffer epoch advance
/// happen under the cases lock, so no pre-rollback misclassification can
/// seed the restored version's diagnosis.
pub(crate) fn rollback_live(shared: &ServerShared, id: ModelId) -> ServeResult<RollbackResponse> {
    // A rollback racing the publish step of an in-flight repair would be
    // ambiguous (which version is "previous"?); take the same per-model
    // lock and refuse rather than guess.
    let Ok(_repairing) = shared.repair.locks[id.index()].try_lock() else {
        return Err(ServeError::Repair {
            reason: "cannot roll back while a repair of this model is running".into(),
        });
    };

    let swap_started = Instant::now();
    let restored = {
        let mut cases = shared.cases[id.index()].lock_recover();
        shared
            .registry
            .rollback(id)
            .inspect(|_| cases.advance_epoch(shared.registry.epoch(id)))
    }?;

    // Drop the memoized session of the rolled-back version (it will never
    // serve again under that fingerprint unless explicitly re-published).
    {
        let mut slot = shared.repair.sessions[id.index()].lock_recover();
        if slot
            .as_ref()
            .is_some_and(|s| s.fingerprint != restored.fingerprint)
        {
            *slot = None;
        }
    }
    let swap_micros = swap_started.elapsed().as_micros() as u64;
    shared
        .stats
        .rollbacks
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);

    Ok(RollbackResponse {
        version: restored.version,
        fingerprint: restored.fingerprint.clone(),
        swap_micros,
    })
}

/// Outcome of a [`Server::promote_quantized`](crate::Server::promote_quantized)
/// attempt: whether the requested serving precision cleared the held-out
/// gate and now serves.
#[derive(Debug, Clone, PartialEq)]
pub struct PromoteResponse {
    /// The serving precision that was requested.
    pub precision: Precision,
    /// Held-out accuracy of the f32 serving model (`0.0` for an ungated
    /// demotion back to f32 — nothing is evaluated).
    pub accuracy_f32: f32,
    /// Held-out accuracy of the quantized candidate replica (`0.0` for a
    /// demotion).
    pub accuracy_quantized: f32,
    /// `true` when the requested mode now serves.
    pub promoted: bool,
    /// Version of the (unchanged) model the mode applies to.
    pub version: u32,
    /// Content fingerprint of that version.
    pub fingerprint: String,
}

/// Switches a model's serving replicas to a quantized precision, gated on
/// the same held-out set as a repair hot-swap: the quantized replica must
/// not lose accuracy against the f32 serving model, or nothing changes.
/// Training, diagnosis, and repair always run on the f32 parameters —
/// only serving replicas (rebuilt by workers at their next batch
/// boundary) pick up the quantized mode. [`Precision::F32`] demotes back
/// to the bitwise-reference serving mode without a gate.
pub(crate) fn promote_quantized(
    shared: &ServerShared,
    id: ModelId,
    precision: Precision,
) -> ServeResult<PromoteResponse> {
    let entry = shared.registry.current(id);
    if precision == Precision::F32 {
        // Demotion restores the reference mode; it cannot lose accuracy
        // relative to itself, so it is never gated (and needs no sidecar).
        let restored = shared
            .registry
            .set_serving_mode(id, Precision::F32, BackendKind::Scalar)?;
        return Ok(PromoteResponse {
            precision,
            accuracy_f32: 0.0,
            accuracy_quantized: 0.0,
            promoted: true,
            version: restored.version,
            fingerprint: restored.fingerprint.clone(),
        });
    }

    // The same held-out set the repair gate evaluates on: regenerated
    // from the model's provenance sidecar, never seen by training.
    let ctx = context_of(&entry)?;
    let scenario = scenario_for(&entry, &ctx, &shared.deepmorph)?;
    let (_train, test) = scenario.injected_data().map_err(|e| ServeError::Model {
        reason: format!("held-out data: {e}"),
    })?;
    let mut serving = entry.instantiate()?;
    let accuracy_f32 = evaluate_accuracy(&mut serving.graph, test.images(), test.labels(), 64)?;

    let candidate = entry.with_serving_mode(precision, BackendKind::Auto);
    let mut replica = candidate.instantiate_for_serving()?;
    let accuracy_quantized =
        evaluate_accuracy(&mut replica.graph, test.images(), test.labels(), 64)?;

    if accuracy_quantized < accuracy_f32 {
        return Ok(PromoteResponse {
            precision,
            accuracy_f32,
            accuracy_quantized,
            promoted: false,
            version: entry.version,
            fingerprint: entry.fingerprint.clone(),
        });
    }
    let installed = shared
        .registry
        .set_serving_mode(id, precision, BackendKind::Auto)?;
    shared
        .stats
        .swaps
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    Ok(PromoteResponse {
        precision,
        accuracy_f32,
        accuracy_quantized,
        promoted: true,
        version: installed.version,
        fingerprint: installed.fingerprint.clone(),
    })
}
