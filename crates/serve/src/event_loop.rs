//! The readiness-driven I/O loops.
//!
//! A fixed pool of event-loop threads (one epoll instance each,
//! [`crate::server::ServerConfig::io_threads`]) replaces the old
//! thread-per-connection model, so the process holds tens of thousands
//! of connections on a constant number of OS threads. Loop 0 owns the
//! nonblocking listener and deals accepted connections round-robin to
//! every loop (including itself) through per-loop inboxes; each loop
//! owns its connections outright — their fds, their
//! [`FrameAssembler`]s, and the flush side of their [`Outbound`]
//! buffers.
//!
//! Division of labor:
//!
//! * **Loops never compute.** Cheap requests (ping, listings, stats)
//!   are answered inline; predicts are validated and enqueued with the
//!   scheduler; diagnose/repair/rollback — minutes-class retraining —
//!   run on short-lived admin threads tracked by the server.
//! * **Loops own all socket writes.** Producers (scheduler workers,
//!   admin threads, the loop itself) enqueue encoded frames on the
//!   connection's [`Outbound`] and wake the owning loop; the loop
//!   flushes when the socket is writable. Backpressure is two-stage: a
//!   connection whose outbound backlog passes [`READ_PAUSE_BYTES`]
//!   stops being *read* (no new requests admitted until the peer
//!   drains), and one that overflows the hard cap
//!   ([`crate::server::ServerConfig::max_outbound_bytes`]) is closed.
//! * **Accept errors never kill the server.** `EMFILE`/`ENFILE`
//!   disarms the listener for a backoff interval while existing
//!   connections keep being served; level-triggered epoll re-reports
//!   the pending accept queue when the listener is re-armed.
//!
//! Failure policy is inherited unchanged from the threaded server: a
//! frame that fails to decode is answered with a typed error frame on a
//! connection that keeps serving; a stream whose *framing* is lost
//! (oversized length claim, mid-frame disconnect) gets one best-effort
//! typed error frame and then — only — that connection is closed.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use deepmorph_net::{Event, Events, Interest, Poller};
use deepmorph_telemetry::Stage;

use crate::batch::{validate_job, Job, JobTelemetry, Responder, ServeStats};
use crate::conn::{ConnHandle, FlushState, FrameAssembler, LoopNotify, Outbound};
use crate::error::{ServeError, ServeResult};
use crate::protocol::{
    decode_request, encode_response, ErrorFrame, Request, Response, TelemetryReport,
};
use crate::repair;
use crate::server::ServerShared;
use crate::sync::LockRecover;

/// Reserved token for the loop's eventfd waker.
const WAKER_TOKEN: u64 = u64::MAX;
/// Reserved token for the listener (loop 0 only).
const LISTENER_TOKEN: u64 = u64::MAX - 1;

/// Outbound backlog at which a connection's *reads* are paused: the
/// peer stops being able to submit new requests until it drains what it
/// already owes us. Soft backpressure, well below the hard overflow cap.
const READ_PAUSE_BYTES: usize = 256 * 1024;

/// How long the listener stays disarmed after fd exhaustion.
const FD_EXHAUSTED_BACKOFF: Duration = Duration::from_millis(250);
/// Backoff for unexpected accept errors (old server slept 10ms too).
const ACCEPT_ERROR_BACKOFF: Duration = Duration::from_millis(10);

/// Read syscalls per readiness event before yielding to other
/// connections; level-triggered epoll re-reports whatever remains.
const MAX_READ_BURSTS: usize = 8;

/// The cross-thread face of one event loop: its waker + dirty set
/// ([`LoopNotify`]) and the inbox loop 0 hands accepted connections
/// through.
pub(crate) struct LoopState {
    /// Shared with every [`ConnHandle`] owned by this loop.
    pub(crate) notify: Arc<LoopNotify>,
    inbox: Mutex<Vec<TcpStream>>,
}

impl LoopState {
    pub(crate) fn new() -> std::io::Result<LoopState> {
        Ok(LoopState {
            notify: Arc::new(LoopNotify::new()?),
            inbox: Mutex::new(Vec::new()),
        })
    }

    fn hand_off(&self, stream: TcpStream) {
        self.inbox.lock_recover().push(stream);
        self.notify.waker.wake();
    }

    fn take_inbox(&self, into: &mut Vec<TcpStream>) {
        into.append(&mut self.inbox.lock_recover());
    }
}

/// Spawns event loop `index`; loop 0 receives the listener.
pub(crate) fn start_loop(
    shared: &Arc<ServerShared>,
    index: usize,
    listener: Option<TcpListener>,
) -> std::io::Result<std::thread::JoinHandle<()>> {
    let poller = Poller::new()?;
    let state = Arc::clone(&shared.loops[index]);
    poller.add(state.notify.waker.as_raw_fd(), WAKER_TOKEN, Interest::READ)?;
    if let Some(listener) = &listener {
        listener.set_nonblocking(true)?;
        poller.add(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)?;
    }
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("deepmorph-serve-io-{index}"))
        .spawn(move || {
            IoLoop {
                shared,
                index,
                state,
                poller,
                listener,
                listener_armed: true,
                accept_resume: None,
                conns: Vec::new(),
                free: Vec::new(),
                rr: index,
                scratch: vec![0u8; 64 * 1024],
            }
            .run();
        })
}

/// One registered connection, owned by exactly one loop.
struct Conn {
    stream: TcpStream,
    assembler: FrameAssembler,
    outbound: Arc<Outbound>,
    /// Interest currently registered with the poller (avoids redundant
    /// `epoll_ctl` churn).
    interest: Interest,
    /// Reads paused under outbound backpressure.
    paused: bool,
    /// When the frame currently being assembled saw its first bytes.
    /// Only stamped while telemetry is armed; feeds the `Assembly`
    /// stage span.
    frame_started: Option<Instant>,
}

struct IoLoop {
    shared: Arc<ServerShared>,
    index: usize,
    state: Arc<LoopState>,
    poller: Poller,
    listener: Option<TcpListener>,
    listener_armed: bool,
    /// When to re-arm a disarmed listener (accept backoff).
    accept_resume: Option<Instant>,
    /// Slab of connections; the vector index is the epoll token.
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// Round-robin cursor for dealing accepted connections to loops.
    rr: usize,
    scratch: Vec<u8>,
}

impl IoLoop {
    fn run(mut self) {
        let mut events = Events::with_capacity(1024);
        let mut dirty: Vec<u64> = Vec::new();
        let mut adopted: Vec<TcpStream> = Vec::new();
        loop {
            let timeout = self
                .accept_resume
                .map(|at| at.saturating_duration_since(Instant::now()));
            if self.poller.wait(&mut events, timeout).is_err() {
                // A failing epoll instance is unrecoverable for this
                // loop; treat it like shutdown rather than spinning.
                break;
            }
            self.shared
                .stats
                .loop_wakeups
                .fetch_add(1, Ordering::Relaxed);
            if self.shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            if let Some(at) = self.accept_resume {
                if Instant::now() >= at {
                    self.rearm_listener();
                }
            }
            for event in events.iter() {
                match event.token {
                    WAKER_TOKEN => self.state.notify.waker.drain(),
                    LISTENER_TOKEN => self.accept_ready(),
                    token => self.conn_event(token as usize, event),
                }
            }
            self.state.take_inbox(&mut adopted);
            for stream in adopted.drain(..) {
                self.register(stream);
            }
            self.state.notify.take_dirty(&mut dirty);
            for token in dirty.drain(..) {
                self.flush(token as usize);
            }
        }
        self.teardown();
    }

    // ----- accept path (loop 0) -------------------------------------

    fn accept_ready(&mut self) {
        let telemetry = deepmorph_telemetry::armed();
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            let accept_started = telemetry.as_ref().map(|_| Instant::now());
            match listener.accept() {
                Ok((stream, _)) => {
                    let stats = &self.shared.stats;
                    if stats.conns_active.load(Ordering::Relaxed)
                        >= self.shared.max_connections as u64
                    {
                        // Admission control: one typed frame (best
                        // effort — the peer may already be gone) so
                        // clients can tell rejection from network
                        // failure and treat it as retryable.
                        reject_overloaded(&self.shared, stream);
                        continue;
                    }
                    stats.conns_active.fetch_add(1, Ordering::Relaxed);
                    stats.conns_accepted.fetch_add(1, Ordering::Relaxed);
                    let target = self.rr % self.shared.loops.len();
                    self.rr = self.rr.wrapping_add(1);
                    if target == self.index {
                        self.register(stream);
                    } else {
                        self.shared.loops[target].hand_off(stream);
                    }
                    if let (Some(t), Some(at)) = (&telemetry, accept_started) {
                        t.record_stage(Stage::Accept, at.elapsed().as_micros() as u64);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) if is_fd_exhaustion(&e) => {
                    // Out of fds: keep serving what we have, stop
                    // accepting for a beat. Level-triggered epoll
                    // re-reports the queued accepts once re-armed.
                    self.shared
                        .stats
                        .accept_backoffs
                        .fetch_add(1, Ordering::Relaxed);
                    self.disarm_listener(FD_EXHAUSTED_BACKOFF);
                    return;
                }
                Err(_) => {
                    // Transient accept failures (ECONNABORTED and
                    // friends) tend to repeat immediately; same 10ms
                    // pause the threaded server took, without sleeping.
                    self.disarm_listener(ACCEPT_ERROR_BACKOFF);
                    return;
                }
            }
        }
    }

    fn disarm_listener(&mut self, backoff: Duration) {
        if let Some(listener) = &self.listener {
            if self.listener_armed {
                let _ = self.poller.delete(listener.as_raw_fd());
                self.listener_armed = false;
            }
            self.accept_resume = Some(Instant::now() + backoff);
        }
    }

    fn rearm_listener(&mut self) {
        self.accept_resume = None;
        if let Some(listener) = &self.listener {
            if !self.listener_armed
                && self
                    .poller
                    .add(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)
                    .is_ok()
            {
                self.listener_armed = true;
            } else if !self.listener_armed {
                // Could not re-register; try again after another beat.
                self.accept_resume = Some(Instant::now() + FD_EXHAUSTED_BACKOFF);
            }
        }
    }

    fn register(&mut self, stream: TcpStream) {
        // Nagle would add milliseconds to every small frame exchange.
        let _ = stream.set_nodelay(true);
        let prepared = stream.set_nonblocking(true).is_ok();
        let fd = stream.as_raw_fd();
        let token = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.conns.len() - 1
        });
        self.conns[token] = Some(Conn {
            stream,
            assembler: FrameAssembler::for_protocol(),
            outbound: Arc::new(Outbound::new(self.shared.max_outbound)),
            interest: Interest::READ,
            paused: false,
            frame_started: None,
        });
        if !prepared || self.poller.add(fd, token as u64, Interest::READ).is_err() {
            // Undo the admission accounting; the stream drops here.
            self.conns[token] = None;
            self.free.push(token);
            let stats = &self.shared.stats;
            stats.conns_closed.fetch_add(1, Ordering::Relaxed);
            stats.conns_active.fetch_sub(1, Ordering::Relaxed);
        }
    }

    // ----- per-connection events ------------------------------------

    fn conn_event(&mut self, token: usize, event: Event) {
        let Some(Some(conn)) = self.conns.get(token) else {
            return;
        };
        if event.error {
            self.close(token);
            return;
        }
        if event.hangup && conn.paused {
            // The peer is gone while its reads are paused for
            // backpressure; without this, level-triggered RDHUP would
            // re-report forever on a connection we never read again.
            self.close(token);
            return;
        }
        if event.writable {
            self.flush(token);
        }
        if event.readable || event.hangup {
            self.read_ready(token);
        }
    }

    fn read_ready(&mut self, token: usize) {
        enum After {
            Keep,
            CloseNow,
            /// Framing lost: typed error frame, then close-after-flush.
            Lost(String),
        }
        let mut complete: Vec<Vec<u8>> = Vec::new();
        let mut after = After::Keep;
        let telemetry = deepmorph_telemetry::armed();
        let mut assembly_us = 0u64;
        {
            let Some(Some(conn)) = self.conns.get_mut(token) else {
                return;
            };
            if conn.paused {
                return;
            }
            let mut bursts = 0;
            loop {
                if bursts >= MAX_READ_BURSTS {
                    break; // fairness: let other connections run
                }
                match conn.stream.read(&mut self.scratch) {
                    Ok(0) => {
                        after = if conn.assembler.mid_frame() {
                            After::Lost("peer closed mid-frame".into())
                        } else {
                            After::CloseNow
                        };
                        break;
                    }
                    Ok(n) => {
                        bursts += 1;
                        if telemetry.is_some() && conn.frame_started.is_none() {
                            conn.frame_started = Some(Instant::now());
                        }
                        if let Err(e) = conn.assembler.feed(&self.scratch[..n], &mut complete) {
                            after = After::Lost(e.reason);
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => {
                        after = After::Lost(format!("read error: {e}"));
                        break;
                    }
                }
            }
            // Assembly span: first byte of the oldest pending frame to
            // the end of the read pass that completed it. One value per
            // pass, shared by every frame the pass completed.
            if let Some(t) = &telemetry {
                if !complete.is_empty() {
                    if let Some(started) = conn.frame_started {
                        assembly_us = started.elapsed().as_micros() as u64;
                        for _ in &complete {
                            t.record_stage(Stage::Assembly, assembly_us);
                        }
                    }
                    // A partial next frame is already buffering; restart
                    // its clock at the pass boundary.
                    conn.frame_started = conn.assembler.mid_frame().then(Instant::now);
                }
            }
        }
        for frame in complete {
            if self.conns.get(token).is_none_or(Option::is_none) {
                return;
            }
            self.dispatch(token, frame, assembly_us);
        }
        match after {
            After::Keep => {}
            After::CloseNow => self.close(token),
            After::Lost(reason) => {
                // Answer once (the peer may still be reading) and drop
                // the connection — only the connection.
                let Some(handle) = self.handle_for(token) else {
                    return;
                };
                send_error(
                    &self.shared.stats,
                    &handle,
                    0,
                    &ServeError::Protocol { reason },
                );
                handle.outbound.mark_close_after_flush();
                // The send above marked the token dirty; the flush at
                // the end of this iteration delivers and closes.
            }
        }
    }

    fn dispatch(&mut self, token: usize, frame: Vec<u8>, assembly_us: u64) {
        let Some(handle) = self.handle_for(token) else {
            return;
        };
        match decode_request(&frame) {
            // The length prefix was honored, so the stream is still in
            // sync: report the bad frame and keep serving.
            Err(e) => send_error(&self.shared.stats, &handle, 0, &ServeError::Codec(e)),
            Ok((id, request)) => handle_request(&self.shared, &handle, id, request, assembly_us),
        }
    }

    fn handle_for(&self, token: usize) -> Option<ConnHandle> {
        self.conns.get(token)?.as_ref().map(|conn| ConnHandle {
            outbound: Arc::clone(&conn.outbound),
            notify: Arc::clone(&self.state.notify),
            token: token as u64,
        })
    }

    // ----- write path -----------------------------------------------

    fn flush(&mut self, token: usize) {
        let flush_started = deepmorph_telemetry::armed().map(|t| (t, Instant::now()));
        let outcome = {
            let Some(Some(conn)) = self.conns.get_mut(token) else {
                return;
            };
            conn.outbound.flush_into(&conn.stream)
        };
        if let Some((t, at)) = flush_started {
            t.record_stage(Stage::Flush, at.elapsed().as_micros() as u64);
        }
        match outcome {
            Ok(FlushState::Idle) => self.set_interest(token, Interest::READ),
            Ok(FlushState::Pending { buffered }) => {
                let want = if buffered > READ_PAUSE_BYTES {
                    Interest::WRITE
                } else {
                    Interest::READ_WRITE
                };
                self.set_interest(token, want);
            }
            Ok(FlushState::CloseNow | FlushState::Dead) | Err(_) => self.close(token),
        }
    }

    fn set_interest(&mut self, token: usize, want: Interest) {
        let ok = {
            let Some(Some(conn)) = self.conns.get_mut(token) else {
                return;
            };
            if conn.interest == want {
                return;
            }
            match self
                .poller
                .modify(conn.stream.as_raw_fd(), token as u64, want)
            {
                Ok(()) => {
                    conn.interest = want;
                    conn.paused = !want.readable;
                    true
                }
                Err(_) => false,
            }
        };
        if !ok {
            self.close(token);
        }
    }

    fn close(&mut self, token: usize) {
        let Some(conn) = self.conns.get_mut(token).and_then(Option::take) else {
            return;
        };
        let _ = self.poller.delete(conn.stream.as_raw_fd());
        conn.outbound.close();
        let _ = conn.stream.shutdown(Shutdown::Both);
        self.free.push(token);
        let stats = &self.shared.stats;
        stats.conns_closed.fetch_add(1, Ordering::Relaxed);
        stats.conns_active.fetch_sub(1, Ordering::Relaxed);
    }

    fn teardown(&mut self) {
        let stats = &self.shared.stats;
        for slot in &mut self.conns {
            if let Some(conn) = slot.take() {
                conn.outbound.close();
                stats.conns_closed.fetch_add(1, Ordering::Relaxed);
                stats.conns_active.fetch_sub(1, Ordering::Relaxed);
            }
        }
        // Connections handed off after this loop last drained its inbox
        // were already counted as admitted by loop 0.
        let mut leftovers = Vec::new();
        self.state.take_inbox(&mut leftovers);
        for stream in leftovers {
            stats.conns_closed.fetch_add(1, Ordering::Relaxed);
            stats.conns_active.fetch_sub(1, Ordering::Relaxed);
            drop(stream);
        }
    }
}

fn is_fd_exhaustion(e: &std::io::Error) -> bool {
    // EMFILE (24) = per-process fd limit, ENFILE (23) = system table.
    matches!(e.raw_os_error(), Some(23) | Some(24))
}

fn reject_overloaded(shared: &ServerShared, mut stream: TcpStream) {
    shared.stats.conn_rejections.fetch_add(1, Ordering::Relaxed);
    let error = ServeError::Overloaded {
        reason: format!("connection limit ({}) reached", shared.max_connections),
    };
    let wire = encode_response(
        0,
        &Response::Error(ErrorFrame {
            code: error.code(),
            message: error.to_string(),
        }),
    );
    // The stream is blocking (accept does not inherit the listener's
    // nonblocking flag) with an empty send buffer: one small write.
    let _ = stream.write_all(&wire);
    let _ = stream.flush();
}

fn send_error(stats: &ServeStats, handle: &ConnHandle, id: u64, error: &ServeError) {
    stats.errors.fetch_add(1, Ordering::Relaxed);
    let wire = encode_response(
        id,
        &Response::Error(ErrorFrame {
            code: error.code(),
            message: error.to_string(),
        }),
    );
    handle.send(stats, &wire);
}

/// Answers one decoded request. Cheap requests inline on the loop;
/// predicts go to the scheduler; slow administrative work (diagnose /
/// repair / rollback may retrain for minutes) runs on a tracked admin
/// thread so the loop keeps serving its other connections.
fn handle_request(
    shared: &Arc<ServerShared>,
    handle: &ConnHandle,
    id: u64,
    request: Request,
    assembly_us: u64,
) {
    let response = match request {
        Request::Ping => Response::Pong {
            models: shared.registry.len() as u64,
        },
        Request::ListModels => Response::Models(shared.registry.infos()),
        Request::Stats => Response::Stats(shared.stats.snapshot()),
        Request::Telemetry => {
            let (armed, snapshot) = match deepmorph_telemetry::armed() {
                Some(t) => (true, t.snapshot()),
                None => (false, Default::default()),
            };
            Response::Telemetry(TelemetryReport {
                stats: shared.stats.snapshot(),
                armed,
                snapshot,
            })
        }
        Request::ListVersions { model } => match shared.registry.find(&model) {
            Some(mid) => Response::Versions(shared.registry.versions(mid)),
            None => {
                return send_error(
                    &shared.stats,
                    handle,
                    id,
                    &ServeError::UnknownModel { name: model },
                )
            }
        },
        Request::Diagnose { model } => {
            return spawn_admin(shared, handle, id, move |shared| {
                shared
                    .registry
                    .find(&model)
                    .ok_or_else(|| ServeError::UnknownModel {
                        name: model.clone(),
                    })
                    .and_then(|mid| repair::diagnose_live(shared, mid))
                    .map(Response::Diagnose)
            });
        }
        Request::Repair { model } => {
            // The admin thread blocks for the retrain; predict traffic
            // and every other connection do not.
            return spawn_admin(shared, handle, id, move |shared| {
                shared
                    .registry
                    .find(&model)
                    .ok_or_else(|| ServeError::UnknownModel {
                        name: model.clone(),
                    })
                    .and_then(|mid| repair::repair_live(shared, mid))
                    .map(Response::Repair)
            });
        }
        Request::Rollback { model } => {
            return spawn_admin(shared, handle, id, move |shared| {
                shared
                    .registry
                    .find(&model)
                    .ok_or_else(|| ServeError::UnknownModel {
                        name: model.clone(),
                    })
                    .and_then(|mid| repair::rollback_live(shared, mid))
                    .map(Response::Rollback)
            });
        }
        Request::Predict(p) => {
            let submitted = shared
                .registry
                .find(&p.model)
                .ok_or(ServeError::UnknownModel { name: p.model })
                .and_then(|model| {
                    validate_job(&shared.registry, model, &p.rows, &p.true_labels)?;
                    // A request-supplied deadline budget starts counting
                    // here, at admission; jobs still queued when it runs
                    // out are shed before compute.
                    let deadline = (p.deadline_ms > 0)
                        .then(|| Instant::now() + Duration::from_millis(p.deadline_ms));
                    shared.scheduler.submit(Job {
                        model,
                        rows: p.rows,
                        want_logits: p.want_logits,
                        cases: (!p.true_labels.is_empty())
                            .then(|| Arc::clone(&shared.cases[model.index()])),
                        true_labels: p.true_labels,
                        deadline,
                        deadline_ms: p.deadline_ms,
                        telemetry: JobTelemetry::start(assembly_us),
                        responder: Responder::Stream {
                            conn: handle.clone(),
                            id,
                        },
                    })
                });
            match submitted {
                // The worker owns the reply now.
                Ok(()) => return,
                Err(e) => return send_error(&shared.stats, handle, id, &e),
            }
        }
    };
    handle.send(&shared.stats, &encode_response(id, &response));
}

fn spawn_admin<F>(shared: &Arc<ServerShared>, handle: &ConnHandle, id: u64, work: F)
where
    F: FnOnce(&Arc<ServerShared>) -> ServeResult<Response> + Send + 'static,
{
    let thread_shared = Arc::clone(shared);
    let thread_handle = handle.clone();
    let spawned = std::thread::Builder::new()
        .name("deepmorph-serve-admin".into())
        .spawn(move || match work(&thread_shared) {
            Ok(response) => {
                thread_handle.send(&thread_shared.stats, &encode_response(id, &response));
            }
            Err(e) => send_error(&thread_shared.stats, &thread_handle, id, &e),
        });
    match spawned {
        Ok(joiner) => {
            let mut admin = shared.admin.lock_recover();
            // Reap finished admin threads so a long-lived server doesn't
            // accumulate a handle per admin call it ever served.
            admin.retain(|t| !t.is_finished());
            admin.push(joiner);
        }
        Err(_) => send_error(
            &shared.stats,
            handle,
            id,
            &ServeError::Overloaded {
                reason: "cannot spawn admin thread".into(),
            },
        ),
    }
}
