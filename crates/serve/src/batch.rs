//! The dynamic micro-batching scheduler.
//!
//! Concurrent predict requests land in one bounded queue. Worker threads
//! — each owning its own model *replica* per registered model — pop the
//! head request and *coalesce*: consecutive queued requests for the same
//! model are folded in until the batch reaches `max_batch` rows or the
//! queue runs dry (plus at most one bounded `max_wait` straggler wait
//! when it does). Batch size is therefore **load-adaptive**: while one
//! forward runs, new requests pile up in the queue, and the next dispatch
//! drains them all — heavy traffic yields big batches with zero added
//! waiting, light traffic dispatches almost immediately. The coalesced
//! rows run as **one** eval-mode `Graph::forward` (which fans out over
//! the `deepmorph-parallel` pool internally), and the per-row outputs are
//! scattered back to each caller.
//!
//! Because every layer computes eval-mode rows independently (see
//! `Graph::forward_inference`), a coalesced response is **bitwise
//! identical** to the response the same request would get alone — the
//! scheduler changes latency and throughput, never answers.
//!
//! Two batching-economics notes, both measured on this project's build
//! machines (see `crates/parallel`): a condvar wakeup costs ~100 µs, so
//! one dispatch serving 32 requests amortizes what per-request dispatch
//! would pay 32 times; and a batched GEMM is far more cache-efficient
//! than 32 single-row GEMMs. Both effects are what `serve_bench`'s
//! batched-vs-solo comparison quantifies.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use deepmorph_faults::ComputeAction;
use deepmorph_models::ModelHandle;
use deepmorph_telemetry::{Stage, Trace};
use deepmorph_tensor::{workspace, Tensor};

use crate::error::{ServeError, ServeResult};
use crate::registry::{ModelId, ModelRegistry};
use crate::sync::{wait_recover, wait_timeout_recover, LockRecover};

/// Knobs of the micro-batching scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Maximum rows coalesced into one forward. `1` disables batching
    /// (every request dispatches alone — the `serve_bench` control).
    pub max_batch: usize,
    /// Upper bound on the *single* straggler wait a worker takes when it
    /// popped a request and the queue is empty. This is the whole latency
    /// cost batching can add to a lone request; under load batches form
    /// from queue buildup instead and the wait is skipped. `0` disables
    /// the wait entirely (pure drain batching).
    pub max_wait: Duration,
    /// Worker threads (each owns one replica per model).
    pub workers: usize,
    /// Queue capacity in requests; submissions beyond it are rejected
    /// with a typed busy error instead of growing without bound.
    pub queue_capacity: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 32,
            max_wait: Duration::from_micros(500),
            workers: 2,
            queue_capacity: 1024,
        }
    }
}

/// Shared serving counters (all monotonic).
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Predict requests accepted into the queue.
    pub requests: AtomicU64,
    /// Input rows run through a model.
    pub rows: AtomicU64,
    /// Dispatched batches (forward calls).
    pub batches: AtomicU64,
    /// Batches that coalesced more than one request.
    pub coalesced_batches: AtomicU64,
    /// Error frames sent to clients.
    pub errors: AtomicU64,
    /// Requests rejected because the queue was full.
    pub busy_rejections: AtomicU64,
    /// Diagnose calls answered (repairs include one).
    pub diagnoses: AtomicU64,
    /// Diagnosis sessions prepared (probe-training passes). Memoization
    /// per model fingerprint keeps this at one per served version no
    /// matter how many diagnoses run.
    pub probe_trainings: AtomicU64,
    /// Repair calls answered.
    pub repairs: AtomicU64,
    /// Hot-swaps performed.
    pub swaps: AtomicU64,
    /// Requests shed because their deadline expired before compute.
    pub expired: AtomicU64,
    /// Worker panics contained by the scheduler.
    pub worker_panics: AtomicU64,
    /// Rollback calls that reverted a version.
    pub rollbacks: AtomicU64,
    /// Connections rejected at the configured connection cap.
    pub conn_rejections: AtomicU64,
    /// Connections currently registered with the event loops (a gauge:
    /// incremented at admission, decremented at close).
    pub conns_active: AtomicU64,
    /// Connections admitted past the cap check.
    pub conns_accepted: AtomicU64,
    /// Admitted connections since closed.
    pub conns_closed: AtomicU64,
    /// High-water mark of any connection's outbound buffer, in bytes
    /// (maintained with `fetch_max`).
    pub outbound_hwm_bytes: AtomicU64,
    /// Event-loop `epoll_wait` returns.
    pub loop_wakeups: AtomicU64,
    /// Accept backoffs taken after fd exhaustion (`EMFILE`/`ENFILE`).
    pub accept_backoffs: AtomicU64,
}

impl ServeStats {
    /// A consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> crate::protocol::StatsSnapshot {
        crate::protocol::StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            rows: self.rows.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            coalesced_batches: self.coalesced_batches.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            diagnoses: self.diagnoses.load(Ordering::Relaxed),
            probe_trainings: self.probe_trainings.load(Ordering::Relaxed),
            repairs: self.repairs.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            rollbacks: self.rollbacks.load(Ordering::Relaxed),
            conn_rejections: self.conn_rejections.load(Ordering::Relaxed),
            active_connections: self.conns_active.load(Ordering::Relaxed),
            conns_accepted: self.conns_accepted.load(Ordering::Relaxed),
            conns_closed: self.conns_closed.load(Ordering::Relaxed),
            outbound_hwm_bytes: self.outbound_hwm_bytes.load(Ordering::Relaxed),
            loop_wakeups: self.loop_wakeups.load(Ordering::Relaxed),
            accept_backoffs: self.accept_backoffs.load(Ordering::Relaxed),
        }
    }
}

/// Result rows scattered back to one caller.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutput {
    /// Argmax class per input row.
    pub predictions: Vec<usize>,
    /// Raw logits `[n, classes]` when requested.
    pub logits: Option<Tensor>,
}

/// Where a job's result goes.
pub(crate) enum Responder {
    /// In-process caller ([`Scheduler::submit_rows`], tests, benches).
    Channel(SyncSender<ServeResult<JobOutput>>),
    /// A connection: the worker encodes the response frame, enqueues it
    /// on the connection's outbound buffer, and wakes the owning event
    /// loop, which flushes when the socket is writable.
    Stream {
        /// Handle to the connection's outbound buffer + loop waker.
        conn: crate::conn::ConnHandle,
        /// Request id to echo.
        id: u64,
    },
}

/// Per-request telemetry context, carried by a [`Job`] only while a
/// [`deepmorph_telemetry`] registry is armed (`None` costs nothing: no
/// clock reads, no recording). The event loop stamps `submitted` and
/// `assembly_us` at admission; the worker fills the scheduler-side spans
/// before delivery builds the request trace.
#[derive(Debug, Clone, Copy)]
pub(crate) struct JobTelemetry {
    /// When the job was admitted into the queue.
    pub submitted: Instant,
    /// Frame-assembly span measured by the event loop, µs.
    pub assembly_us: u64,
    /// Queue wait (submit → worker pickup), µs.
    pub queue_us: u64,
    /// Batch coalesce span (drain + straggler wait), µs.
    pub coalesce_us: u64,
    /// Forward span of the batch this job rode in, µs.
    pub compute_us: u64,
}

impl JobTelemetry {
    /// A context stamped *now*, or `None` when telemetry is not armed.
    pub fn start(assembly_us: u64) -> Option<JobTelemetry> {
        deepmorph_telemetry::is_active().then(|| JobTelemetry {
            submitted: Instant::now(),
            assembly_us,
            queue_us: 0,
            coalesce_us: 0,
            compute_us: 0,
        })
    }
}

/// One queued predict request.
pub(crate) struct Job {
    /// Registry handle of the target model.
    pub model: ModelId,
    /// Input rows `[n, c, h, w]`.
    pub rows: Tensor,
    /// Return logits alongside predictions.
    pub want_logits: bool,
    /// Ground-truth labels (empty = unlabeled traffic).
    pub true_labels: Vec<usize>,
    /// Misclassification sink for labeled traffic.
    pub cases: Option<Arc<Mutex<crate::cases::LiveCases>>>,
    /// Absolute deadline; a job still queued past it is shed before
    /// compute with a typed expired error. `None` = no deadline.
    pub deadline: Option<Instant>,
    /// The deadline budget the request carried (for the typed error).
    pub deadline_ms: u64,
    /// Stage-span context (`None` unless telemetry is armed).
    pub telemetry: Option<JobTelemetry>,
    /// Result destination.
    pub responder: Responder,
}

impl Job {
    fn row_count(&self) -> usize {
        self.rows.shape()[0]
    }
}

/// Validates a predict submission against the registry entry.
pub(crate) fn validate_job(
    registry: &ModelRegistry,
    model: ModelId,
    rows: &Tensor,
    true_labels: &[usize],
) -> ServeResult<()> {
    let bad = |reason: String| Err(ServeError::BadInput { reason });
    // Validation reads the *current* version's spec; input shape and
    // class count are invariant across published versions (enforced by
    // `ModelRegistry::publish`), so a swap between validation and
    // dispatch cannot invalidate an accepted job.
    let spec = registry.current(model).spec;
    if rows.ndim() != 4 {
        return bad(format!(
            "input must be [n, c, h, w]; got rank {}",
            rows.ndim()
        ));
    }
    let shape = rows.shape();
    if shape[0] == 0 {
        return bad("empty batch".into());
    }
    if [shape[1], shape[2], shape[3]] != spec.input_shape {
        return bad(format!(
            "input rows are {:?}, model expects {:?}",
            &shape[1..],
            spec.input_shape
        ));
    }
    if !true_labels.is_empty() {
        if true_labels.len() != shape[0] {
            return bad(format!(
                "{} labels for {} rows",
                true_labels.len(),
                shape[0]
            ));
        }
        if let Some(&l) = true_labels.iter().find(|&&l| l >= spec.num_classes) {
            return bad(format!(
                "label {l} out of range for {} classes",
                spec.num_classes
            ));
        }
    }
    Ok(())
}

struct Shared {
    registry: Arc<ModelRegistry>,
    cfg: BatchConfig,
    stats: Arc<ServeStats>,
    queue: Mutex<VecDeque<Job>>,
    cv: Condvar,
    shutdown: AtomicBool,
}

/// The micro-batching scheduler: a bounded queue plus worker threads.
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("cfg", &self.shared.cfg)
            .finish()
    }
}

impl Scheduler {
    /// Starts `cfg.workers` worker threads over `registry`.
    pub fn new(registry: Arc<ModelRegistry>, cfg: BatchConfig, stats: Arc<ServeStats>) -> Self {
        let shared = Arc::new(Shared {
            registry,
            cfg,
            stats,
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("deepmorph-serve-{i}"))
                    // Panic containment, outer ring: `run_jobs` catches
                    // panics around compute, but if one ever escapes the
                    // loop itself (delivery, queue handling), the worker
                    // respawns its loop with fresh replicas instead of
                    // silently shrinking the pool.
                    .spawn(move || loop {
                        if catch_unwind(AssertUnwindSafe(|| worker_loop(&shared))).is_ok() {
                            return; // clean shutdown
                        }
                        shared.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
                    })
                    .expect("spawn serve worker")
            })
            .collect();
        Scheduler {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &BatchConfig {
        &self.shared.cfg
    }

    /// Enqueues a job (validated by the caller via [`validate_job`]).
    pub(crate) fn submit(&self, job: Job) -> ServeResult<()> {
        let mut queue = self.shared.queue.lock_recover();
        // Checked under the queue lock — the lock workers drain under —
        // so a job can never be enqueued after the workers have exited.
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        if queue.len() >= self.shared.cfg.queue_capacity {
            self.shared
                .stats
                .busy_rejections
                .fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Busy {
                queue_depth: queue.len(),
            });
        }
        queue.push_back(job);
        drop(queue);
        self.shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        self.shared.cv.notify_one();
        Ok(())
    }

    /// Validates and enqueues rows for the model at registry index
    /// `model`, returning the channel the result arrives on. This is the
    /// in-process entry point (tests, benches, embedded callers); the TCP
    /// server submits jobs whose responses are written straight to the
    /// connection by the worker.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadInput`] for shape/label problems,
    /// [`ServeError::Busy`] when the queue is full, and
    /// [`ServeError::ShuttingDown`] after shutdown began.
    pub fn submit_rows(
        &self,
        model: ModelId,
        rows: Tensor,
        want_logits: bool,
    ) -> ServeResult<Receiver<ServeResult<JobOutput>>> {
        validate_job(&self.shared.registry, model, &rows, &[])?;
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        self.submit(Job {
            model,
            rows,
            want_logits,
            true_labels: Vec::new(),
            cases: None,
            deadline: None,
            deadline_ms: 0,
            telemetry: JobTelemetry::start(0),
            responder: Responder::Channel(tx),
        })?;
        Ok(rx)
    }

    /// Stops accepting work, drains the queue, and joins the workers.
    /// Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.cv.notify_all();
        let mut workers = self.workers.lock_recover();
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A worker's private instance of one model, pinned to the registry
/// epoch it was instantiated at.
struct Replica {
    epoch: u64,
    /// Content fingerprint of the instantiated version — the key its
    /// live traffic is charged to in the telemetry registry.
    fingerprint: String,
    model: ModelHandle,
}

fn worker_loop(shared: &Shared) {
    let mut replicas: HashMap<ModelId, Replica> = HashMap::new();
    loop {
        let mut queue = shared.queue.lock_recover();
        let first = loop {
            if let Some(job) = queue.pop_front() {
                break job;
            }
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            queue = wait_recover(&shared.cv, queue);
        };
        // Coalesce span: first pop → dispatch, covering the drain and
        // the optional straggler wait. Clock reads only while armed.
        let coalesce_started = deepmorph_telemetry::is_active().then(Instant::now);

        let max_batch = shared.cfg.max_batch.max(1);
        let mut total = first.row_count();
        let mut jobs = vec![first];
        if max_batch > 1 {
            drain(&mut queue, &mut jobs, &mut total, max_batch);
            // One bounded straggler wait, only when the queue is empty
            // and the batch still has room. Never re-armed: on loaded
            // machines a timed wake arrives late (scheduler latency is
            // millisecond-class here), so a worker re-arming timers
            // would idle while requests pile up. The steady-state
            // batching signal is queue buildup during the *previous*
            // forward, which the drain above collects without waiting.
            if total < max_batch
                && !shared.cfg.max_wait.is_zero()
                && queue.is_empty()
                && !shared.shutdown.load(Ordering::Acquire)
            {
                queue = wait_timeout_recover(&shared.cv, queue, shared.cfg.max_wait);
                drain(&mut queue, &mut jobs, &mut total, max_batch);
            }
        }
        drop(queue);
        let coalesce_us = coalesce_started.map(|at| at.elapsed().as_micros() as u64);
        run_jobs(shared, &mut replicas, jobs, coalesce_us);
    }
}

/// Folds consecutive same-model queued requests into the batch while
/// they fit under `max_batch` rows.
fn drain(queue: &mut VecDeque<Job>, jobs: &mut Vec<Job>, total: &mut usize, max_batch: usize) {
    while *total < max_batch {
        match queue.front() {
            Some(f) if f.model == jobs[0].model && *total + f.row_count() <= max_batch => {
                let job = queue.pop_front().expect("front checked");
                *total += job.row_count();
                jobs.push(job);
            }
            _ => break,
        }
    }
}

/// Runs one coalesced batch and scatters the per-row outputs.
fn run_jobs(
    shared: &Shared,
    replicas: &mut HashMap<ModelId, Replica>,
    jobs: Vec<Job>,
    coalesce_us: Option<u64>,
) {
    let stats = &shared.stats;
    // One registry handle for the whole batch; every per-version counter
    // below is a relaxed add on a cached Arc.
    let telemetry = deepmorph_telemetry::armed();
    let model_id = jobs[0].model;

    // Overload control: shed jobs whose deadline already passed *before*
    // spending compute on them. Under overload the queue backs up, so the
    // oldest (most likely already abandoned) requests are exactly the
    // ones that expire — shedding them first frees the forward for
    // requests whose clients are still waiting.
    let mut jobs = {
        let now = Instant::now();
        let (live, dead): (Vec<Job>, Vec<Job>) = jobs
            .into_iter()
            .partition(|job| job.deadline.is_none_or(|d| d > now));
        if !dead.is_empty() {
            if let Some(t) = &telemetry {
                // Shed jobs never reach a replica; charge them to the
                // version currently serving.
                t.version(&shared.registry.current(model_id).fingerprint)
                    .expired
                    .add(dead.len() as u64);
            }
        }
        for job in dead {
            stats.expired.fetch_add(1, Ordering::Relaxed);
            let budget_ms = job.deadline_ms;
            deliver(stats, job, Err(ServeError::Expired { budget_ms }));
        }
        if live.is_empty() {
            return;
        }
        live
    };
    let total_rows: usize = jobs.iter().map(Job::row_count).sum();

    stats.batches.fetch_add(1, Ordering::Relaxed);
    stats.rows.fetch_add(total_rows as u64, Ordering::Relaxed);
    if jobs.len() > 1 {
        stats.coalesced_batches.fetch_add(1, Ordering::Relaxed);
    }

    // Queue wait ends here, where the batch starts; the coalesce span is
    // batch-scoped and stamped onto every rider.
    if let Some(t) = &telemetry {
        let batch_start = Instant::now();
        let coalesce_us = coalesce_us.unwrap_or(0);
        t.record_stage(Stage::Coalesce, coalesce_us);
        for job in &mut jobs {
            if let Some(jt) = job.telemetry.as_mut() {
                jt.queue_us = batch_start
                    .saturating_duration_since(jt.submitted)
                    .as_micros() as u64;
                jt.coalesce_us = coalesce_us;
                t.record_stage(Stage::QueueWait, jt.queue_us);
            }
        }
    }
    let jobs = jobs;

    // Panic containment, inner ring: everything that touches model code
    // (replica instantiation, the forward) runs under `catch_unwind`. A
    // panicking model must not take the worker — or, via lock poisoning,
    // the whole service — down with it. The fault layer's injected
    // compute faults land here too, exercising exactly this path.
    let compute_started = telemetry.as_ref().map(|_| Instant::now());
    let outcome = catch_unwind(AssertUnwindSafe(|| -> ServeResult<_> {
        match deepmorph_faults::compute_action() {
            ComputeAction::Run => {}
            ComputeAction::Panic => panic!("injected fault: worker panic"),
            ComputeAction::Slow(pause) => std::thread::sleep(pause),
        }

        // Batch-boundary version check: one atomic load per batch. A
        // replica built at a superseded epoch is replaced *before* the
        // forward, so every request in this batch is answered by exactly
        // one version — batches already running when a swap lands simply
        // finish on the old replica (the swapped-out entry stays alive
        // behind its Arc).
        let hint = shared.registry.epoch(model_id);
        let stale = replicas.get(&model_id).is_none_or(|r| r.epoch != hint);
        if stale {
            // `current_with_epoch` reads the (epoch, entry) pair under
            // one lock, so the cached epoch always matches the
            // instantiated version even if another swap raced the hint
            // read above.
            let (epoch, current) = shared.registry.current_with_epoch(model_id);
            let model = current.instantiate_for_serving()?;
            replicas.insert(
                model_id,
                Replica {
                    epoch,
                    fingerprint: current.fingerprint.clone(),
                    model,
                },
            );
        }
        let replica = replicas.get_mut(&model_id).expect("replica just ensured");
        let replica_epoch = replica.epoch;
        let replica = &mut replica.model;

        // One forward for the whole batch. The single-request case
        // borrows the job's tensor directly; a coalesced batch gathers
        // rows into one contiguous input (row order = queue order).
        let forward = |g: &mut deepmorph_nn::graph::Graph, x: &Tensor| g.forward_inference(x);
        let logits = if jobs.len() == 1 {
            forward(&mut replica.graph, &jobs[0].rows)?
        } else {
            let row_len: usize = jobs[0].rows.shape()[1..].iter().product();
            let mut gathered = Vec::with_capacity(total_rows * row_len);
            for job in &jobs {
                gathered.extend_from_slice(job.rows.data());
            }
            let shape = jobs[0].rows.shape();
            let batch = Tensor::from_vec(gathered, &[total_rows, shape[1], shape[2], shape[3]])?;
            forward(&mut replica.graph, &batch)?
        };
        // [n, classes] is what every model in the zoo outputs; anything
        // else is a registry/model bug surfaced as a typed error.
        logits.expect_rank(2, "serve logits")?;
        let predictions = logits.argmax_rows()?;
        Ok((replica_epoch, logits, predictions))
    }));

    let compute_us = compute_started.map_or(0, |at| at.elapsed().as_micros() as u64);
    if let Some(t) = &telemetry {
        t.record_stage(Stage::Compute, compute_us);
    }
    // Failed batches are charged to the version currently serving (on
    // the panic/instantiation paths no replica fingerprint survives).
    let charge_errors = |jobs: &mut Vec<Job>| {
        for job in jobs.iter_mut() {
            if let Some(jt) = job.telemetry.as_mut() {
                jt.compute_us = compute_us;
            }
        }
        if let Some(t) = &telemetry {
            let v = t.version(&shared.registry.current(model_id).fingerprint);
            v.requests.add(jobs.len() as u64);
            v.errors.add(jobs.len() as u64);
        }
    };

    let (replica_epoch, logits, predictions) = match outcome {
        Ok(Ok(tuple)) => tuple,
        Ok(Err(e)) => {
            let mut jobs = jobs;
            charge_errors(&mut jobs);
            for job in jobs {
                deliver(stats, job, Err(e.clone()));
            }
            return;
        }
        Err(_panic) => {
            // The replica is in an unknown state after an unwound
            // forward; drop it so the next batch rebuilds from the
            // registry's (consistent, Arc-held) entry.
            replicas.remove(&model_id);
            stats.worker_panics.fetch_add(1, Ordering::Relaxed);
            let err = ServeError::Model {
                reason: "serving worker panicked mid-batch; the batch was dropped and the \
                         worker recovered"
                    .into(),
            };
            let mut jobs = jobs;
            charge_errors(&mut jobs);
            for job in jobs {
                deliver(stats, job, Err(err.clone()));
            }
            return;
        }
    };

    // Per-version live-traffic accounting for the batch that actually
    // ran, keyed by the fingerprint of the replica that answered it.
    let version_stats = telemetry.as_ref().map(|t| {
        let fingerprint = &replicas
            .get(&model_id)
            .expect("replica ensured by the batch above")
            .fingerprint;
        let v = t.version(fingerprint);
        v.requests.add(jobs.len() as u64);
        v
    });

    let classes = logits.shape()[1];
    let mut offset = 0;
    for mut job in jobs {
        let n = job.row_count();
        if let Some(jt) = job.telemetry.as_mut() {
            jt.compute_us = compute_us;
        }
        let job_preds = predictions[offset..offset + n].to_vec();
        let job_logits = job.want_logits.then(|| {
            Tensor::from_vec(
                logits.data()[offset * classes..(offset + n) * classes].to_vec(),
                &[n, classes],
            )
            .expect("slice of verified logits")
        });
        offset += n;

        // Live accuracy per version: `LiveCases::record` below only sees
        // the misses (and may drop stale ones), so the labeled-traffic
        // denominator is counted here, where every row passes.
        if let (Some(v), false) = (version_stats.as_ref(), job.true_labels.is_empty()) {
            let wrong = job
                .true_labels
                .iter()
                .zip(&job_preds)
                .filter(|(truth, pred)| truth != pred)
                .count();
            v.labeled.add(n as u64);
            v.misclassified.add(wrong as u64);
        }

        // Accumulate labeled misses for the diagnose endpoint before the
        // job (and its input rows) is consumed by delivery.
        if let (false, Some(cases)) = (job.true_labels.is_empty(), job.cases.as_ref()) {
            let row_len: usize = job.rows.shape()[1..].iter().product();
            let mut sink = cases.lock_recover();
            for (i, (&truth, &pred)) in job.true_labels.iter().zip(&job_preds).enumerate() {
                if truth != pred {
                    // Row length was validated at submit time, so the only
                    // thing `record` can still do besides accept is drop
                    // the case as stale after a concurrent hot-swap.
                    let _ = sink.record(
                        replica_epoch,
                        &job.rows.data()[i * row_len..(i + 1) * row_len],
                        truth,
                        pred,
                    );
                }
            }
        }

        deliver(
            stats,
            job,
            Ok(JobOutput {
                predictions: job_preds,
                logits: job_logits,
            }),
        );
    }
    workspace::recycle_tensor(logits);
}

/// Sends a result to its caller: channel send, or an encoded frame
/// written straight to the connection. When telemetry is armed this is
/// also where the request's end-to-end latency lands in the histogram
/// and its per-stage trace is offered to the slowest-N ring.
fn deliver(stats: &ServeStats, mut job: Job, result: ServeResult<JobOutput>) {
    let span = job
        .telemetry
        .take()
        .and_then(|jt| deepmorph_telemetry::armed().map(|t| (t, jt)));
    let trace_id = match &job.responder {
        Responder::Stream { id, .. } => *id,
        Responder::Channel(_) => 0,
    };
    let enqueue_started = span.as_ref().map(|_| Instant::now());
    match job.responder {
        Responder::Channel(tx) => {
            // A disconnected receiver means the caller gave up; fine.
            let _ = tx.send(result);
        }
        Responder::Stream { conn, id } => {
            let response = match result {
                Ok(out) => crate::protocol::Response::Predict(crate::protocol::PredictResponse {
                    predictions: out.predictions,
                    logits: out.logits,
                }),
                Err(e) => {
                    stats.errors.fetch_add(1, Ordering::Relaxed);
                    crate::protocol::Response::Error(crate::protocol::ErrorFrame {
                        code: e.code(),
                        message: e.to_string(),
                    })
                }
            };
            let wire = crate::protocol::encode_response(id, &response);
            // Enqueue-and-wake; if the connection already closed the
            // bytes are discarded, which is the old "client hung up
            // mid-flight" path.
            conn.send(stats, &wire);
        }
    }
    if let (Some((t, jt)), Some(enqueued)) = (span, enqueue_started) {
        let total_us = jt.submitted.elapsed().as_micros() as u64;
        t.record_request(total_us);
        t.offer_trace(Trace {
            id: trace_id,
            total_us,
            // The trace's flush slot is the *enqueue* span (encode +
            // outbound push + loop wake) — the socket flush itself runs
            // on the event loop and lands in the `Flush` histogram.
            stages: [
                0, // accept is connection-scoped, not per-request
                jt.assembly_us,
                jt.queue_us,
                jt.coalesce_us,
                jt.compute_us,
                enqueued.elapsed().as_micros() as u64,
            ],
        });
    }
}
