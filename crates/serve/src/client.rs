//! Blocking client for the serve protocol.
//!
//! Besides the request/response plumbing, the client owns the *retry*
//! half of the overload-control contract: the server sheds work with
//! typed `busy` / `overloaded` / `expired` errors, and a client
//! configured with a [`RetryPolicy`] answers those (plus transport
//! failures — dropped frames, truncated responses, resets) with
//! jittered exponential backoff and, for transport failures, a
//! reconnect. Retries are **off by default** ([`RetryPolicy::none`]):
//! an unconfigured client behaves exactly as before this policy
//! existed. Jitter is deterministic (a seeded hash of the attempt
//! number), keeping chaos tests reproducible end to end.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use deepmorph_tensor::Tensor;

use crate::error::{ErrorCode, ServeError, ServeResult};
use crate::protocol::{
    decode_response, encode_request, DiagnoseResponse, ModelInfo, PredictRequest, PredictResponse,
    RepairResponse, Request, Response, RollbackResponse, StatsSnapshot, TelemetryReport,
    VersionInfo, MAX_FRAME_BYTES,
};

/// How long a client waits for one response before giving up, unless
/// configured otherwise ([`ClientConfig::response_timeout`]). Diagnosis
/// trains probes server-side, so the bound is generous.
const RESPONSE_TIMEOUT: Duration = Duration::from_secs(300);

/// Client-side retry behavior for retryable failures: transport errors
/// (IO, lost framing) and the server's typed admission-control errors
/// (`busy`, `overloaded`, `expired`). Non-idempotent requests (repair,
/// rollback) are never retried regardless of policy — a retry there
/// could execute the operation twice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per request (first try included). `1` = no retry.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
    /// Cap on any single backoff sleep.
    pub max_backoff: Duration,
    /// Seed of the deterministic jitter applied to each backoff (each
    /// sleep is scaled into `[50%, 100%]` of its nominal value).
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// No retries: every failure surfaces immediately. The default.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            jitter_seed: 0,
        }
    }

    /// Up to `max_attempts` total attempts with the default backoff
    /// curve (10 ms base, doubling, 500 ms cap) and jitter seed.
    pub fn retries(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..Self::none()
        }
    }

    /// The jittered backoff before retry number `retry` (1-based).
    fn backoff(&self, retry: u32) -> Duration {
        let nominal = self
            .base_backoff
            .saturating_mul(1u32 << retry.saturating_sub(1).min(16))
            .min(self.max_backoff);
        // Deterministic jitter in [0.5, 1.0): a splitmix64-style hash of
        // (seed, retry) — reproducible run to run, decorrelated across
        // clients with different seeds.
        let mut z = self
            .jitter_seed
            .wrapping_add(u64::from(retry).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
        nominal.mul_f64(0.5 + 0.5 * unit)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

/// Client construction knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// How long to wait for one response before giving up. Requests
    /// carrying an explicit deadline budget wait at most the *remaining*
    /// budget instead, whichever is smaller.
    pub response_timeout: Duration,
    /// Retry behavior; [`RetryPolicy::none`] by default.
    pub retry: RetryPolicy,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            response_timeout: RESPONSE_TIMEOUT,
            retry: RetryPolicy::none(),
        }
    }
}

/// A synchronous connection to a serve instance: one request in flight
/// at a time, responses matched by echoed id.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    /// Resolved peer address, kept for transport-failure reconnects.
    addr: SocketAddr,
    config: ClientConfig,
    /// The read timeout currently set on the socket (tracked to skip the
    /// syscall when it has not changed).
    read_timeout: Duration,
    next_id: u64,
}

impl Client {
    /// Connects to a server with the default configuration (300 s
    /// response timeout, no retries).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] on connection failure.
    pub fn connect(addr: impl ToSocketAddrs) -> ServeResult<Client> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects to a server with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] on connection failure.
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> ServeResult<Client> {
        let stream = TcpStream::connect(addr)?;
        let addr = stream.peer_addr()?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(config.response_timeout))?;
        Ok(Client {
            stream,
            addr,
            config,
            read_timeout: config.response_timeout,
            next_id: 1,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    /// The underlying socket, for tuning (buffer sizes, platform socket
    /// options) and tests. Reading or writing bytes through it desyncs
    /// the client's framing; stick to option setters.
    pub fn socket(&self) -> &TcpStream {
        &self.stream
    }

    /// Replaces a dead transport with a fresh connection to the same
    /// address. Request ids keep increasing across the reconnect, so a
    /// straggler response from the old connection can never be matched
    /// to a new request.
    fn reconnect(&mut self) -> ServeResult<()> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.read_timeout))?;
        self.stream = stream;
        Ok(())
    }

    fn set_read_timeout(&mut self, timeout: Duration) -> ServeResult<()> {
        // Zero would mean "no timeout" to the OS; clamp up instead.
        let timeout = timeout.max(Duration::from_millis(1));
        if timeout != self.read_timeout {
            self.stream.set_read_timeout(Some(timeout))?;
            self.read_timeout = timeout;
        }
        Ok(())
    }

    /// One request/response exchange, no retries.
    fn call_once(&mut self, request: &Request, deadline: Option<Instant>) -> ServeResult<Response> {
        // Never wait past the caller's deadline budget for a response.
        let timeout = match deadline {
            Some(d) => self
                .config
                .response_timeout
                .min(d.saturating_duration_since(Instant::now())),
            None => self.config.response_timeout,
        };
        self.set_read_timeout(timeout)?;
        // One absolute deadline for the whole response: the per-syscall
        // receive timeout alone would reset on every partial read, so a
        // response trickling in against the nonblocking server could
        // wait far past the configured timeout.
        let response_deadline = Instant::now() + timeout.max(Duration::from_millis(1));

        let id = self.next_id;
        self.next_id += 1;
        write_full(&mut self.stream, &encode_request(id, request))?;

        let response = loop {
            let mut prefix = [0u8; 4];
            read_full(&mut self.stream, &mut prefix, response_deadline)?;
            let len = u32::from_le_bytes(prefix) as usize;
            if len > MAX_FRAME_BYTES {
                return Err(ServeError::Protocol {
                    reason: format!("server frame claims {len} bytes"),
                });
            }
            let mut frame = vec![0u8; len];
            read_full(&mut self.stream, &mut frame, response_deadline)?;
            let (echoed, response) = decode_response(&frame)?;
            // A frame older than this request is a straggler answer to a
            // call we abandoned (its deadline lapsed locally); drop it
            // and keep reading for ours.
            if echoed < id && echoed != 0 {
                continue;
            }
            // Error frames for undecodable requests carry id 0.
            if echoed != id && echoed != 0 {
                return Err(ServeError::Protocol {
                    reason: format!("response id {echoed} does not match request id {id}"),
                });
            }
            break response;
        };
        match response {
            Response::Error(e) => Err(ServeError::Remote {
                code: e.code,
                message: e.message,
            }),
            other => Ok(other),
        }
    }

    /// Failures worth retrying: the transport broke (the request may
    /// never have arrived, or the response was lost on the way back), the
    /// server explicitly shed the request and asked us to come back, or
    /// the server hit an internal fault (e.g. a contained worker panic
    /// dropped the batch) — transient by the containment contract, and
    /// bounded by `max_attempts` if it turns out not to be.
    fn retryable_error(e: &ServeError) -> bool {
        match e {
            ServeError::Io { .. } | ServeError::Protocol { .. } => true,
            ServeError::Remote { code, .. } => matches!(
                code,
                ErrorCode::Busy | ErrorCode::Overloaded | ErrorCode::Expired | ErrorCode::Internal
            ),
            _ => false,
        }
    }

    /// A request/response exchange with the configured retry policy.
    ///
    /// `budget` bounds the *whole* exchange — attempts, backoffs, and
    /// waits together never exceed it — and, for predict requests, is
    /// re-encoded per attempt as the remaining `deadline_ms` so the
    /// server sheds work we have already given up on. `retryable` is
    /// `false` for non-idempotent requests, which always get exactly one
    /// attempt.
    fn call_with(
        &mut self,
        mut request: Request,
        retryable: bool,
        budget: Option<Duration>,
    ) -> ServeResult<Response> {
        let deadline = budget.map(|b| Instant::now() + b);
        let policy = self.config.retry;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            if let (Request::Predict(p), Some(d)) = (&mut request, deadline) {
                let remaining = d.saturating_duration_since(Instant::now());
                p.deadline_ms = (remaining.as_millis() as u64).max(1);
            }
            let err = match self.call_once(&request, deadline) {
                Ok(response) => return Ok(response),
                Err(e) => e,
            };
            if !(retryable && attempt < policy.max_attempts.max(1) && Self::retryable_error(&err)) {
                return Err(err);
            }
            let mut backoff = policy.backoff(attempt);
            if let Some(d) = deadline {
                let remaining = d.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(err);
                }
                backoff = backoff.min(remaining);
            }
            std::thread::sleep(backoff);
            if matches!(
                err,
                ServeError::Io { .. } | ServeError::Protocol { .. } | ServeError::Codec(_)
            ) {
                // The old socket is suspect (reset, desynced framing);
                // a failed reconnect just makes the next attempt fail
                // fast and consume its slot.
                let _ = self.reconnect();
            }
        }
    }

    fn unexpected<T>(what: &str) -> ServeResult<T> {
        Err(ServeError::Protocol {
            reason: format!("unexpected response kind to {what}"),
        })
    }

    /// Liveness check; returns the registered model count.
    ///
    /// # Errors
    ///
    /// IO, protocol, and server errors, all typed.
    pub fn ping(&mut self) -> ServeResult<u64> {
        match self.call_with(Request::Ping, true, None)? {
            Response::Pong { models } => Ok(models),
            _ => Self::unexpected("ping"),
        }
    }

    /// Lists the registry.
    ///
    /// # Errors
    ///
    /// IO, protocol, and server errors, all typed.
    pub fn models(&mut self) -> ServeResult<Vec<ModelInfo>> {
        match self.call_with(Request::ListModels, true, None)? {
            Response::Models(models) => Ok(models),
            _ => Self::unexpected("list-models"),
        }
    }

    /// Runs inference on `rows` (`[n, c, h, w]`), returning argmax
    /// predictions.
    ///
    /// # Errors
    ///
    /// IO, protocol, and server errors, all typed.
    pub fn predict(&mut self, model: &str, rows: &Tensor) -> ServeResult<PredictResponse> {
        self.predict_request(model, rows, false, &[], None)
    }

    /// [`Client::predict`] under a deadline budget: the server sheds the
    /// request (typed `expired` error) if it cannot reach compute within
    /// the budget, and the client bounds its waits — and any configured
    /// retries — by the remaining budget instead of the flat response
    /// timeout.
    ///
    /// # Errors
    ///
    /// IO, protocol, and server errors, all typed — including
    /// [`crate::ErrorCode::Expired`] when the budget ran out.
    pub fn predict_within(
        &mut self,
        model: &str,
        rows: &Tensor,
        budget: Duration,
    ) -> ServeResult<PredictResponse> {
        self.predict_request(model, rows, false, &[], Some(budget))
    }

    /// Full-control inference: optionally request raw logits and/or
    /// supply ground-truth labels so the server can accumulate
    /// misclassified cases for [`Client::diagnose`].
    ///
    /// # Errors
    ///
    /// IO, protocol, and server errors, all typed.
    pub fn predict_full(
        &mut self,
        model: &str,
        rows: &Tensor,
        want_logits: bool,
        true_labels: &[usize],
    ) -> ServeResult<PredictResponse> {
        self.predict_request(model, rows, want_logits, true_labels, None)
    }

    fn predict_request(
        &mut self,
        model: &str,
        rows: &Tensor,
        want_logits: bool,
        true_labels: &[usize],
        budget: Option<Duration>,
    ) -> ServeResult<PredictResponse> {
        let request = Request::Predict(PredictRequest {
            model: model.to_string(),
            rows: rows.clone(),
            want_logits,
            true_labels: true_labels.to_vec(),
            deadline_ms: 0,
        });
        match self.call_with(request, true, budget)? {
            Response::Predict(p) => Ok(p),
            _ => Self::unexpected("predict"),
        }
    }

    /// Runs live defect diagnosis over the traffic this server has
    /// accumulated for `model`.
    ///
    /// # Errors
    ///
    /// IO, protocol, and server errors, all typed — including
    /// [`crate::ErrorCode::Diagnosis`] when no labeled misclassified
    /// traffic exists yet.
    pub fn diagnose(&mut self, model: &str) -> ServeResult<DiagnoseResponse> {
        match self.call_with(
            Request::Diagnose {
                model: model.to_string(),
            },
            true,
            None,
        )? {
            Response::Diagnose(d) => Ok(d),
            _ => Self::unexpected("diagnose"),
        }
    }

    /// Runs the online repair loop for `model`: diagnose the accumulated
    /// traffic, execute the recommended repair, and — when the retrained
    /// model is at least as accurate on the held-out set — hot-swap it in
    /// as a new version. Blocks for the retraining; concurrent predict
    /// traffic (on other connections) is not affected. Never retried.
    ///
    /// # Errors
    ///
    /// IO, protocol, and server errors, all typed — including
    /// [`crate::ErrorCode::Repair`] when no actionable plan exists or a
    /// repair of the model is already running.
    pub fn repair(&mut self, model: &str) -> ServeResult<RepairResponse> {
        match self.call_with(
            Request::Repair {
                model: model.to_string(),
            },
            false,
            None,
        )? {
            Response::Repair(r) => Ok(r),
            _ => Self::unexpected("repair"),
        }
    }

    /// Reverts `model` to its previous published version — the ungated
    /// operator escape hatch for a bad swap. The restored version serves
    /// bitwise-identically to when it last served. Never retried (a
    /// retried rollback whose response was merely lost would revert one
    /// version further than asked).
    ///
    /// # Errors
    ///
    /// IO, protocol, and server errors, all typed — including
    /// [`crate::ErrorCode::BadInput`] when no previous version exists and
    /// [`crate::ErrorCode::Repair`] when a repair is mid-flight.
    pub fn rollback(&mut self, model: &str) -> ServeResult<RollbackResponse> {
        match self.call_with(
            Request::Rollback {
                model: model.to_string(),
            },
            false,
            None,
        )? {
            Response::Rollback(r) => Ok(r),
            _ => Self::unexpected("rollback"),
        }
    }

    /// Lists `model`'s version chain, oldest first.
    ///
    /// # Errors
    ///
    /// IO, protocol, and server errors, all typed.
    pub fn versions(&mut self, model: &str) -> ServeResult<Vec<VersionInfo>> {
        match self.call_with(
            Request::ListVersions {
                model: model.to_string(),
            },
            true,
            None,
        )? {
            Response::Versions(v) => Ok(v),
            _ => Self::unexpected("list-versions"),
        }
    }

    /// Fetches the serving counters.
    ///
    /// # Errors
    ///
    /// IO, protocol, and server errors, all typed.
    pub fn stats(&mut self) -> ServeResult<StatsSnapshot> {
        match self.call_with(Request::Stats, true, None)? {
            Response::Stats(s) => Ok(s),
            _ => Self::unexpected("stats"),
        }
    }

    /// Fetches the full observability report: the serving counters plus
    /// latency histograms, per-stage spans, the slowest request traces,
    /// and per-version live-traffic stats. The payload is versioned and
    /// length-prefixed, so this client keeps working against servers
    /// that append fields.
    ///
    /// # Errors
    ///
    /// IO, protocol, and server errors, all typed.
    pub fn telemetry(&mut self) -> ServeResult<TelemetryReport> {
        match self.call_with(Request::Telemetry, true, None)? {
            Response::Telemetry(t) => Ok(t),
            _ => Self::unexpected("telemetry"),
        }
    }
}

/// Writes the whole buffer, looping over partial writes, `Interrupted`,
/// and spurious `WouldBlock`: with deliberately tiny socket buffers (or
/// a slow-draining nonblocking peer) even a blocking socket returns
/// short writes, and `write_all` alone would surface a transient
/// `WouldBlock` as a hard transport error.
fn write_full(stream: &mut TcpStream, mut buf: &[u8]) -> ServeResult<()> {
    while !buf.is_empty() {
        match stream.write(buf) {
            Ok(0) => {
                return Err(ServeError::Io {
                    message: "server closed while request was being written".into(),
                })
            }
            Ok(n) => buf = &buf[n..],
            Err(e)
                if e.kind() == std::io::ErrorKind::Interrupted
                    || e.kind() == std::io::ErrorKind::WouldBlock => {}
            Err(e) => return Err(e.into()),
        }
    }
    stream.flush()?;
    Ok(())
}

/// Fills `buf`, tolerating short reads: the per-syscall receive timeout
/// acts as a poll tick against one absolute `deadline`, so a response
/// arriving in arbitrarily small chunks neither errors out mid-frame
/// (desyncing the stream) nor extends the total wait beyond the
/// caller's timeout.
fn read_full(stream: &mut TcpStream, buf: &mut [u8], deadline: Instant) -> ServeResult<()> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(ServeError::Io {
                    message: format!("server closed mid-frame ({filled}/{} bytes)", buf.len()),
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if Instant::now() >= deadline {
                    return Err(e.into());
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            jitter_seed: 42,
        };
        let a = policy.backoff(1);
        assert_eq!(a, policy.backoff(1), "same inputs, same backoff");
        // Each backoff lands in [50%, 100%] of min(base * 2^(n-1), cap).
        for retry in 1..=8u32 {
            let nominal = Duration::from_millis(10)
                .saturating_mul(1 << (retry - 1))
                .min(Duration::from_millis(100));
            let b = policy.backoff(retry);
            assert!(b <= nominal, "retry {retry}: {b:?} > {nominal:?}");
            assert!(
                b >= nominal.mul_f64(0.5),
                "retry {retry}: {b:?} < half of {nominal:?}"
            );
        }
        // Different seeds decorrelate.
        let other = RetryPolicy {
            jitter_seed: 43,
            ..policy
        };
        assert_ne!(policy.backoff(3), other.backoff(3));
    }

    #[test]
    fn retryable_errors_are_the_shed_and_transport_kinds() {
        let yes = [
            ServeError::Io {
                message: "reset".into(),
            },
            ServeError::Protocol {
                reason: "desync".into(),
            },
            ServeError::Remote {
                code: ErrorCode::Busy,
                message: "full".into(),
            },
            ServeError::Remote {
                code: ErrorCode::Overloaded,
                message: "cap".into(),
            },
            ServeError::Remote {
                code: ErrorCode::Expired,
                message: "late".into(),
            },
            ServeError::Remote {
                code: ErrorCode::Internal,
                message: "worker panicked".into(),
            },
        ];
        for e in &yes {
            assert!(Client::retryable_error(e), "{e} should be retryable");
        }
        let no = [
            ServeError::Remote {
                code: ErrorCode::BadInput,
                message: "shape".into(),
            },
            ServeError::Remote {
                code: ErrorCode::UnknownModel,
                message: "who".into(),
            },
            ServeError::BadInput {
                reason: "local".into(),
            },
        ];
        for e in &no {
            assert!(!Client::retryable_error(e), "{e} should not be retryable");
        }
    }
}
