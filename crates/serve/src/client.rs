//! Blocking client for the serve protocol.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use deepmorph_tensor::Tensor;

use crate::error::{ServeError, ServeResult};
use crate::protocol::{
    decode_response, encode_request, DiagnoseResponse, ModelInfo, PredictRequest, PredictResponse,
    RepairResponse, Request, Response, StatsSnapshot, VersionInfo, MAX_FRAME_BYTES,
};

/// How long a client waits for one response before giving up. Diagnosis
/// trains probes server-side, so the bound is generous.
const RESPONSE_TIMEOUT: Duration = Duration::from_secs(300);

/// A synchronous connection to a serve instance: one request in flight
/// at a time, responses matched by echoed id.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] on connection failure.
    pub fn connect(addr: impl ToSocketAddrs) -> ServeResult<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(RESPONSE_TIMEOUT))?;
        Ok(Client { stream, next_id: 1 })
    }

    fn call(&mut self, request: &Request) -> ServeResult<Response> {
        let id = self.next_id;
        self.next_id += 1;
        self.stream.write_all(&encode_request(id, request))?;
        self.stream.flush()?;

        let mut prefix = [0u8; 4];
        self.stream.read_exact(&mut prefix)?;
        let len = u32::from_le_bytes(prefix) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(ServeError::Protocol {
                reason: format!("server frame claims {len} bytes"),
            });
        }
        let mut frame = vec![0u8; len];
        self.stream.read_exact(&mut frame)?;
        let (echoed, response) = decode_response(&frame)?;
        // Error frames for undecodable requests carry id 0.
        if echoed != id && echoed != 0 {
            return Err(ServeError::Protocol {
                reason: format!("response id {echoed} does not match request id {id}"),
            });
        }
        match response {
            Response::Error(e) => Err(ServeError::Remote {
                code: e.code,
                message: e.message,
            }),
            other => Ok(other),
        }
    }

    fn unexpected<T>(what: &str) -> ServeResult<T> {
        Err(ServeError::Protocol {
            reason: format!("unexpected response kind to {what}"),
        })
    }

    /// Liveness check; returns the registered model count.
    ///
    /// # Errors
    ///
    /// IO, protocol, and server errors, all typed.
    pub fn ping(&mut self) -> ServeResult<u64> {
        match self.call(&Request::Ping)? {
            Response::Pong { models } => Ok(models),
            _ => Self::unexpected("ping"),
        }
    }

    /// Lists the registry.
    ///
    /// # Errors
    ///
    /// IO, protocol, and server errors, all typed.
    pub fn models(&mut self) -> ServeResult<Vec<ModelInfo>> {
        match self.call(&Request::ListModels)? {
            Response::Models(models) => Ok(models),
            _ => Self::unexpected("list-models"),
        }
    }

    /// Runs inference on `rows` (`[n, c, h, w]`), returning argmax
    /// predictions.
    ///
    /// # Errors
    ///
    /// IO, protocol, and server errors, all typed.
    pub fn predict(&mut self, model: &str, rows: &Tensor) -> ServeResult<PredictResponse> {
        self.predict_full(model, rows, false, &[])
    }

    /// Full-control inference: optionally request raw logits and/or
    /// supply ground-truth labels so the server can accumulate
    /// misclassified cases for [`Client::diagnose`].
    ///
    /// # Errors
    ///
    /// IO, protocol, and server errors, all typed.
    pub fn predict_full(
        &mut self,
        model: &str,
        rows: &Tensor,
        want_logits: bool,
        true_labels: &[usize],
    ) -> ServeResult<PredictResponse> {
        let request = Request::Predict(PredictRequest {
            model: model.to_string(),
            rows: rows.clone(),
            want_logits,
            true_labels: true_labels.to_vec(),
        });
        match self.call(&request)? {
            Response::Predict(p) => Ok(p),
            _ => Self::unexpected("predict"),
        }
    }

    /// Runs live defect diagnosis over the traffic this server has
    /// accumulated for `model`.
    ///
    /// # Errors
    ///
    /// IO, protocol, and server errors, all typed — including
    /// [`crate::ErrorCode::Diagnosis`] when no labeled misclassified
    /// traffic exists yet.
    pub fn diagnose(&mut self, model: &str) -> ServeResult<DiagnoseResponse> {
        match self.call(&Request::Diagnose {
            model: model.to_string(),
        })? {
            Response::Diagnose(d) => Ok(d),
            _ => Self::unexpected("diagnose"),
        }
    }

    /// Runs the online repair loop for `model`: diagnose the accumulated
    /// traffic, execute the recommended repair, and — when the retrained
    /// model is at least as accurate on the held-out set — hot-swap it in
    /// as a new version. Blocks for the retraining; concurrent predict
    /// traffic (on other connections) is not affected.
    ///
    /// # Errors
    ///
    /// IO, protocol, and server errors, all typed — including
    /// [`crate::ErrorCode::Repair`] when no actionable plan exists or a
    /// repair of the model is already running.
    pub fn repair(&mut self, model: &str) -> ServeResult<RepairResponse> {
        match self.call(&Request::Repair {
            model: model.to_string(),
        })? {
            Response::Repair(r) => Ok(r),
            _ => Self::unexpected("repair"),
        }
    }

    /// Lists `model`'s version chain, oldest first.
    ///
    /// # Errors
    ///
    /// IO, protocol, and server errors, all typed.
    pub fn versions(&mut self, model: &str) -> ServeResult<Vec<VersionInfo>> {
        match self.call(&Request::ListVersions {
            model: model.to_string(),
        })? {
            Response::Versions(v) => Ok(v),
            _ => Self::unexpected("list-versions"),
        }
    }

    /// Fetches the serving counters.
    ///
    /// # Errors
    ///
    /// IO, protocol, and server errors, all typed.
    pub fn stats(&mut self) -> ServeResult<StatsSnapshot> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            _ => Self::unexpected("stats"),
        }
    }
}
