//! Crash-consistency tests: `ModelRegistry::open` against the debris a
//! crashed or torn publish leaves behind.
//!
//! The contract under test: startup never fails on crash debris. Stale
//! `.tmp` files, truncated/corrupt `*.dmmd` containers, and unparseable
//! sidecars are *quarantined* (moved to `quarantine/`, reported via
//! [`ModelRegistry::quarantined`]) and the chain falls back to its
//! newest decodable version — the same state a rollback would have
//! produced. Only an *ambiguous* chain (two files claiming one version,
//! operator error rather than crash debris) refuses to load.

use std::path::PathBuf;
use std::sync::Mutex;

use deepmorph_data::DatasetKind;
use deepmorph_faults::{Fault, FaultPlan};
use deepmorph_models::{build_model, save_model, ModelFamily, ModelHandle, ModelScale, ModelSpec};
use deepmorph_serve::prelude::*;

/// The fault plan is process-global; tests that install one serialize.
static FAULT_GUARD: Mutex<()> = Mutex::new(());

fn lenet(seed: u64) -> ModelHandle {
    let spec = ModelSpec::new(ModelFamily::LeNet, ModelScale::Tiny, [1, 16, 16], 10);
    build_model(
        &spec,
        &mut deepmorph_tensor::init::stream_rng(seed, "recovery-test"),
    )
    .unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("deepmorph-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn truncated_head_version_is_quarantined_and_the_chain_falls_back() {
    let dir = temp_dir("truncated");
    save_model(dir.join("m.dmmd"), &mut lenet(1)).unwrap();
    // A torn publish of v2: the file exists but holds half a container.
    let good = std::fs::read(dir.join("m.dmmd")).unwrap();
    std::fs::write(dir.join("m@v2.dmmd"), &good[..good.len() / 2]).unwrap();

    let registry = ModelRegistry::open(&dir).unwrap();
    let id = registry.find("m").expect("name still serves");
    assert_eq!(registry.current(id).version, 1, "fell back to v1");
    assert_eq!(registry.quarantined().len(), 1);
    assert!(registry.quarantined()[0].ends_with("m@v2.dmmd"));
    assert!(
        dir.join("quarantine").join("m@v2.dmmd").exists(),
        "corrupt file moved aside for the post-mortem"
    );
    assert!(!dir.join("m@v2.dmmd").exists());

    // The survivor still instantiates.
    assert!(registry.instantiate(id).is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_tmp_files_are_quarantined_on_open() {
    let dir = temp_dir("tmp");
    save_model(dir.join("m.dmmd"), &mut lenet(2)).unwrap();
    // A crash between write and rename leaves the publish temp file; its
    // rename never happened, so it was never committed.
    std::fs::write(dir.join(".m@v2.tmp"), b"half a container").unwrap();
    std::fs::write(dir.join(".m@v2.meta.tmp"), b"{").unwrap();

    let registry = ModelRegistry::open(&dir).unwrap();
    let id = registry.find("m").unwrap();
    assert_eq!(registry.current(id).version, 1);
    assert_eq!(registry.quarantined().len(), 2);
    assert!(!dir.join(".m@v2.tmp").exists());
    assert!(!dir.join(".m@v2.meta.tmp").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unparseable_sidecar_is_quarantined_and_the_model_serves_without_provenance() {
    let dir = temp_dir("sidecar");
    save_model(dir.join("m.dmmd"), &mut lenet(3)).unwrap();
    std::fs::write(dir.join("m.meta.json"), "{not json").unwrap();

    let registry = ModelRegistry::open(&dir).unwrap();
    let id = registry.find("m").unwrap();
    assert_eq!(registry.current(id).diagnosis, None);
    assert!(registry
        .quarantined()
        .iter()
        .any(|p| p.ends_with("m.meta.json")));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_sidecar_serves_but_diagnosis_refuses_with_a_typed_error() {
    let dir = temp_dir("nosidecar");
    save_model(dir.join("m.dmmd"), &mut lenet(4)).unwrap();
    let registry = ModelRegistry::open(&dir).unwrap();
    let id = registry.find("m").unwrap();
    assert_eq!(registry.current(id).diagnosis, None);
    assert!(registry.quarantined().is_empty(), "nothing wrong on disk");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_name_whose_every_version_is_corrupt_is_skipped_not_fatal() {
    let dir = temp_dir("allcorrupt");
    std::fs::write(dir.join("broken.dmmd"), b"not a container").unwrap();
    std::fs::write(dir.join("broken@v2.dmmd"), b"also not").unwrap();
    save_model(dir.join("ok.dmmd"), &mut lenet(5)).unwrap();

    let registry = ModelRegistry::open(&dir).unwrap();
    assert!(registry.find("broken").is_none(), "corrupt name absent");
    assert!(registry.find("ok").is_some(), "healthy neighbor serves");
    assert_eq!(registry.quarantined().len(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_publish_under_fault_injection_recovers_on_reopen() {
    let _guard = FAULT_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    let dir = temp_dir("torn-publish");
    save_model(dir.join("m.dmmd"), &mut lenet(6)).unwrap();
    let ctx = DiagnosisContext::new(DatasetKind::Digits, 6, 12);
    std::fs::write(dir.join("m.meta.json"), ctx.to_json()).unwrap();

    let registry = ModelRegistry::open(&dir).unwrap();
    let id = registry.find("m").unwrap();

    // Every rename *tears*: it succeeds but commits a truncated file —
    // the silent-corruption shape of a crash mid-write. The publish
    // cannot observe that (rename returned success), so it completes
    // and v2 serves in-memory; the damage is on disk, waiting for the
    // restart.
    deepmorph_faults::install(FaultPlan::new(11).with(Fault::FsTornRename, 1.0));
    let result = registry.publish(id, &mut lenet(7), Some(ctx.clone()));
    deepmorph_faults::clear();
    assert!(result.is_ok(), "a torn rename is silent at publish time");
    assert_eq!(registry.current(id).version, 2);
    drop(registry);

    // The restart finds v2's container truncated, quarantines it, and
    // falls back to v1 — exactly the state a rollback would produce.
    let reopened = ModelRegistry::open(&dir).unwrap();
    let id = reopened.find("m").unwrap();
    assert_eq!(reopened.current(id).version, 1);
    assert!(reopened
        .quarantined()
        .iter()
        .any(|p| p.ends_with("m@v2.dmmd")));
    assert!(reopened.instantiate(id).is_ok());

    // And with the storm over, the same publish now succeeds cleanly.
    let published = reopened.publish(id, &mut lenet(7), Some(ctx)).unwrap();
    assert_eq!(published.version, 2);
    drop(reopened);
    let after = ModelRegistry::open(&dir).unwrap();
    assert_eq!(after.current(after.find("m").unwrap()).version, 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failed_rename_publish_leaves_no_debris_visible_to_open() {
    let _guard = FAULT_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    let dir = temp_dir("failed-rename");
    save_model(dir.join("m.dmmd"), &mut lenet(8)).unwrap();
    let registry = ModelRegistry::open(&dir).unwrap();
    let id = registry.find("m").unwrap();

    deepmorph_faults::install(FaultPlan::new(12).with(Fault::FsRenameFail, 1.0));
    assert!(registry.publish(id, &mut lenet(9), None).is_err());
    deepmorph_faults::clear();
    drop(registry);

    let reopened = ModelRegistry::open(&dir).unwrap();
    let id = reopened.find("m").unwrap();
    assert_eq!(reopened.current(id).version, 1);
    assert!(
        !dir.join("m@v2.dmmd").exists(),
        "the failed publish never committed a v2 file"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
