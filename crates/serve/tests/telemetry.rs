//! Integration tests for the telemetry surface of the serving layer.
//!
//! Pinned here:
//!
//! * **telemetry is invisible**: logits served with the process-global
//!   registry armed are bitwise identical to logits served disarmed —
//!   observation must never perturb the answer;
//! * **per-version live stats are real**: labeled traffic with wrong
//!   labels shows up as a nonzero misclassification rate in the
//!   `Telemetry` frame fetched over the wire, keyed by the serving
//!   version's content fingerprint.
//!
//! Telemetry arming is process-global, so the tests in this binary
//! serialize their armed windows behind one mutex (separate test
//! binaries are separate processes and need no coordination).

use std::sync::{Mutex, PoisonError};

use deepmorph_models::{build_model, ModelFamily, ModelHandle, ModelScale, ModelSpec};
use deepmorph_serve::prelude::*;
use deepmorph_tensor::init::stream_rng;
use deepmorph_tensor::Tensor;

/// Guards the process-global telemetry registry across `#[test]`s.
static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

fn lenet(seed: u64) -> ModelHandle {
    let spec = ModelSpec::new(ModelFamily::LeNet, ModelScale::Tiny, [1, 16, 16], 10);
    build_model(&spec, &mut stream_rng(seed, "telemetry-test")).unwrap()
}

fn registry_with(name: &str, seed: u64) -> ModelRegistry {
    let mut registry = ModelRegistry::new();
    registry.register(name, &mut lenet(seed), None).unwrap();
    registry
}

fn input_row(i: usize) -> Tensor {
    let data = (0..256)
        .map(|j| {
            let h = ((i * 256 + j) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ((h >> 40) as f32 / (1u64 << 24) as f32).fract()
        })
        .collect();
    Tensor::from_vec(data, &[1, 1, 16, 16]).unwrap()
}

/// Serves `n` rows against a fresh server and returns the logits.
fn serve_logits(n: usize) -> Vec<Tensor> {
    let server = Server::start(registry_with("m", 11), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let logits = (0..n)
        .map(|i| {
            client
                .predict_full("m", &input_row(i), true, &[])
                .unwrap()
                .logits
                .unwrap()
        })
        .collect();
    server.shutdown();
    logits
}

/// The acceptance-criteria digest test: the same rows served with
/// telemetry fully armed and with it off must produce bitwise-identical
/// logits. Observation is measurement-only — stage spans, histograms,
/// per-version counters, and the trace ring never touch the data path.
#[test]
fn armed_responses_are_bitwise_identical_to_disarmed() {
    let _guard = TELEMETRY_LOCK
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    deepmorph_telemetry::clear();
    let off = serve_logits(12);

    deepmorph_telemetry::install(TelemetryConfig::default());
    let on = serve_logits(12);
    let snapshot = deepmorph_telemetry::armed().expect("armed").snapshot();
    deepmorph_telemetry::clear();

    // The armed pass must actually have observed the traffic, or the
    // digest below would vacuously compare two unobserved runs.
    assert!(
        snapshot.request_us.count() >= 12,
        "armed pass recorded {} requests, expected >= 12",
        snapshot.request_us.count()
    );

    assert_eq!(off.len(), on.len());
    for (i, (a, b)) in off.iter().zip(&on).enumerate() {
        assert_eq!(a.shape(), b.shape());
        for (k, (va, vb)) in a.data().iter().zip(b.data()).enumerate() {
            assert_eq!(
                va.to_bits(),
                vb.to_bits(),
                "row {i} logit {k}: arming telemetry changed the response bits"
            );
        }
    }
}

/// Labeled traffic with deliberately wrong labels must surface as a
/// per-version misclassification rate in the wire `Telemetry` frame.
#[test]
fn telemetry_frame_reports_live_misclassification_rate() {
    let _guard = TELEMETRY_LOCK
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    let server = Server::start(registry_with("m", 23), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    deepmorph_telemetry::install(TelemetryConfig::default());
    // Learn the model's prediction for a row, then feed it back once
    // with the right label and three times with a wrong one: the rate
    // must land at exactly 3/4 for the serving version.
    let predicted = client.predict("m", &input_row(7)).unwrap().predictions[0];
    let wrong = (predicted + 1) % 10;
    client
        .predict_full("m", &input_row(7), false, &[predicted])
        .unwrap();
    for _ in 0..3 {
        client
            .predict_full("m", &input_row(7), false, &[wrong])
            .unwrap();
    }

    let report = client.telemetry().unwrap();
    deepmorph_telemetry::clear();
    server.shutdown();

    assert!(report.armed);
    let version = report
        .snapshot
        .versions
        .iter()
        .find(|v| v.labeled > 0)
        .expect("a version saw labeled traffic");
    assert!(
        !version.fingerprint.is_empty(),
        "stats keyed by fingerprint"
    );
    assert_eq!(version.labeled, 4);
    assert_eq!(version.misclassified, 3);
    assert!((version.misclassification_rate() - 0.75).abs() < 1e-9);
    assert!(version.requests >= 5, "all answered requests counted");
}
