//! Chaos tests: the serving stack under a deterministic fault storm.
//!
//! The contract under test is the one the whole PR exists for: with
//! transport faults (dropped/truncated/stalled/reset response frames)
//! and compute faults (worker panics, slow batches) injected at fixed
//! seeded rates, clients configured with retry **lose nothing and see
//! nothing wrong** — every request eventually gets a response that is
//! bitwise identical to the fault-free reference. Plus the supporting
//! machinery: rollback over the wire restores bitwise-previous serving,
//! deadlines shed late work with typed errors, the connection cap
//! rejects with a typed frame, and a panicked worker keeps serving.

use std::io::Read;
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Duration;

use deepmorph_faults::{Fault, FaultPlan};
use deepmorph_models::{build_model, ModelFamily, ModelHandle, ModelScale, ModelSpec};
use deepmorph_serve::prelude::*;
use deepmorph_serve::protocol;
use deepmorph_tensor::init::stream_rng;
use deepmorph_tensor::Tensor;

/// The fault plan is process-global; tests that install one serialize.
static FAULT_GUARD: Mutex<()> = Mutex::new(());

fn lenet(seed: u64) -> ModelHandle {
    let spec = ModelSpec::new(ModelFamily::LeNet, ModelScale::Tiny, [1, 16, 16], 10);
    build_model(&spec, &mut stream_rng(seed, "chaos-test")).unwrap()
}

fn registry_with(name: &str, seed: u64) -> ModelRegistry {
    let mut registry = ModelRegistry::new();
    registry.register(name, &mut lenet(seed), None).unwrap();
    registry
}

/// Deterministic distinct input rows.
fn rows(n: usize, salt: u64) -> Tensor {
    let data = (0..n * 256)
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(salt);
            ((h >> 40) as f32 / (1u64 << 24) as f32).fract()
        })
        .collect();
    Tensor::from_vec(data, &[n, 1, 16, 16]).unwrap()
}

fn row(all: &Tensor, i: usize) -> Tensor {
    Tensor::from_vec(all.data()[i * 256..(i + 1) * 256].to_vec(), &[1, 1, 16, 16]).unwrap()
}

#[test]
fn predict_storm_under_faults_loses_nothing_and_corrupts_nothing() {
    let _guard = FAULT_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    let model_seed = 50u64;
    let server = Server::start(
        registry_with("m", model_seed),
        ServerConfig {
            batch: BatchConfig {
                workers: 2,
                ..BatchConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Fault-free reference: the bitwise answer every retry must converge
    // to, computed locally from the same model seed before the storm
    // starts (ModelHandle is not Send, tensors are).
    let mut reference = lenet(model_seed);
    let clients = 4usize;
    let per_client = 12usize;
    let expected: Vec<Vec<Tensor>> = (0..clients)
        .map(|c| {
            let inputs = rows(per_client, 1000 + c as u64);
            (0..per_client)
                .map(|i| {
                    reference
                        .graph
                        .forward_inference(&row(&inputs, i))
                        .expect("reference forward")
                })
                .collect()
        })
        .collect();

    deepmorph_faults::install(
        FaultPlan::new(0xC4A05)
            .with(Fault::NetDropFrame, 0.12)
            .with(Fault::NetPartialFrame, 0.08)
            .with(Fault::NetStallFrame, 0.05)
            .with(Fault::NetResetFrame, 0.05)
            .with(Fault::ComputePanic, 0.06)
            .with(Fault::ComputeSlowBatch, 0.05)
            .with_stall(Duration::from_millis(30))
            .with_slow(Duration::from_millis(10)),
    );

    let outcome = std::thread::scope(|scope| {
        let handles: Vec<_> = expected
            .iter()
            .enumerate()
            .map(|(c, expected)| {
                scope.spawn(move || {
                    let mut client = Client::connect_with(
                        addr,
                        ClientConfig {
                            // Short enough that a dropped response frame
                            // costs one timeout, not the test budget.
                            response_timeout: Duration::from_millis(750),
                            retry: RetryPolicy {
                                max_attempts: 25,
                                base_backoff: Duration::from_millis(2),
                                max_backoff: Duration::from_millis(40),
                                jitter_seed: c as u64,
                            },
                        },
                    )
                    .expect("connect");
                    let inputs = rows(per_client, 1000 + c as u64);
                    let mut mismatches = Vec::new();
                    for (i, expect) in expected.iter().enumerate() {
                        let input = row(&inputs, i);
                        let response = client
                            .predict_full("m", &input, true, &[])
                            .unwrap_or_else(|e| panic!("client {c} lost request {i}: {e}"));
                        let got = response.logits.expect("asked for logits");
                        let bitwise_equal = expect.shape() == got.shape()
                            && expect
                                .data()
                                .iter()
                                .zip(got.data())
                                .all(|(a, b)| a.to_bits() == b.to_bits());
                        if !bitwise_equal {
                            mismatches.push(i);
                        }
                    }
                    mismatches
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join()).collect::<Vec<_>>()
    });
    // Capture the injection report before clear() resets it.
    let report = deepmorph_faults::report();
    deepmorph_faults::clear();

    // Zero lost: a panicking client thread above IS a lost response.
    let mut corrupted = 0usize;
    for result in outcome {
        let mismatches = result.expect("a client thread lost a request");
        corrupted += mismatches.len();
    }
    assert_eq!(corrupted, 0, "responses diverged from the reference");

    // The storm actually stormed: injected faults visible in the report
    // and in the server counters.
    let injected: u64 = report.iter().map(|c| c.injected).sum();
    assert!(injected > 0, "the fault plan never fired: {report:?}");

    let stats = server.stats();
    assert_eq!(
        stats.requests,
        stats.requests.max((clients * per_client) as u64),
        "retries can only add requests beyond the logical count"
    );
    server.shutdown();
}

#[test]
fn worker_panic_is_contained_and_the_pool_keeps_serving() {
    let _guard = FAULT_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    let server = Server::start(registry_with("m", 51), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let input = rows(1, 7);

    // Every batch panics: the client sees a typed internal error, never
    // a hung socket or a dead server.
    deepmorph_faults::install(FaultPlan::new(3).with(Fault::ComputePanic, 1.0));
    match client.predict("m", &input) {
        Err(ServeError::Remote { code, message }) => {
            assert_eq!(code, ErrorCode::Internal);
            assert!(message.contains("panicked"), "message: {message}");
        }
        other => panic!("expected a typed panic-containment error, got {other:?}"),
    }
    deepmorph_faults::clear();

    // The storm over, the same connection and the same worker pool serve.
    let response = client.predict("m", &input).expect("pool survived");
    assert_eq!(response.predictions.len(), 1);
    let stats = client.stats().unwrap();
    assert!(stats.worker_panics >= 1, "panic was counted: {stats:?}");
    server.shutdown();
}

#[test]
fn rollback_over_the_wire_restores_bitwise_previous_serving() {
    let registry = registry_with("m", 52);
    let id = registry.find("m").unwrap();
    registry.publish(id, &mut lenet(53), None).unwrap();
    let server = Server::start(registry, ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let input = rows(2, 9);

    // Serving v2 now.
    let versions = client.versions("m").unwrap();
    assert_eq!(versions.len(), 2);
    assert!(versions[1].active && versions[1].version == 2);
    let v1_fingerprint = versions[0].fingerprint.clone();

    let rolled = client.rollback("m").unwrap();
    assert_eq!(rolled.version, 1);
    assert_eq!(rolled.fingerprint, v1_fingerprint);

    // Responses now equal the v1 model, bitwise.
    let mut v1 = lenet(52);
    let expect = v1.graph.forward_inference(&input).unwrap();
    let got = client
        .predict_full("m", &input, true, &[])
        .unwrap()
        .logits
        .unwrap();
    for (a, b) in expect.data().iter().zip(got.data()) {
        assert_eq!(a.to_bits(), b.to_bits(), "rollback must restore bitwise");
    }

    // No previous version left: typed refusal, not a crash.
    assert!(matches!(
        client.rollback("m"),
        Err(ServeError::Remote {
            code: ErrorCode::BadInput,
            ..
        })
    ));
    let stats = client.stats().unwrap();
    assert_eq!(stats.rollbacks, 1);
    server.shutdown();
}

#[test]
fn expired_deadline_is_shed_with_a_typed_error() {
    let _guard = FAULT_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    let server = Server::start(
        registry_with("m", 54),
        ServerConfig {
            batch: BatchConfig {
                workers: 1,
                ..BatchConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let input = rows(1, 3);

    // Stall the single worker long past the deadline budget: the job is
    // queued, its budget expires, and the shed happens *before* compute.
    deepmorph_faults::install(
        FaultPlan::new(5)
            .with(Fault::ComputeSlowBatch, 1.0)
            .with_slow(Duration::from_millis(300)),
    );
    let result = client.predict_within("m", &input, Duration::from_millis(60));
    deepmorph_faults::clear();
    match result {
        Err(ServeError::Remote { code, .. }) => assert_eq!(code, ErrorCode::Expired),
        // The client may instead time out locally waiting; both are
        // correct deadline behavior, but the typed path is the common
        // one (the stall delays the response past the budget).
        Err(ServeError::Io { .. }) => {}
        other => panic!("expected expiry, got {other:?}"),
    }

    // An achievable budget succeeds.
    let ok = client
        .predict_within("m", &input, Duration::from_secs(30))
        .expect("clean predict within budget");
    assert_eq!(ok.predictions.len(), 1);
    server.shutdown();
}

#[test]
fn connections_beyond_the_cap_get_a_typed_overloaded_frame() {
    let server = Server::start(
        registry_with("m", 55),
        ServerConfig {
            max_connections: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Fill the only slot with a live connection.
    let mut first = Client::connect(addr).unwrap();
    assert_eq!(first.ping().unwrap(), 1);

    // The next connection is admitted at the TCP level but answered with
    // one typed overloaded frame and closed.
    let mut rejected = TcpStream::connect(addr).unwrap();
    rejected
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut prefix = [0u8; 4];
    rejected.read_exact(&mut prefix).unwrap();
    let mut frame = vec![0u8; u32::from_le_bytes(prefix) as usize];
    rejected.read_exact(&mut frame).unwrap();
    let (id, response) = protocol::decode_response(&frame).unwrap();
    assert_eq!(id, 0);
    match response {
        protocol::Response::Error(e) => {
            assert_eq!(e.code, ErrorCode::Overloaded);
            assert!(e.message.contains("connection limit"), "{}", e.message);
        }
        other => panic!("expected an overloaded frame, got {other:?}"),
    }
    assert_eq!(rejected.read(&mut prefix).unwrap_or(0), 0, "then closed");
    drop(rejected);

    // The admitted connection is unaffected, and once it closes the slot
    // frees for new clients.
    assert_eq!(first.ping().unwrap(), 1);
    let stats = first.stats().unwrap();
    assert!(stats.conn_rejections >= 1);
    drop(first);
    for _ in 0..50 {
        // The server reaps finished connection threads at accept time;
        // retry until the slot frees.
        if let Ok(mut c) = Client::connect(addr) {
            if c.ping().is_ok() {
                server.shutdown();
                return;
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("connection slot never freed after the first client left");
}
