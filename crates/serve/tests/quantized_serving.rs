//! End-to-end tests of quantized serving replicas.
//!
//! Pinned guarantees:
//!
//! * **default serving is the bitwise f32 reference** — until an operator
//!   promotes a quantized mode, responses equal the saved model exactly;
//! * **promotion is gated on the held-out set** — the quantized replica
//!   must not lose accuracy against the f32 serving model, exactly like
//!   a repair hot-swap, and the decision is reported either way;
//! * **promotion changes serving only** — the version chain is untouched
//!   (same version, same fingerprint, no history entry) and predict
//!   traffic keeps flowing while workers rebuild replicas;
//! * **demotion restores the reference** — promoting back to f32 makes
//!   responses bitwise identical to the pre-promotion ones;
//! * **a model without a provenance sidecar cannot be promoted** — there
//!   is no held-out set to gate on, so the request is a typed refusal.

use deepmorph::prelude::{DatasetKind, ModelFamily, Scenario, StagedEngine, TrainConfig};
use deepmorph_models::save_model;
use deepmorph_serve::prelude::*;
use deepmorph_tensor::Tensor;

fn train_config() -> TrainConfig {
    TrainConfig {
        epochs: 6,
        batch_size: 32,
        learning_rate: 0.05,
        lr_decay: 0.9,
        ..TrainConfig::default()
    }
}

/// A healthy (defect-free) scenario: high held-out accuracy, so the
/// quantized replica has the best possible shot at matching the f32
/// model sample-for-sample. Everything is seeded — the gate's decision
/// is deterministic.
fn healthy_scenario() -> Scenario {
    Scenario::builder(ModelFamily::LeNet, DatasetKind::Digits)
        .seed(7)
        .train_per_class(80)
        .test_per_class(25)
        .train_config(train_config())
        .build()
        .unwrap()
}

/// Deterministic distinct probe rows (same construction as the repair
/// tests).
fn probe_rows(n: usize) -> Tensor {
    let data = (0..n * 256)
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(3);
            ((h >> 40) as f32 / (1u64 << 24) as f32).fract()
        })
        .collect();
    Tensor::from_vec(data, &[n, 1, 16, 16]).unwrap()
}

fn bits_of(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn quantized_promotion_is_gated_and_reversible() {
    let dir = std::env::temp_dir().join(format!("deepmorph-serve-quant-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let scenario = healthy_scenario();
    let trained = StagedEngine::ephemeral().trained(&scenario).unwrap();
    let mut model = trained.instantiate().unwrap();
    save_model(dir.join("digits.dmmd"), &mut model).unwrap();
    let ctx = DiagnosisContext::new(DatasetKind::Digits, 7, 80)
        .with_test_per_class(25)
        .with_train_config(train_config());
    std::fs::write(dir.join("digits.meta.json"), ctx.to_json()).unwrap();

    let server =
        Server::start(ModelRegistry::open(&dir).unwrap(), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Default serving is the bitwise f32 reference.
    let rows = probe_rows(6);
    let f32_bits = bits_of(&model.graph.forward_inference(&rows).unwrap());
    let served = client.predict_full("digits", &rows, true, &[]).unwrap();
    assert_eq!(
        bits_of(&served.logits.unwrap()),
        f32_bits,
        "default serving must be bitwise-identical to the saved model"
    );

    // Promote to i8. The healthy model is deterministic and accurate, so
    // the quantized replica matches it on the held-out set and the gate
    // passes; the response reports both accuracies either way.
    let promoted = server.promote_quantized("digits", Precision::I8).unwrap();
    assert!(
        promoted.promoted,
        "i8 must clear the gate on the healthy fixture: f32 {:.3} vs quantized {:.3}",
        promoted.accuracy_f32, promoted.accuracy_quantized
    );
    assert!(promoted.accuracy_quantized >= promoted.accuracy_f32);
    assert!(promoted.accuracy_f32 > 0.8, "fixture should train well");
    assert_eq!(promoted.precision, Precision::I8);
    assert_eq!(promoted.version, 1, "promotion must not mint a version");

    // The version chain is untouched — same single version, still active,
    // same fingerprint — but serving responses now come off the integer
    // kernel and differ from the f32 reference.
    let versions = client.versions("digits").unwrap();
    assert_eq!(versions.len(), 1);
    assert!(versions[0].active);
    assert_eq!(versions[0].fingerprint, promoted.fingerprint);
    let quant = client.predict_full("digits", &rows, true, &[]).unwrap();
    let quant_bits = bits_of(&quant.logits.unwrap());
    assert_ne!(
        quant_bits, f32_bits,
        "i8 serving must actually run the quantized kernel"
    );
    assert_eq!(client.stats().unwrap().swaps, 1);

    // Promotion is idempotent in effect: repeating it re-gates against
    // the same entry and serving stays quantized.
    let again = server.promote_quantized("digits", Precision::I8).unwrap();
    assert!(again.promoted);

    // Demotion back to f32 is ungated and restores the bitwise reference.
    let demoted = server.promote_quantized("digits", Precision::F32).unwrap();
    assert!(demoted.promoted);
    let restored = client.predict_full("digits", &rows, true, &[]).unwrap();
    assert_eq!(
        bits_of(&restored.logits.unwrap()),
        f32_bits,
        "demotion must restore bitwise-reference serving"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn promotion_without_provenance_is_refused() {
    let spec = deepmorph_models::ModelSpec::new(
        ModelFamily::LeNet,
        deepmorph_models::ModelScale::Tiny,
        [1, 16, 16],
        10,
    );
    let mut model =
        deepmorph_models::build_model(&spec, &mut deepmorph_tensor::init::stream_rng(5, "q"))
            .unwrap();
    let mut registry = ModelRegistry::new();
    registry.register("m", &mut model, None).unwrap();
    let server = Server::start(registry, ServerConfig::default()).unwrap();

    assert!(matches!(
        server.promote_quantized("nope", Precision::I8),
        Err(ServeError::UnknownModel { .. })
    ));
    // No sidecar: there is no held-out set to gate the promotion on.
    assert!(matches!(
        server.promote_quantized("m", Precision::I8),
        Err(ServeError::Diagnosis { .. })
    ));
    // Demotion to f32 needs no gate and therefore no sidecar.
    let demoted = server.promote_quantized("m", Precision::F32).unwrap();
    assert!(demoted.promoted);
    server.shutdown();
}
