//! End-to-end tests of the serving layer.
//!
//! The load-bearing guarantees pinned here:
//!
//! * **batching is invisible**: responses produced by a coalesced batch
//!   are bitwise identical to solo (max-batch = 1) responses, at both
//!   the scheduler and the TCP level;
//! * **the server never dies on client bytes**: garbage, truncated, and
//!   oversized frames produce typed error frames (or a clean connection
//!   drop) and later clients still get service;
//! * **the diagnose endpoint works live**: labeled misclassified
//!   traffic accumulates and yields a well-formed `DefectReport`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use deepmorph::prelude::DefectReport;
use deepmorph_data::{DataGenerator, DatasetKind, SynthDigits};
use deepmorph_models::{build_model, save_model, ModelFamily, ModelHandle, ModelScale, ModelSpec};
use deepmorph_serve::prelude::*;
use deepmorph_serve::protocol;
use deepmorph_tensor::init::stream_rng;
use deepmorph_tensor::Tensor;

fn lenet(seed: u64) -> ModelHandle {
    let spec = ModelSpec::new(ModelFamily::LeNet, ModelScale::Tiny, [1, 16, 16], 10);
    build_model(&spec, &mut stream_rng(seed, "serve-test")).unwrap()
}

fn registry_with(name: &str, seed: u64) -> ModelRegistry {
    let mut registry = ModelRegistry::new();
    registry.register(name, &mut lenet(seed), None).unwrap();
    registry
}

/// Deterministic input rows (each distinct).
fn rows(n: usize, salt: u64) -> Tensor {
    let data = (0..n * 256)
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(salt);
            ((h >> 40) as f32 / (1u64 << 24) as f32).fract()
        })
        .collect();
    Tensor::from_vec(data, &[n, 1, 16, 16]).unwrap()
}

fn row(all: &Tensor, i: usize) -> Tensor {
    Tensor::from_vec(all.data()[i * 256..(i + 1) * 256].to_vec(), &[1, 1, 16, 16]).unwrap()
}

// ---------------------------------------------------------------------
// Scheduler level: coalescing is deterministic and bitwise invisible
// ---------------------------------------------------------------------

#[test]
fn scheduler_batched_outputs_equal_solo_outputs_bitwise() {
    let registry = Arc::new(registry_with("m", 5));
    let m = registry.find("m").unwrap();
    let stats = Arc::new(ServeStats::default());
    let n = 8;
    let inputs = rows(n, 99);

    // Solo reference: max_batch = 1 forces one forward per request.
    let solo = Scheduler::new(
        Arc::clone(&registry),
        BatchConfig {
            max_batch: 1,
            workers: 1,
            ..BatchConfig::default()
        },
        Arc::new(ServeStats::default()),
    );
    let solo_logits: Vec<Tensor> = (0..n)
        .map(|i| {
            let rx = solo.submit_rows(m, row(&inputs, i), true).unwrap();
            rx.recv().unwrap().unwrap().logits.unwrap()
        })
        .collect();
    solo.shutdown();

    // Batched: one worker, a wait long enough that all n single-row
    // requests land in its window. The worker pops the first request,
    // then waits for stragglers; every later submission folds in, so
    // this coalesces deterministically.
    let batched = Scheduler::new(
        Arc::clone(&registry),
        BatchConfig {
            max_batch: n,
            max_wait: Duration::from_millis(500),
            workers: 1,
            ..BatchConfig::default()
        },
        Arc::clone(&stats),
    );
    let receivers: Vec<_> = (0..n)
        .map(|i| batched.submit_rows(m, row(&inputs, i), true).unwrap())
        .collect();
    let batched_logits: Vec<Tensor> = receivers
        .into_iter()
        .map(|rx| rx.recv().unwrap().unwrap().logits.unwrap())
        .collect();
    batched.shutdown();

    let snapshot = stats.snapshot();
    assert_eq!(snapshot.rows, n as u64);
    assert!(
        snapshot.coalesced_batches >= 1,
        "expected at least one coalesced batch, got {snapshot:?}"
    );
    assert!(
        snapshot.batches < n as u64,
        "batching dispatched one forward per request: {snapshot:?}"
    );

    for (i, (a, b)) in solo_logits.iter().zip(&batched_logits).enumerate() {
        assert_eq!(a.shape(), b.shape());
        for (va, vb) in a.data().iter().zip(b.data()) {
            assert_eq!(
                va.to_bits(),
                vb.to_bits(),
                "row {i}: batched logits diverged from solo"
            );
        }
    }
}

#[test]
fn scheduler_rejects_bad_input_and_fills_up() {
    let registry = Arc::new(registry_with("m", 6));
    let m = registry.find("m").unwrap();
    let scheduler = Scheduler::new(
        Arc::clone(&registry),
        BatchConfig {
            workers: 1,
            ..BatchConfig::default()
        },
        Arc::new(ServeStats::default()),
    );
    // Wrong shape.
    assert!(matches!(
        scheduler.submit_rows(m, Tensor::zeros(&[1, 3, 16, 16]), false),
        Err(ServeError::BadInput { .. })
    ));
    // Wrong rank.
    assert!(matches!(
        scheduler.submit_rows(m, Tensor::zeros(&[256]), false),
        Err(ServeError::BadInput { .. })
    ));
    // Empty batch.
    assert!(matches!(
        scheduler.submit_rows(m, Tensor::zeros(&[0, 1, 16, 16]), false),
        Err(ServeError::BadInput { .. })
    ));
    scheduler.shutdown();
    assert!(matches!(
        scheduler.submit_rows(m, Tensor::zeros(&[1, 1, 16, 16]), false),
        Err(ServeError::ShuttingDown)
    ));
}

// ---------------------------------------------------------------------
// TCP level
// ---------------------------------------------------------------------

#[test]
fn tcp_round_trip_predict_listing_stats() {
    let server = Server::start(registry_with("lenet", 7), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    assert_eq!(client.ping().unwrap(), 1);
    let models = client.models().unwrap();
    assert_eq!(models.len(), 1);
    assert_eq!(models[0].name, "lenet");
    assert_eq!(models[0].input_shape, [1, 16, 16]);
    assert_eq!(models[0].fingerprint.len(), 32);
    assert!(models[0].param_count > 100);

    let inputs = rows(4, 3);
    let response = client.predict_full("lenet", &inputs, true, &[]).unwrap();
    assert_eq!(response.predictions.len(), 4);
    let logits = response.logits.unwrap();
    assert_eq!(logits.shape(), &[4, 10]);
    // Served predictions equal a local eval forward, bitwise.
    let mut local = lenet(7);
    let expect = local.graph.forward_inference(&inputs).unwrap();
    for (a, b) in expect.data().iter().zip(logits.data()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }

    // Typed remote errors.
    assert!(matches!(
        client.predict("nope", &inputs),
        Err(ServeError::Remote {
            code: ErrorCode::UnknownModel,
            ..
        })
    ));
    assert!(matches!(
        client.predict("lenet", &Tensor::zeros(&[1, 3, 16, 16])),
        Err(ServeError::Remote {
            code: ErrorCode::BadInput,
            ..
        })
    ));
    assert!(matches!(
        client.predict_full("lenet", &row(&inputs, 0), false, &[1, 2]),
        Err(ServeError::Remote {
            code: ErrorCode::BadInput,
            ..
        })
    ));

    let stats = client.stats().unwrap();
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.rows, 4);
    assert!(stats.errors >= 3);
    server.shutdown();
}

#[test]
fn tcp_batched_responses_equal_solo_responses_bitwise() {
    let n = 6;
    let inputs = rows(n, 17);

    // Solo server: batching disabled.
    let solo_server = Server::start(
        registry_with("m", 11),
        ServerConfig {
            batch: BatchConfig {
                max_batch: 1,
                workers: 1,
                ..BatchConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut solo_client = Client::connect(solo_server.local_addr()).unwrap();
    let solo: Vec<Tensor> = (0..n)
        .map(|i| {
            solo_client
                .predict_full("m", &row(&inputs, i), true, &[])
                .unwrap()
                .logits
                .unwrap()
        })
        .collect();
    solo_server.shutdown();

    // Batched server under concurrent clients.
    let batched_server = Server::start(
        registry_with("m", 11),
        ServerConfig {
            batch: BatchConfig {
                max_batch: n,
                max_wait: Duration::from_millis(50),
                workers: 2,
                ..BatchConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = batched_server.local_addr();
    let results: Vec<Tensor> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let input = row(&inputs, i);
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    client
                        .predict_full("m", &input, true, &[])
                        .unwrap()
                        .logits
                        .unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    batched_server.shutdown();

    for (i, (a, b)) in solo.iter().zip(&results).enumerate() {
        for (va, vb) in a.data().iter().zip(b.data()) {
            assert_eq!(
                va.to_bits(),
                vb.to_bits(),
                "row {i}: TCP batched response diverged from solo"
            );
        }
    }
}

#[test]
fn malformed_frames_never_kill_the_server() {
    let server = Server::start(registry_with("m", 13), ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // 1. Pure garbage bytes with a plausible length prefix: the frame
    //    reads but fails container validation → typed error frame.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        let junk = [0xDEu8; 64];
        raw.write_all(&(junk.len() as u32).to_le_bytes()).unwrap();
        raw.write_all(&junk).unwrap();
        let mut prefix = [0u8; 4];
        raw.read_exact(&mut prefix).unwrap();
        let mut frame = vec![0u8; u32::from_le_bytes(prefix) as usize];
        raw.read_exact(&mut frame).unwrap();
        let (id, response) = protocol::decode_response(&frame).unwrap();
        assert_eq!(id, 0);
        match response {
            protocol::Response::Error(e) => assert_eq!(e.code, ErrorCode::Protocol),
            other => panic!("expected error frame, got {other:?}"),
        }
    }

    // 2. Oversized length claim → error frame, connection closed.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
        let mut prefix = [0u8; 4];
        raw.read_exact(&mut prefix).unwrap();
        let mut frame = vec![0u8; u32::from_le_bytes(prefix) as usize];
        raw.read_exact(&mut frame).unwrap();
        let (_, response) = protocol::decode_response(&frame).unwrap();
        assert!(matches!(response, protocol::Response::Error(_)));
        // The server hangs up after a framing violation.
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        assert_eq!(raw.read(&mut prefix).unwrap_or(0), 0);
    }

    // 3. Truncated frame then disconnect: server must just drop it.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(&100u32.to_le_bytes()).unwrap();
        raw.write_all(&[1, 2, 3]).unwrap();
        drop(raw);
    }

    // 4. A bad frame then a good one on the SAME connection: framing was
    //    honored, so the server keeps serving the connection.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        let junk = [7u8; 32];
        raw.write_all(&(junk.len() as u32).to_le_bytes()).unwrap();
        raw.write_all(&junk).unwrap();
        let mut prefix = [0u8; 4];
        raw.read_exact(&mut prefix).unwrap();
        let mut frame = vec![0u8; u32::from_le_bytes(prefix) as usize];
        raw.read_exact(&mut frame).unwrap();
        assert!(matches!(
            protocol::decode_response(&frame).unwrap().1,
            protocol::Response::Error(_)
        ));
        raw.write_all(&protocol::encode_request(9, &protocol::Request::Ping))
            .unwrap();
        raw.read_exact(&mut prefix).unwrap();
        let mut frame = vec![0u8; u32::from_le_bytes(prefix) as usize];
        raw.read_exact(&mut frame).unwrap();
        let (id, response) = protocol::decode_response(&frame).unwrap();
        assert_eq!(id, 9);
        assert!(matches!(response, protocol::Response::Pong { .. }));
    }

    // After all the abuse, a fresh well-behaved client still gets
    // service.
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.ping().unwrap(), 1);
    let out = client.predict("m", &rows(2, 1)).unwrap();
    assert_eq!(out.predictions.len(), 2);
    server.shutdown();
}

// ---------------------------------------------------------------------
// Registry from disk + live diagnosis
// ---------------------------------------------------------------------

#[test]
fn registry_dir_round_trip_and_live_diagnosis() {
    let dir = std::env::temp_dir().join(format!("deepmorph-serve-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // An *untrained* model misclassifies plenty — exactly what the
    // diagnosis path needs to exercise.
    let seed = 21u64;
    let mut model = lenet(seed);
    save_model(dir.join("digits.dmmd"), &mut model).unwrap();
    let ctx = DiagnosisContext::new(DatasetKind::Digits, seed, 12);
    std::fs::write(dir.join("digits.meta.json"), ctx.to_json()).unwrap();

    let registry = ModelRegistry::open(&dir).unwrap();
    assert_eq!(registry.len(), 1);
    let id = registry.find("digits").unwrap();
    assert_eq!(registry.current(id).diagnosis, Some(ctx));
    assert_eq!(registry.current(id).version, 1);

    let server = Server::start(
        registry,
        ServerConfig {
            deepmorph: deepmorph::pipeline::DeepMorphConfig {
                probe: deepmorph::instrument::ProbeTrainingConfig {
                    epochs: 4,
                    ..Default::default()
                },
                max_faulty_cases: 32,
                ..Default::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Diagnosis before any traffic: typed refusal, not a crash.
    assert!(matches!(
        client.diagnose("digits"),
        Err(ServeError::Remote {
            code: ErrorCode::Diagnosis,
            ..
        })
    ));

    // Send labeled traffic drawn from the model's own dataset family.
    let mut rng = stream_rng(77, "serve-test-traffic");
    let traffic = SynthDigits::new().generate(6, &mut rng);
    let response = client
        .predict_full("digits", traffic.images(), false, traffic.labels())
        .unwrap();
    assert_eq!(response.predictions.len(), traffic.len());

    let diagnosis = client.diagnose("digits").unwrap();
    assert!(diagnosis.cases > 0, "untrained model should misclassify");
    let report = DefectReport::from_json(&diagnosis.report_json).unwrap();
    assert_eq!(report.num_cases as u64, diagnosis.cases);
    let ratio_sum: f32 = report.ratios.as_array().iter().sum();
    assert!((ratio_sum - 1.0).abs() < 1e-4, "ratios sum to {ratio_sum}");
    assert!(report.subject.contains("digits@"));

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
