//! End-to-end tests of the online diagnose → repair → hot-swap loop.
//!
//! The load-bearing guarantees pinned here:
//!
//! * **the loop closes online**: a defect-injected scenario served live is
//!   diagnosed from its accumulated traffic, repaired, and hot-swapped,
//!   and the repaired version measurably improves held-out accuracy;
//! * **swaps are invisible to predict traffic**: a concurrent predict
//!   load sees zero errored requests, every response is bitwise identical
//!   to either the old or the new version (never a mixture), and every
//!   response that completed before the repair began equals the old
//!   version exactly;
//! * **diagnosis is memoized per version**: a second diagnose of an
//!   unchanged model trains no probes, and a swap invalidates both the
//!   session and the accumulated traffic;
//! * **versions persist**: a restarted registry resumes the repaired
//!   chain.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use deepmorph::pipeline::DeepMorphConfig;
use deepmorph::prelude::{
    DatasetKind, DefectKind, DefectReport, DefectSpec, ModelFamily, Scenario, StagedEngine,
    TrainConfig,
};
use deepmorph_models::save_model;
use deepmorph_serve::prelude::*;
use deepmorph_tensor::Tensor;

/// The defect scenario under repair: mirrors `tests/repair.rs`'s ITD
/// case, whose offline repair is known to restore > 0.1 accuracy.
fn itd_scenario() -> Scenario {
    Scenario::builder(ModelFamily::LeNet, DatasetKind::Digits)
        .seed(7)
        .train_per_class(80)
        .test_per_class(25)
        .train_config(train_config())
        .inject(itd_defect())
        .build()
        .unwrap()
}

fn train_config() -> TrainConfig {
    TrainConfig {
        epochs: 6,
        batch_size: 32,
        learning_rate: 0.05,
        lr_decay: 0.9,
        ..TrainConfig::default()
    }
}

fn itd_defect() -> DefectSpec {
    DefectSpec::insufficient_training_data(vec![0, 1, 2], 0.98)
}

/// Deterministic distinct probe rows the load generator replays.
fn probe_rows(n: usize) -> Tensor {
    let data = (0..n * 256)
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(3);
            ((h >> 40) as f32 / (1u64 << 24) as f32).fract()
        })
        .collect();
    Tensor::from_vec(data, &[n, 1, 16, 16]).unwrap()
}

fn bits_of(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn served_defect_is_diagnosed_repaired_and_hot_swapped_under_load() {
    let dir = std::env::temp_dir().join(format!("deepmorph-repair-online-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // -- Produce the defective deployment offline -----------------------
    let scenario = itd_scenario();
    let trained = StagedEngine::ephemeral().trained(&scenario).unwrap();
    let mut model = trained.instantiate().unwrap();
    save_model(dir.join("digits.dmmd"), &mut model).unwrap();
    let ctx = DiagnosisContext::new(DatasetKind::Digits, 7, 80)
        .with_test_per_class(25)
        .with_defect(itd_defect())
        .with_train_config(train_config());
    std::fs::write(dir.join("digits.meta.json"), ctx.to_json()).unwrap();

    let registry = ModelRegistry::open(&dir).unwrap();
    let server = Server::start(
        registry,
        ServerConfig {
            deepmorph: DeepMorphConfig {
                max_faulty_cases: 200,
                ..DeepMorphConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Reference logits of the defective version.
    let rows = probe_rows(6);
    let old_bits = bits_of(&model.graph.forward_inference(&rows).unwrap());

    // -- Concurrent predict load across the whole loop ------------------
    let stop = Arc::new(AtomicBool::new(false));
    let loaders: Vec<_> = (0..2)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let rows = rows.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut responses: Vec<(Instant, Vec<u32>)> = Vec::new();
                while !stop.load(Ordering::Acquire) {
                    // Any error here is a dropped/failed request: the test
                    // panics on unwrap, which is exactly the assertion.
                    let response = client.predict_full("digits", &rows, true, &[]).unwrap();
                    responses.push((Instant::now(), bits_of(&response.logits.unwrap())));
                }
                responses
            })
        })
        .collect();

    let mut client = Client::connect(addr).unwrap();

    // -- Accumulate labeled traffic and diagnose ------------------------
    let (_, test) = scenario.injected_data().unwrap();
    client
        .predict_full("digits", test.images(), false, test.labels())
        .unwrap();

    let diagnosis = client.diagnose("digits").unwrap();
    let report = DefectReport::from_json(&diagnosis.report_json).unwrap();
    assert_eq!(
        report.dominant(),
        Some(DefectKind::InsufficientTrainingData),
        "live traffic must reproduce the offline ITD diagnosis: {report}"
    );
    assert!(report.subject.contains("digits@v1"));

    // Memoization: the second diagnose of the unchanged model must not
    // train probes again.
    let diagnosis2 = client.diagnose("digits").unwrap();
    assert_eq!(diagnosis2.cases, diagnosis.cases);
    let stats = client.stats().unwrap();
    assert_eq!(stats.diagnoses, 2);
    assert_eq!(
        stats.probe_trainings, 1,
        "a second diagnose of an unchanged model retrained probes"
    );

    // -- Repair + hot-swap ----------------------------------------------
    let repair_started = Instant::now();
    let repair = client.repair("digits").unwrap();
    assert!(repair.swapped, "gate rejected the repair: {repair:?}");
    assert!(
        repair.accuracy_after > repair.accuracy_before + 0.05,
        "repair should substantially improve held-out accuracy: {:.3} -> {:.3}",
        repair.accuracy_before,
        repair.accuracy_after
    );
    assert_eq!(repair.version, 2);
    assert!(repair.plan.contains("collect more training data"));
    assert!(repair.swap_micros > 0);

    // Reference logits of the repaired version (served, hence v2).
    let new_bits = bits_of(
        &client
            .predict_full("digits", &rows, true, &[])
            .unwrap()
            .logits
            .unwrap(),
    );
    assert_ne!(old_bits, new_bits, "repair must actually change the model");

    // -- Load must have seen exactly the two versions, atomically -------
    stop.store(true, Ordering::Release);
    let mut pre_swap = 0usize;
    let mut post_swap = 0usize;
    let mut during = 0usize;
    for loader in loaders {
        for (finished, bits) in loader.join().unwrap() {
            if bits == old_bits {
                pre_swap += 1;
            } else if bits == new_bits {
                post_swap += 1;
            } else {
                panic!("a response matched neither the old nor the new version bitwise");
            }
            if finished < repair_started {
                assert_eq!(
                    bits, old_bits,
                    "a pre-repair response diverged from the serving version"
                );
            } else {
                during += 1;
            }
        }
    }
    assert!(pre_swap > 0, "load generator never reached the old version");
    assert!(post_swap > 0, "load generator never saw the new version");
    assert!(
        during > 0,
        "predict traffic made no progress while the repair ran"
    );

    // -- Post-swap bookkeeping ------------------------------------------
    let versions = client.versions("digits").unwrap();
    assert_eq!(versions.len(), 2);
    assert!(!versions[0].active && versions[0].version == 1);
    assert!(versions[1].active && versions[1].version == 2);
    assert_eq!(versions[1].fingerprint, repair.fingerprint);
    let models = client.models().unwrap();
    assert_eq!(models[0].version, 2);
    assert_eq!(models[0].fingerprint, repair.fingerprint);

    // The swap cleared the pre-repair traffic: diagnosing the fresh
    // version without new labeled traffic is a typed refusal.
    assert!(matches!(
        client.diagnose("digits"),
        Err(ServeError::Remote {
            code: ErrorCode::Diagnosis,
            ..
        })
    ));

    // New labeled traffic against v2 diagnoses fine — and prepares a new
    // session (the old version's probes are invalid for it).
    client
        .predict_full("digits", test.images(), false, test.labels())
        .unwrap();
    let post = client.diagnose("digits").unwrap();
    assert!(post.cases > 0);
    let report = DefectReport::from_json(&post.report_json).unwrap();
    assert!(report.subject.contains("digits@v2"));
    let stats = client.stats().unwrap();
    assert_eq!(stats.probe_trainings, 2);
    assert_eq!(stats.repairs, 1);
    assert_eq!(stats.swaps, 1);
    assert_eq!(stats.errors, 1, "only the empty-buffer diagnose may error");

    server.shutdown();

    // -- Restart persistence --------------------------------------------
    let reopened = ModelRegistry::open(&dir).unwrap();
    let id = reopened.find("digits").unwrap();
    let current = reopened.current(id);
    assert_eq!(current.version, 2);
    assert_eq!(current.fingerprint, repair.fingerprint);
    assert_eq!(
        current.diagnosis.as_ref().map(|c| c.defect.clone()),
        Some(itd_defect()),
        "the published sidecar must carry the provenance forward"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The gate: a repaired model that cannot beat the serving version on
/// the held-out set must not be swapped. Forced deterministically: the
/// sidecar lies that the model was trained with a zero learning rate, so
/// the repair's retrain leaves the fresh model at its random
/// initialization — hopeless against the actually-trained serving
/// version.
#[test]
fn gate_keeps_the_serving_version_when_the_repair_is_worse() {
    let dir = std::env::temp_dir().join(format!("deepmorph-repair-gate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let scenario = itd_scenario();
    let trained = StagedEngine::ephemeral().trained(&scenario).unwrap();
    save_model(dir.join("digits.dmmd"), &mut trained.instantiate().unwrap()).unwrap();
    let ctx = DiagnosisContext::new(DatasetKind::Digits, 7, 80)
        .with_test_per_class(25)
        .with_defect(itd_defect())
        .with_train_config(TrainConfig {
            learning_rate: 0.0,
            ..train_config()
        });
    std::fs::write(dir.join("digits.meta.json"), ctx.to_json()).unwrap();

    let server =
        Server::start(ModelRegistry::open(&dir).unwrap(), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let (_, test) = scenario.injected_data().unwrap();
    client
        .predict_full("digits", test.images(), false, test.labels())
        .unwrap();
    let repair = client.repair("digits").unwrap();
    assert!(!repair.swapped, "an lr=0 retrain must lose the gate");
    assert!(repair.accuracy_after < repair.accuracy_before);
    assert_eq!(repair.version, 1, "the serving version must be untouched");
    assert_eq!(repair.swap_micros, 0);
    assert_eq!(client.versions("digits").unwrap().len(), 1);
    assert_eq!(client.stats().unwrap().swaps, 0);
    // The accumulated traffic survives a rejected repair: the next
    // diagnose still has its cases.
    assert!(client.diagnose("digits").unwrap().cases > 0);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Repairing an unknown model, or one with no accumulated traffic, is a
/// typed refusal — never a crash or a silent no-op.
#[test]
fn repair_refusals_are_typed() {
    let spec = deepmorph_models::ModelSpec::new(
        ModelFamily::LeNet,
        deepmorph_models::ModelScale::Tiny,
        [1, 16, 16],
        10,
    );
    let mut model =
        deepmorph_models::build_model(&spec, &mut deepmorph_tensor::init::stream_rng(5, "t"))
            .unwrap();
    let mut registry = ModelRegistry::new();
    registry
        .register(
            "m",
            &mut model,
            Some(DiagnosisContext::new(DatasetKind::Digits, 5, 12)),
        )
        .unwrap();
    let server = Server::start(registry, ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    assert!(matches!(
        client.repair("nope"),
        Err(ServeError::Remote {
            code: ErrorCode::UnknownModel,
            ..
        })
    ));
    // No labeled traffic accumulated: diagnosing inside the repair fails
    // with the same typed refusal the diagnose endpoint gives.
    assert!(matches!(
        client.repair("m"),
        Err(ServeError::Remote {
            code: ErrorCode::Diagnosis,
            ..
        })
    ));
    server.shutdown();
}
