//! Incremental framing and partial-I/O robustness.
//!
//! Two layers are pinned here:
//!
//! * **the frame assembler**: wire bytes split at *arbitrary* chunk
//!   boundaries (including mid-prefix, byte-at-a-time) reassemble to
//!   exactly the frames a whole-buffer reader would see; corrupt length
//!   prefixes yield a typed [`FramingError`] — sticky, never a panic,
//!   never a stuck state that silently swallows bytes;
//! * **the blocking client**: with deliberately tiny socket buffers,
//!   every request write and response read crosses the partial-I/O
//!   paths (short writes, short reads, `WouldBlock` ticks), and the
//!   answers stay bitwise identical to a local forward.

use std::time::Duration;

use proptest::prelude::*;

use deepmorph_models::{build_model, ModelFamily, ModelHandle, ModelScale, ModelSpec};
use deepmorph_serve::prelude::*;
use deepmorph_serve::protocol::{self, Request, MAX_FRAME_BYTES};
use deepmorph_serve::{FrameAssembler, FramingError};
use deepmorph_tensor::init::stream_rng;
use deepmorph_tensor::Tensor;

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

/// Feeds `wire` to a fresh assembler in one call and returns the frames.
fn assemble_whole(wire: &[u8]) -> Result<Vec<Vec<u8>>, FramingError> {
    let mut asm = FrameAssembler::for_protocol();
    let mut frames = Vec::new();
    asm.feed(wire, &mut frames)?;
    Ok(frames)
}

/// Feeds `wire` split at the given cut points (indices into `wire`,
/// deduplicated and sorted) and returns the frames.
fn assemble_split(wire: &[u8], cuts: &[usize]) -> Result<Vec<Vec<u8>>, FramingError> {
    let mut bounds: Vec<usize> = cuts.iter().map(|&c| c.min(wire.len())).collect();
    bounds.push(0);
    bounds.push(wire.len());
    bounds.sort_unstable();
    bounds.dedup();
    let mut asm = FrameAssembler::for_protocol();
    let mut frames = Vec::new();
    for pair in bounds.windows(2) {
        asm.feed(&wire[pair[0]..pair[1]], &mut frames)?;
    }
    Ok(frames)
}

/// A small pool of structurally distinct requests to frame.
fn request_pool() -> Vec<Request> {
    let rows = Tensor::from_vec(
        (0..2 * 256).map(|i| (i as f32 * 0.37).sin()).collect(),
        &[2, 1, 16, 16],
    )
    .unwrap();
    vec![
        Request::Ping,
        Request::ListModels,
        Request::Stats,
        Request::Diagnose { model: "m".into() },
        Request::ListVersions { model: "m".into() },
        Request::Predict(protocol::PredictRequest {
            model: "lenet".into(),
            rows,
            want_logits: true,
            true_labels: vec![3, 7],
            deadline_ms: 250,
        }),
    ]
}

// ---------------------------------------------------------------------
// Property: arbitrary splits are invisible
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A sequence of encoded requests, concatenated and split at
    /// arbitrary byte boundaries, reassembles to exactly the frames a
    /// single-shot feed produces — and each decodes to the original
    /// request id.
    #[test]
    fn arbitrary_splits_reassemble_identically(
        picks in proptest::collection::vec(0usize..6, 1..4),
        ids in proptest::collection::vec(1u64..u64::MAX, 3),
        cuts in proptest::collection::vec(0usize..200_000, 0..24),
    ) {
        let pool = request_pool();
        let mut wire = Vec::new();
        let mut want_ids = Vec::new();
        for (slot, &pick) in picks.iter().enumerate() {
            let id = ids[slot % ids.len()];
            wire.extend_from_slice(&protocol::encode_request(id, &pool[pick]));
            want_ids.push(id);
        }

        let whole = assemble_whole(&wire).unwrap();
        let split = assemble_split(&wire, &cuts).unwrap();
        prop_assert_eq!(&whole, &split, "chunk boundaries changed the frames");
        prop_assert_eq!(split.len(), picks.len());
        for (frame, want_id) in split.iter().zip(&want_ids) {
            let (id, _request) = protocol::decode_request(frame).unwrap();
            prop_assert_eq!(id, *want_id);
        }
    }

    /// Byte-at-a-time delivery (the worst case a socket can produce) is
    /// equivalent to one big read.
    #[test]
    fn byte_at_a_time_equals_single_feed(pick in 0usize..6, id in 1u64..u64::MAX) {
        let wire = protocol::encode_request(id, &request_pool()[pick]);
        let whole = assemble_whole(&wire).unwrap();

        let mut asm = FrameAssembler::for_protocol();
        let mut frames = Vec::new();
        for byte in &wire {
            asm.feed(std::slice::from_ref(byte), &mut frames).unwrap();
        }
        prop_assert!(!asm.mid_frame());
        prop_assert_eq!(frames, whole);
    }

    /// Garbage never panics or wedges: either the bytes happen to parse
    /// as frames (whose *decode* may then fail — that is the codec
    /// layer's problem) or the assembler reports a typed framing error,
    /// and once failed it stays failed.
    #[test]
    fn garbage_never_panics_and_errors_stick(
        junk in proptest::collection::vec(0u8..=255, 0..4096),
        cuts in proptest::collection::vec(0usize..4096, 0..16),
    ) {
        let whole = assemble_whole(&junk);
        let split = assemble_split(&junk, &cuts);
        match (whole, split) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(a), Err(b)) => prop_assert_eq!(a.reason, b.reason),
            (a, b) => prop_assert!(false, "split changed outcome: {a:?} vs {b:?}"),
        }
    }

    /// A length prefix claiming more than `MAX_FRAME_BYTES` is rejected
    /// with a typed error immediately — no allocation of the claimed
    /// size, no waiting for bytes that will never come — and the error
    /// is sticky across further feeds.
    #[test]
    fn oversized_claims_fail_fast_and_stick(
        extra in (MAX_FRAME_BYTES as u32 + 1)..u32::MAX,
        tail in proptest::collection::vec(0u8..=255, 0..64),
    ) {
        let mut asm = FrameAssembler::for_protocol();
        let mut frames = Vec::new();
        let err = asm
            .feed(&extra.to_le_bytes(), &mut frames)
            .expect_err("oversized claim must be rejected");
        prop_assert!(err.reason.contains("frame"), "untyped reason: {}", err.reason);
        let again = asm.feed(&tail, &mut frames).expect_err("error must stick");
        prop_assert_eq!(again.reason, err.reason);
        prop_assert!(frames.is_empty());
    }
}

// ---------------------------------------------------------------------
// Client partial-I/O regression: tiny socket buffers
// ---------------------------------------------------------------------

fn lenet(seed: u64) -> ModelHandle {
    let spec = ModelSpec::new(ModelFamily::LeNet, ModelScale::Tiny, [1, 16, 16], 10);
    build_model(&spec, &mut stream_rng(seed, "framing-test")).unwrap()
}

/// With 2 KiB socket buffers, a 256 KiB request cannot be written in
/// one syscall and a multi-KiB response cannot be read in one: every
/// call crosses the client's partial-write loop and deadline-based
/// short-read loop. The answers must still be bitwise identical to a
/// local forward.
#[test]
fn client_survives_tiny_socket_buffers_bitwise() {
    let mut registry = ModelRegistry::new();
    registry.register("lenet", &mut lenet(41), None).unwrap();
    let server = Server::start(registry, ServerConfig::default()).unwrap();

    let mut local = lenet(41);
    let config = ClientConfig {
        response_timeout: Duration::from_secs(60),
        ..ClientConfig::default()
    };
    let mut client = Client::connect_with(server.local_addr(), config).unwrap();
    deepmorph_net::set_socket_buffers(client.socket(), 2048, 2048).unwrap();

    let n = 64;
    for round in 0..3u64 {
        let data: Vec<f32> = (0..n * 256)
            .map(|i| {
                let h = (i as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(round);
                ((h >> 40) as f32 / (1u64 << 24) as f32).fract()
            })
            .collect();
        let rows = Tensor::from_vec(data, &[n, 1, 16, 16]).unwrap();
        let response = client.predict_full("lenet", &rows, true, &[]).unwrap();
        let logits = response.logits.expect("want_logits was set");
        assert_eq!(logits.shape(), &[n, 10]);
        let expect = local.graph.forward_inference(&rows).unwrap();
        for (i, (a, b)) in expect.data().iter().zip(logits.data()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "logit {i} diverged under tiny socket buffers (round {round})"
            );
        }
        assert_eq!(response.predictions.len(), n);
    }
    server.shutdown();
}
