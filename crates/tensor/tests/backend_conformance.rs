//! Backend conformance suite.
//!
//! Three layers of guarantees, in decreasing strictness:
//!
//! 1. **The scalar backend is bitwise-pinned.** FNV-1a digests of its
//!    outputs on fixed inputs are asserted against constants recorded
//!    when the backend seam landed — any accidental change to the
//!    reference kernels (accumulation order, zero-skip contract,
//!    blocking) breaks these tests, not just downstream fingerprints.
//! 2. **The scalar backend is the `Tensor` product.** Property tests pin
//!    `Backend::gemm` bitwise against the `matmul`/`matmul_nt`/
//!    `matmul_tn` reference family on random shapes and data, for every
//!    operand-layout combination.
//! 3. **Every other backend tracks an f64 reference within an error
//!    bound.** The SIMD microkernel (when compiled and the CPU supports
//!    it) may re-associate the contraction, so it is held to the
//!    standard forward error bound of a length-`k` dot product rather
//!    than bitwise equality; the elementwise kernels (`relu_inplace`,
//!    `bias_add_rows`) must stay bitwise.

use deepmorph_tensor::backend::{self, ComputeCtx, GemmSpec, MatLayout};
use deepmorph_tensor::Tensor;
use proptest::prelude::*;

/// FNV-1a over the output bit patterns: any single-bit drift anywhere in
/// the result flips the digest.
fn digest(xs: &[f32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &x in xs {
        for b in x.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Deterministic pseudo-random fill with exact zeros sprinkled in, so the
/// zero-skip part of the reference contract is exercised.
fn fill(len: usize, salt: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(salt);
            if h.is_multiple_of(11) {
                0.0
            } else {
                ((h >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            }
        })
        .collect()
}

fn scalar_gemm(spec: &GemmSpec, a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; spec.out_len()];
    backend::scalar().gemm(spec, a, b, &mut out);
    out
}

const LAYOUTS: [(MatLayout, MatLayout); 4] = [
    (MatLayout::RowMajor, MatLayout::RowMajor),
    (MatLayout::RowMajor, MatLayout::Transposed),
    (MatLayout::Transposed, MatLayout::RowMajor),
    (MatLayout::Transposed, MatLayout::Transposed),
];

/// Layer 1: the reference kernel's exact outputs, pinned by digest. The
/// constants were recorded from the scalar backend when the seam landed;
/// they must never change — a new backend goes behind its own
/// `BackendKind`, it does not move the reference.
#[test]
fn scalar_backend_is_bitwise_pinned() {
    const PINNED: [u64; 4] = [
        0xf03f_6269_bd43_1d00,
        0x0a78_ddcd_9a64_2891,
        0x46ce_29af_d21d_b606,
        0x7e29_c425_102c_4d0a,
    ];
    let (m, k, n) = (5, 7, 6);
    let digests: Vec<u64> = LAYOUTS
        .iter()
        .map(|&(lhs, rhs)| {
            let spec = GemmSpec::with_layouts(m, k, n, lhs, rhs);
            let a = fill(spec.lhs_len(), 3);
            let b = fill(spec.rhs_len(), 17);
            digest(&scalar_gemm(&spec, &a, &b))
        })
        .collect();
    assert_eq!(
        digests, PINNED,
        "scalar reference drifted (actual digests {digests:#018x?})"
    );
}

/// Layer 1b: accumulation semantics are part of the pinned contract —
/// `gemm` adds into `out`, it does not overwrite it. The exact result is
/// digest-pinned (the kernel folds the partial sums into `out` in its
/// blocked order, which rounds differently from `init + product`); the
/// approximate check documents what the digest means.
#[test]
fn scalar_backend_accumulates_into_out() {
    const PINNED: u64 = 0x0621_071f_7f61_2448;
    let spec = GemmSpec::nt(4, 9, 3);
    let a = fill(spec.lhs_len(), 5);
    let b = fill(spec.rhs_len(), 23);
    let init = fill(spec.out_len(), 41);
    let mut out = init.clone();
    backend::scalar().gemm(&spec, &a, &b, &mut out);
    let product = scalar_gemm(&spec, &a, &b);
    for ((o, i), p) in out.iter().zip(&init).zip(&product) {
        assert!((o - (i + p)).abs() < 1e-5, "{o} vs {i} + {p}");
    }
    assert_eq!(
        digest(&out),
        PINNED,
        "accumulation drifted (actual digest {:#018x})",
        digest(&out)
    );
}

/// The default context is the scalar reference: a build that never opts
/// into another backend is bitwise-unchanged by construction.
#[test]
fn default_context_is_the_scalar_reference() {
    assert_eq!(ComputeCtx::default().backend_name(), "scalar");
    assert_eq!(ComputeCtx::scalar().backend_name(), "scalar");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Layer 2: `Backend::gemm` on the scalar backend is bitwise the
    /// `Tensor` reference product, for every layout the layers emit.
    #[test]
    fn scalar_backend_matches_tensor_products_bitwise(
        m in 1usize..9, k in 1usize..9, n in 1usize..9, salt in 0u64..1000,
    ) {
        let a = fill(m * k, salt);
        let b = fill(k * n, salt.wrapping_add(7));

        // nn: A[m,k] · B[k,n]
        let nn = scalar_gemm(&GemmSpec::nn(m, k, n), &a, &b);
        let ta = Tensor::from_vec(a.clone(), &[m, k]).unwrap();
        let tb = Tensor::from_vec(b.clone(), &[k, n]).unwrap();
        let reference = ta.matmul_serial(&tb).unwrap();
        for (x, y) in nn.iter().zip(reference.data()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }

        // nt: A[m,k] · B[n,k]ᵀ — rhs slice holds the transpose.
        let bt = fill(n * k, salt.wrapping_add(13));
        let nt = scalar_gemm(&GemmSpec::nt(m, k, n), &a, &bt);
        let tbt = Tensor::from_vec(bt, &[n, k]).unwrap();
        let reference = ta.matmul_nt_serial(&tbt).unwrap();
        for (x, y) in nt.iter().zip(reference.data()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }

        // tn: A[k,m]ᵀ · B[k,n] — lhs slice holds the transpose.
        let at = fill(k * m, salt.wrapping_add(29));
        let tn = scalar_gemm(&GemmSpec::tn(m, k, n), &at, &b);
        let tat = Tensor::from_vec(at, &[k, m]).unwrap();
        let reference = tat.matmul_tn_serial(&tb).unwrap();
        for (x, y) in tn.iter().zip(reference.data()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// Layer 2b: the double-transposed product (never emitted by layers,
    /// still part of the contract) equals materializing the lhs and
    /// running nt.
    #[test]
    fn scalar_tt_equals_materialized_nt(
        m in 1usize..7, k in 1usize..7, n in 1usize..7, salt in 0u64..1000,
    ) {
        let at = fill(k * m, salt);   // lhs stored transposed: [k, m]
        let bt = fill(n * k, salt.wrapping_add(3)); // rhs stored transposed: [n, k]
        let spec = GemmSpec::with_layouts(m, k, n, MatLayout::Transposed, MatLayout::Transposed);
        let tt = scalar_gemm(&spec, &at, &bt);
        // Materialize A row-major by hand, then nt.
        let mut a = vec![0.0f32; m * k];
        for r in 0..k {
            for c in 0..m {
                a[c * k + r] = at[r * m + c];
            }
        }
        let nt = scalar_gemm(&GemmSpec::nt(m, k, n), &a, &bt);
        for (x, y) in tt.iter().zip(&nt) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// Layer 3: whatever backend `Auto` resolves to (the SIMD microkernel
    /// on capable builds, the scalar reference otherwise) stays within
    /// the standard forward error bound of a length-`k` f32 dot product
    /// against an f64 reference: `|got − ref| ≤ 2k·ε·Σ|aᵢₚ·bₚⱼ|`.
    #[test]
    fn resolved_backend_within_dot_product_error_bound(
        m in 1usize..24, k in 1usize..48, n in 1usize..24, salt in 0u64..1000,
    ) {
        let backend = backend::simd_or_scalar();
        let a = fill(m * k, salt);
        let bt = fill(n * k, salt.wrapping_add(11));
        let spec = GemmSpec::nt(m, k, n);
        let mut out = vec![0.0f32; m * n];
        backend.gemm(&spec, &a, &bt, &mut out);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                let mut mag = 0.0f64;
                for p in 0..k {
                    let prod = f64::from(a[i * k + p]) * f64::from(bt[j * k + p]);
                    acc += prod;
                    mag += prod.abs();
                }
                let tol = 2.0 * k as f64 * f64::from(f32::EPSILON) * mag + 1e-12;
                let got = f64::from(out[i * n + j]);
                prop_assert!(
                    (got - acc).abs() <= tol,
                    "[{i},{j}] got {got} ref {acc} tol {tol} ({})",
                    backend.name()
                );
            }
        }
    }

    /// Layer 3b: elementwise kernels are bitwise across backends.
    #[test]
    fn elementwise_kernels_are_bitwise_across_backends(len in 1usize..64, salt in 0u64..1000) {
        let resolved = backend::simd_or_scalar();
        let reference = backend::scalar();

        let mut x1 = fill(len, salt);
        let mut x2 = x1.clone();
        reference.relu_inplace(&mut x1);
        resolved.relu_inplace(&mut x2);
        for (a, b) in x1.iter().zip(&x2) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }

        let bias = fill(len, salt.wrapping_add(5));
        let mut y1 = fill(len * 3, salt.wrapping_add(9));
        let mut y2 = y1.clone();
        reference.bias_add_rows(&mut y1, &bias);
        resolved.bias_add_rows(&mut y2, &bias);
        for (a, b) in y1.iter().zip(&y2) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
