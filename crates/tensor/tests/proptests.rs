//! Property-based tests for the tensor substrate.

use deepmorph_tensor::conv::{self, Conv2dGeometry, PoolGeometry};
use deepmorph_tensor::{io, stats, Tensor};
use proptest::prelude::*;

fn tensor_strategy(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Tensor::from_vec(data, &[r, c]).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_identity_left_right(t in tensor_strategy(6)) {
        let rows = t.shape()[0];
        let cols = t.shape()[1];
        let left = Tensor::eye(rows).matmul(&t).unwrap();
        let right = t.matmul(&Tensor::eye(cols)).unwrap();
        for (a, b) in left.data().iter().zip(t.data()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
        for (a, b) in right.data().iter().zip(t.data()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in tensor_strategy(5),
        seed in 0u64..1000,
    ) {
        // Build b, c with shapes compatible with a.
        let k = a.shape()[1];
        let n = (seed % 4 + 1) as usize;
        let b = Tensor::from_vec(
            (0..k * n).map(|i| ((i as u64 * 37 + seed) % 19) as f32 - 9.0).collect(),
            &[k, n],
        ).unwrap();
        let c = Tensor::from_vec(
            (0..k * n).map(|i| ((i as u64 * 11 + seed) % 23) as f32 - 11.0).collect(),
            &[k, n],
        ).unwrap();
        let lhs = a.matmul(&b.add_tensor(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add_tensor(&a.matmul(&c).unwrap()).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }

    #[test]
    fn transpose_preserves_matmul(a in tensor_strategy(5), b in tensor_strategy(5)) {
        // (A B)^T = B^T A^T whenever shapes align; build an aligned b.
        let k = a.shape()[1];
        let b = b.reshape(&[b.len(), 1]).unwrap();
        let b = if b.len() >= k {
            b.slice_rows(0, k).unwrap()
        } else {
            return Ok(());
        };
        let ab_t = a.matmul(&b).unwrap().transpose().unwrap();
        let bt_at = b.transpose().unwrap().matmul(&a.transpose().unwrap()).unwrap();
        for (x, y) in ab_t.data().iter().zip(bt_at.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn softmax_rows_are_distributions(t in tensor_strategy(8)) {
        let s = t.softmax_rows().unwrap();
        for r in 0..s.shape()[0] {
            let row = s.row(r).unwrap();
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn softmax_argmax_matches_logit_argmax(t in tensor_strategy(8)) {
        let s = t.softmax_rows().unwrap();
        prop_assert_eq!(t.argmax_rows().unwrap(), s.argmax_rows().unwrap());
    }

    #[test]
    fn js_similarity_symmetric_and_bounded(
        p in proptest::collection::vec(0.01f32..1.0, 4),
        q in proptest::collection::vec(0.01f32..1.0, 4),
    ) {
        let mut p = p;
        let mut q = q;
        stats::normalize_in_place(&mut p);
        stats::normalize_in_place(&mut q);
        let ab = stats::js_similarity(&p, &q);
        let ba = stats::js_similarity(&q, &p);
        prop_assert!((ab - ba).abs() < 1e-4);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert!(stats::js_similarity(&p, &p) > 0.999);
    }

    #[test]
    fn im2col_col2im_adjoint(
        n in 1usize..3,
        c in 1usize..3,
        hw in 3usize..7,
        k in 1usize..4,
        pad in 0usize..2,
    ) {
        prop_assume!(k <= hw + 2 * pad);
        let geo = Conv2dGeometry::new(c, 1, hw, hw, k, k, 1, pad).unwrap();
        let x = Tensor::from_vec(
            (0..n * c * hw * hw).map(|i| ((i * 7) % 13) as f32 - 6.0).collect(),
            &[n, c, hw, hw],
        ).unwrap();
        let cols = conv::im2col(&x, &geo).unwrap();
        let y = Tensor::from_vec(
            (0..cols.len()).map(|i| ((i * 3) % 11) as f32 - 5.0).collect(),
            cols.shape(),
        ).unwrap();
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let back = conv::col2im(&y, &geo, n).unwrap();
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-1 * lhs.abs().max(1.0), "lhs={lhs} rhs={rhs}");
    }

    #[test]
    fn maxpool_output_bounded_by_input(hw in 2usize..8, window in 1usize..3) {
        prop_assume!(window <= hw);
        let geo = PoolGeometry::new(1, hw, hw, window, window).unwrap();
        let x = Tensor::from_vec(
            (0..hw * hw).map(|i| ((i * 17) % 29) as f32 - 14.0).collect(),
            &[1, 1, hw, hw],
        ).unwrap();
        let (y, _) = conv::maxpool2d(&x, &geo).unwrap();
        prop_assert!(y.max() <= x.max() + 1e-6);
        prop_assert!(y.min() >= x.min() - 1e-6);
    }

    #[test]
    fn stack_then_rows_recovers_inputs(t in tensor_strategy(4)) {
        let flat = t.reshape(&[t.len()]).unwrap();
        let s = Tensor::stack(&[&flat, &flat]).unwrap();
        prop_assert_eq!(s.shape()[0], 2);
        let row0 = s.row(0).unwrap();
        prop_assert_eq!(row0, flat.data());
    }

    // --- binary codec (io module) -------------------------------------

    #[test]
    fn codec_round_trips_any_tensor_bitwise(t in tensor_strategy(9)) {
        let bytes = io::encode_tensor(&t);
        let back = io::decode_tensor(&bytes).unwrap();
        prop_assert_eq!(back.shape(), t.shape());
        for (a, b) in back.data().iter().zip(t.data()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn codec_round_trips_higher_ranks(
        n in 1usize..4, c in 1usize..4, h in 1usize..5, w in 1usize..5, salt in 0u64..100,
    ) {
        let len = n * c * h * w;
        let data: Vec<f32> = (0..len)
            .map(|i| f32::from_bits(((i as u64 * 0x9E37 + salt * 0x1234_5677) % 0x7F7F_FFFF) as u32))
            .collect();
        let t = Tensor::from_vec(data, &[n, c, h, w]).unwrap();
        let back = io::decode_tensor(&io::encode_tensor(&t)).unwrap();
        prop_assert_eq!(back.shape(), t.shape());
        for (a, b) in back.data().iter().zip(t.data()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn codec_rejects_any_truncation(t in tensor_strategy(5), cut_frac in 0.0f64..1.0) {
        let bytes = io::encode_tensor(&t);
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        let err = io::decode_tensor(&bytes[..cut]).unwrap_err();
        prop_assert!(
            matches!(
                err,
                io::CodecError::Truncated { .. } | io::CodecError::ChecksumMismatch { .. }
            ),
            "unexpected error for cut {cut}: {err}"
        );
    }

    #[test]
    fn codec_rejects_any_single_bitflip(t in tensor_strategy(5), pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let mut bytes = io::encode_tensor(&t);
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        // Any corruption must surface as a typed error, never a wrong
        // tensor: either the checksum catches it or a header field
        // becomes invalid.
        match io::decode_tensor(&bytes) {
            Ok(_) => prop_assert!(false, "corrupted container decoded successfully"),
            Err(e) => prop_assert!(
                !format!("{e}").is_empty(),
                "error must be displayable"
            ),
        }
    }
}
