//! Versioned, checksummed binary codec for tensors and derived artifacts.
//!
//! The staged scenario engine persists trained models, probes, and
//! footprints between runs, so every artifact needs a serialization that is
//! (a) *exact* — `f32` payloads round-trip bit for bit, keeping cached and
//! fresh results bitwise identical — and (b) *safe to distrust* — a
//! truncated, corrupted, or future-version file must surface as a typed
//! [`CodecError`], never a panic or garbage data.
//!
//! Layout of a container (all integers little-endian):
//!
//! ```text
//! magic    [u8; 4]   artifact type tag (e.g. b"DMTN" for a bare tensor)
//! version  u16       format version (currently 1)
//! len      u64       payload byte length
//! payload  [u8; len] artifact-specific body
//! checksum u64       FNV-64 over magic..payload
//! ```
//!
//! Inside a payload, tensors are written with [`write_tensor`]: rank `u16`,
//! dims `u64` each, then the raw `f32` bits. Higher layers (`deepmorph-nn`
//! state dicts, `deepmorph-models` model files, `deepmorph` artifacts)
//! compose their payloads from the [`ByteWriter`]/[`ByteReader`] primitives
//! here so every format shares the same truncation and checksum handling.

use std::fmt;
use std::path::Path;

use crate::shape::MAX_RANK;
use crate::Tensor;

/// Current container format version.
pub const CODEC_VERSION: u16 = 1;

/// Magic tag of a bare tensor file written by [`save_tensor`].
pub const TENSOR_MAGIC: [u8; 4] = *b"DMTN";

/// Errors produced by the binary codec.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CodecError {
    /// The input ended before the field being read was complete.
    Truncated {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
    },
    /// The leading magic bytes identify a different (or no) artifact type.
    BadMagic {
        /// Magic the caller expected.
        expected: [u8; 4],
        /// Magic actually found.
        found: [u8; 4],
    },
    /// The file was written by an incompatible format version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
        /// Version this build supports.
        supported: u16,
    },
    /// The stored checksum disagrees with the payload — bit rot or a
    /// partial overwrite.
    ChecksumMismatch {
        /// Checksum recorded in the file.
        expected: u64,
        /// Checksum of the bytes actually present.
        actual: u64,
    },
    /// The bytes decoded but describe an invalid value (bad enum tag,
    /// oversized rank, shape/length disagreement, …).
    Invalid {
        /// Description of the inconsistency.
        context: String,
    },
    /// An underlying filesystem operation failed.
    Io {
        /// Stringified `std::io::Error` (kept as text so the error stays
        /// `Clone + PartialEq`).
        message: String,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { context } => {
                write!(f, "truncated input while decoding {context}")
            }
            CodecError::BadMagic { expected, found } => write!(
                f,
                "bad magic: expected {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found)
            ),
            CodecError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported format version {found} (supported: {supported})"
                )
            }
            CodecError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checksum mismatch: stored {expected:016x}, computed {actual:016x}"
            ),
            CodecError::Invalid { context } => write!(f, "invalid encoding: {context}"),
            CodecError::Io { message } => write!(f, "io error: {message}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> Self {
        CodecError::Io {
            message: e.to_string(),
        }
    }
}

/// Result alias for codec operations.
pub type CodecResult<T> = std::result::Result<T, CodecError>;

/// FNV-1a 64-bit hash of a byte slice — the checksum used by every
/// container and the basis of the artifact-store content fingerprints.
pub fn fnv64(bytes: &[u8]) -> u64 {
    fnv64_seeded(0xcbf2_9ce4_8422_2325, bytes)
}

/// FNV-1a with a caller-chosen basis. Two different bases over the same
/// bytes give independent 64-bit digests; the artifact fingerprints
/// combine two into a 128-bit key.
pub fn fnv64_seeded(basis: u64, bytes: &[u8]) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// Byte-level writer / reader
// ---------------------------------------------------------------------

/// Append-only little-endian byte sink for building payloads.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// The bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16` (little-endian).
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` (little-endian).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f32` as its raw bits (exact round-trip, NaN included).
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed `f32` slice.
    pub fn put_f32s(&mut self, vs: &[f32]) {
        self.put_u64(vs.len() as u64);
        self.put_f32_payload(vs);
    }

    /// Appends raw `f32` bits with no length prefix (the caller's format
    /// implies the count, e.g. a tensor's shape). One bulk conversion
    /// rather than a per-element call: f32 payloads dominate every
    /// container this workspace writes, and the serving hot path encodes
    /// tensors per request.
    pub fn put_f32_payload(&mut self, vs: &[f32]) {
        let start = self.buf.len();
        self.buf.resize(start + vs.len() * 4, 0);
        for (dst, v) in self.buf[start..].chunks_exact_mut(4).zip(vs) {
            dst.copy_from_slice(&v.to_bits().to_le_bytes());
        }
    }

    /// Appends a length-prefixed `usize` slice (as `u64`s).
    pub fn put_usizes(&mut self, vs: &[usize]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_u64(v as u64);
        }
    }

    /// Appends raw bytes with no prefix.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Cursor over a payload with truncation-checked reads.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` when the whole payload has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, context: &'static str) -> CodecResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(CodecError::Truncated { context });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self, context: &'static str) -> CodecResult<u8> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize, context: &'static str) -> CodecResult<&'a [u8]> {
        self.take(n, context)
    }

    /// Reads a `u16`.
    pub fn get_u16(&mut self, context: &'static str) -> CodecResult<u16> {
        let b = self.take(2, context)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self, context: &'static str) -> CodecResult<u64> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a `u64` and converts it to `usize`, rejecting overflow.
    pub fn get_len(&mut self, context: &'static str) -> CodecResult<usize> {
        let v = self.get_u64(context)?;
        usize::try_from(v).map_err(|_| CodecError::Invalid {
            context: format!("{context}: length {v} exceeds usize"),
        })
    }

    /// Reads an `f32` from its raw bits.
    pub fn get_f32(&mut self, context: &'static str) -> CodecResult<f32> {
        let b = self.take(4, context)?;
        Ok(f32::from_bits(u32::from_le_bytes(
            b.try_into().expect("4 bytes"),
        )))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self, context: &'static str) -> CodecResult<String> {
        let len = self.get_len(context)?;
        let bytes = self.take(len, context)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Invalid {
            context: format!("{context}: string is not valid UTF-8"),
        })
    }

    /// Reads a length-prefixed `f32` slice.
    pub fn get_f32s(&mut self, context: &'static str) -> CodecResult<Vec<f32>> {
        let len = self.get_len(context)?;
        self.get_f32_payload(len, context)
    }

    /// Reads `n` raw `f32`s (no length prefix), converting in bulk. The
    /// truncation check happens once for the whole payload, so a corrupt
    /// count cannot trigger a huge allocation.
    pub fn get_f32_payload(&mut self, n: usize, context: &'static str) -> CodecResult<Vec<f32>> {
        let byte_len = n.checked_mul(4).ok_or(CodecError::Invalid {
            context: format!("{context}: f32 count {n} overflows"),
        })?;
        let bytes = self.take(byte_len, context)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|b| f32::from_bits(u32::from_le_bytes(b.try_into().expect("4 bytes"))))
            .collect())
    }

    /// Reads a length-prefixed `usize` slice.
    pub fn get_usizes(&mut self, context: &'static str) -> CodecResult<Vec<usize>> {
        let len = self.get_len(context)?;
        if self.remaining() < len.saturating_mul(8) {
            return Err(CodecError::Truncated { context });
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.get_len(context)?);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------
// Tensor encoding
// ---------------------------------------------------------------------

/// Appends a tensor (rank, dims, raw `f32` bits) to a payload.
pub fn write_tensor(w: &mut ByteWriter, t: &Tensor) {
    w.put_u16(t.ndim() as u16);
    for &d in t.shape() {
        w.put_u64(d as u64);
    }
    w.put_f32_payload(t.data());
}

/// Reads a tensor written by [`write_tensor`].
///
/// # Errors
///
/// Returns [`CodecError::Truncated`] if the payload ends early and
/// [`CodecError::Invalid`] for an impossible shape.
pub fn read_tensor(r: &mut ByteReader<'_>) -> CodecResult<Tensor> {
    let rank = r.get_u16("tensor rank")? as usize;
    if rank > MAX_RANK {
        return Err(CodecError::Invalid {
            context: format!("tensor rank {rank} exceeds MAX_RANK {MAX_RANK}"),
        });
    }
    let mut shape = [0usize; MAX_RANK];
    let mut elems: u128 = 1;
    for slot in shape.iter_mut().take(rank) {
        let d = r.get_len("tensor dims")?;
        *slot = d;
        elems = elems.saturating_mul(d as u128);
    }
    // `get_f32_payload` bounds the element count by the bytes actually
    // present before allocating, so a corrupted dim cannot trigger a
    // huge allocation.
    let n = usize::try_from(elems).map_err(|_| CodecError::Invalid {
        context: "tensor element count overflows usize".into(),
    })?;
    let data = r.get_f32_payload(n, "tensor data")?;
    Tensor::from_vec(data, &shape[..rank]).map_err(|e| CodecError::Invalid {
        context: format!("tensor shape rejected: {e}"),
    })
}

// ---------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------

/// Wraps a payload in the standard container: magic, version, length,
/// payload, FNV-64 checksum.
pub fn seal_container(magic: [u8; 4], payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 22);
    out.extend_from_slice(&magic);
    out.extend_from_slice(&CODEC_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let checksum = fnv64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Validates a container and returns its payload slice.
///
/// # Errors
///
/// Returns the typed [`CodecError`] matching the first problem found:
/// truncation, wrong magic, unsupported version, or checksum mismatch.
pub fn open_container(magic: [u8; 4], bytes: &[u8]) -> CodecResult<&[u8]> {
    const HEADER: usize = 4 + 2 + 8;
    if bytes.len() < HEADER + 8 {
        return Err(CodecError::Truncated {
            context: "container header",
        });
    }
    let found: [u8; 4] = bytes[..4].try_into().expect("4 bytes");
    if found != magic {
        return Err(CodecError::BadMagic {
            expected: magic,
            found,
        });
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
    if version != CODEC_VERSION {
        return Err(CodecError::UnsupportedVersion {
            found: version,
            supported: CODEC_VERSION,
        });
    }
    let len = u64::from_le_bytes(bytes[6..14].try_into().expect("8 bytes"));
    let len = usize::try_from(len).map_err(|_| CodecError::Invalid {
        context: "container length exceeds usize".into(),
    })?;
    if bytes.len() < HEADER + len + 8 {
        return Err(CodecError::Truncated {
            context: "container payload",
        });
    }
    let body_end = HEADER + len;
    let expected = u64::from_le_bytes(bytes[body_end..body_end + 8].try_into().expect("8 bytes"));
    let actual = fnv64(&bytes[..body_end]);
    if expected != actual {
        return Err(CodecError::ChecksumMismatch { expected, actual });
    }
    Ok(&bytes[HEADER..body_end])
}

/// Encodes a single tensor as a standalone container.
pub fn encode_tensor(t: &Tensor) -> Vec<u8> {
    let mut w = ByteWriter::new();
    write_tensor(&mut w, t);
    seal_container(TENSOR_MAGIC, w.as_slice())
}

/// Decodes a container written by [`encode_tensor`].
///
/// # Errors
///
/// Propagates container validation and tensor decoding errors, and rejects
/// trailing bytes after the tensor.
pub fn decode_tensor(bytes: &[u8]) -> CodecResult<Tensor> {
    let payload = open_container(TENSOR_MAGIC, bytes)?;
    let mut r = ByteReader::new(payload);
    let t = read_tensor(&mut r)?;
    if !r.is_exhausted() {
        return Err(CodecError::Invalid {
            context: format!("{} trailing bytes after tensor", r.remaining()),
        });
    }
    Ok(t)
}

/// Writes a tensor to a file via [`encode_tensor`].
///
/// # Errors
///
/// Returns [`CodecError::Io`] on filesystem failures.
pub fn save_tensor(path: impl AsRef<Path>, t: &Tensor) -> CodecResult<()> {
    std::fs::write(path, encode_tensor(t))?;
    Ok(())
}

/// Reads a tensor file written by [`save_tensor`].
///
/// # Errors
///
/// Returns [`CodecError::Io`] on filesystem failures and codec errors for
/// malformed content.
pub fn load_tensor(path: impl AsRef<Path>) -> CodecResult<Tensor> {
    let bytes = std::fs::read(path)?;
    decode_tensor(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tensor {
        Tensor::from_vec((0..24).map(|v| v as f32 * 0.37 - 3.0).collect(), &[2, 3, 4]).unwrap()
    }

    #[test]
    fn tensor_round_trips_bitwise() {
        let t = sample();
        let bytes = encode_tensor(&t);
        let back = decode_tensor(&bytes).unwrap();
        assert_eq!(back.shape(), t.shape());
        for (a, b) in back.data().iter().zip(t.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn special_floats_round_trip() {
        let t = Tensor::from_vec(
            vec![
                f32::NAN,
                f32::INFINITY,
                f32::NEG_INFINITY,
                -0.0,
                f32::MIN_POSITIVE,
            ],
            &[5],
        )
        .unwrap();
        let back = decode_tensor(&encode_tensor(&t)).unwrap();
        for (a, b) in back.data().iter().zip(t.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn truncation_is_typed() {
        let bytes = encode_tensor(&sample());
        for cut in [0, 3, 10, bytes.len() - 1] {
            let err = decode_tensor(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CodecError::Truncated { .. } | CodecError::ChecksumMismatch { .. }
                ),
                "cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn corruption_is_detected() {
        let mut bytes = encode_tensor(&sample());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(matches!(
            decode_tensor(&bytes).unwrap_err(),
            CodecError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn version_mismatch_is_typed() {
        let mut bytes = encode_tensor(&sample());
        bytes[4] = 0xFE; // version low byte
        bytes[5] = 0xCA;
        assert!(matches!(
            decode_tensor(&bytes).unwrap_err(),
            CodecError::UnsupportedVersion { .. }
        ));
    }

    #[test]
    fn wrong_magic_is_typed() {
        let mut bytes = encode_tensor(&sample());
        bytes[0] = b'X';
        assert!(matches!(
            decode_tensor(&bytes).unwrap_err(),
            CodecError::BadMagic { .. }
        ));
    }

    #[test]
    fn oversized_rank_is_rejected() {
        let mut w = ByteWriter::new();
        w.put_u16((MAX_RANK + 1) as u16);
        let bytes = seal_container(TENSOR_MAGIC, w.as_slice());
        assert!(matches!(
            decode_tensor(&bytes).unwrap_err(),
            CodecError::Invalid { .. }
        ));
    }

    #[test]
    fn huge_dim_cannot_allocate() {
        // A corrupted dim claims 2^40 elements; the decoder must refuse
        // before allocating.
        let mut w = ByteWriter::new();
        w.put_u16(1);
        w.put_u64(1 << 40);
        let bytes = seal_container(TENSOR_MAGIC, w.as_slice());
        assert!(matches!(
            decode_tensor(&bytes).unwrap_err(),
            CodecError::Truncated { .. }
        ));
    }

    #[test]
    fn file_round_trip() {
        // Unit tests have no CARGO_TARGET_TMPDIR; the OS temp dir is fine.
        let dir = std::env::temp_dir().join("deepmorph-tensor-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.dmtn");
        let t = sample();
        save_tensor(&path, &t).unwrap();
        assert_eq!(load_tensor(&path).unwrap(), t);
        assert!(matches!(
            load_tensor(dir.join("missing.dmtn")).unwrap_err(),
            CodecError::Io { .. }
        ));
    }

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(300);
        w.put_u64(1 << 40);
        w.put_f32(-0.125);
        w.put_str("probe/stage2");
        w.put_f32s(&[1.0, 2.5]);
        w.put_usizes(&[3, 1, 4]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8("t").unwrap(), 7);
        assert_eq!(r.get_u16("t").unwrap(), 300);
        assert_eq!(r.get_u64("t").unwrap(), 1 << 40);
        assert_eq!(r.get_f32("t").unwrap(), -0.125);
        assert_eq!(r.get_str("t").unwrap(), "probe/stage2");
        assert_eq!(r.get_f32s("t").unwrap(), vec![1.0, 2.5]);
        assert_eq!(r.get_usizes("t").unwrap(), vec![3, 1, 4]);
        assert!(r.is_exhausted());
        assert!(matches!(
            r.get_u8("t").unwrap_err(),
            CodecError::Truncated { .. }
        ));
    }

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x8594_4171_f739_67e8);
    }
}
