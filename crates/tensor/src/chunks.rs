//! Serial/parallel dispatch for chunked kernels.
//!
//! Every hot kernel in this crate is written as "apply `f` to contiguous
//! chunk `i` of an output buffer", which makes the serial and parallel
//! executions *bitwise identical*: the parallel path only changes which
//! thread runs a chunk, never the per-element operation order. These
//! wrappers fall back to a plain loop when the `parallel` feature is off,
//! when only one thread is available, or when the buffer is below the
//! given grain size (thread spawn costs ~tens of µs; tiny kernels lose).

/// Minimum output elements before a memory-bound kernel (im2col, pooling,
/// permutes) fans out to threads.
pub const PAR_GRAIN_ELEMS: usize = 1 << 15;

/// Minimum multiply-accumulate count before a matmul fans out to threads.
pub const PAR_GRAIN_FLOPS: usize = 1 << 18;

/// Runs `f(chunk_index, chunk)` over contiguous `chunk_len`-sized chunks,
/// in parallel when worthwhile (buffer at least `grain` elements, the
/// `parallel` feature on, and more than one thread available).
#[allow(unused_variables)]
pub fn for_chunks_mut<T: Send, F>(data: &mut [T], chunk_len: usize, grain: usize, f: F)
where
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() || chunk_len == 0 {
        return;
    }
    #[cfg(feature = "parallel")]
    if data.len() >= grain && deepmorph_parallel::max_threads() > 1 {
        deepmorph_parallel::par_chunks_mut(data, chunk_len, f);
        return;
    }
    for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
        f(i, chunk);
    }
}

/// Two-buffer variant of [`for_chunks_mut`] (lockstep chunks).
#[allow(unused_variables)]
pub fn for_chunks2_mut<T: Send, U: Send, F>(
    a: &mut [T],
    a_chunk: usize,
    b: &mut [U],
    b_chunk: usize,
    grain: usize,
    f: F,
) where
    F: Fn(usize, &mut [T], &mut [U]) + Sync,
{
    if a.is_empty() || a_chunk == 0 || b_chunk == 0 {
        return;
    }
    #[cfg(feature = "parallel")]
    if a.len() >= grain && deepmorph_parallel::max_threads() > 1 {
        deepmorph_parallel::par_chunks2_mut(a, a_chunk, b, b_chunk, f);
        return;
    }
    for (i, (ca, cb)) in a.chunks_mut(a_chunk).zip(b.chunks_mut(b_chunk)).enumerate() {
        f(i, ca, cb);
    }
}
