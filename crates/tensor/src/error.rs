use std::error::Error;
use std::fmt;

/// Errors produced by tensor operations.
///
/// Every fallible operation in this crate returns one of these variants
/// rather than panicking, so callers (the layer implementations in
/// `deepmorph-nn`) can surface shape bugs with context.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// Two tensors were expected to have identical shapes but did not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
        /// Operation that was attempted.
        op: &'static str,
    },
    /// The number of elements implied by a shape does not match the data
    /// length provided.
    LengthMismatch {
        /// The shape requested.
        shape: Vec<usize>,
        /// Number of elements actually provided.
        len: usize,
    },
    /// An operation required a tensor of a particular rank.
    RankMismatch {
        /// Rank expected by the operation.
        expected: usize,
        /// Rank of the tensor provided.
        actual: usize,
        /// Operation that was attempted.
        op: &'static str,
    },
    /// Inner dimensions disagree for a matrix product.
    MatmulDimMismatch {
        /// `[m, k]` of the left operand.
        lhs: [usize; 2],
        /// `[k', n]` of the right operand.
        rhs: [usize; 2],
    },
    /// An index was out of bounds for the tensor shape.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor shape.
        shape: Vec<usize>,
    },
    /// A shape contained a zero dimension where one is not allowed, or was
    /// otherwise invalid for the operation.
    InvalidShape {
        /// The offending shape.
        shape: Vec<usize>,
        /// Why the shape is invalid.
        reason: &'static str,
    },
    /// Convolution/pooling geometry is inconsistent (e.g. kernel larger
    /// than padded input).
    InvalidGeometry {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { lhs, rhs, op } => {
                write!(f, "shape mismatch in `{op}`: lhs {lhs:?} vs rhs {rhs:?}")
            }
            TensorError::LengthMismatch { shape, len } => write!(
                f,
                "data length {len} does not match shape {shape:?} ({} elements)",
                shape.iter().product::<usize>()
            ),
            TensorError::RankMismatch {
                expected,
                actual,
                op,
            } => write!(f, "`{op}` expects rank {expected}, got rank {actual}"),
            TensorError::MatmulDimMismatch { lhs, rhs } => write!(
                f,
                "matmul inner dimensions disagree: [{}, {}] x [{}, {}]",
                lhs[0], lhs[1], rhs[0], rhs[1]
            ),
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::InvalidShape { shape, reason } => {
                write!(f, "invalid shape {shape:?}: {reason}")
            }
            TensorError::InvalidGeometry { reason } => {
                write!(f, "invalid convolution geometry: {reason}")
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = TensorError::ShapeMismatch {
            lhs: vec![2, 3],
            rhs: vec![3, 2],
            op: "add",
        };
        let msg = err.to_string();
        assert!(msg.contains("add"));
        assert!(msg.contains("[2, 3]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }

    #[test]
    fn matmul_mismatch_message_names_dims() {
        let err = TensorError::MatmulDimMismatch {
            lhs: [4, 5],
            rhs: [6, 7],
        };
        let msg = err.to_string();
        assert!(msg.contains("[4, 5]"));
        assert!(msg.contains("[6, 7]"));
    }
}
