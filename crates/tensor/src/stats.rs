//! Distribution and geometry helpers.
//!
//! DeepMorph's footprint analysis compares per-layer probe *distributions*
//! against per-class execution patterns. This module collects the scalar
//! comparisons it needs: Shannon entropy, KL/Jensen–Shannon divergence,
//! cosine similarity, and simple summary statistics.
//!
//! All functions operate on plain `&[f32]` slices so they can be applied to
//! tensor rows without copying.

/// Shannon entropy (nats) of a probability vector.
///
/// Zero-probability entries contribute zero. Inputs are not renormalized;
/// pass distributions that already sum to 1.
pub fn entropy(p: &[f32]) -> f32 {
    p.iter().filter(|&&v| v > 0.0).map(|&v| -v * v.ln()).sum()
}

/// Entropy normalized to `[0, 1]` by `ln(k)`; 1 means uniform.
///
/// Returns 0 for vectors of length < 2.
pub fn normalized_entropy(p: &[f32]) -> f32 {
    if p.len() < 2 {
        return 0.0;
    }
    entropy(p) / (p.len() as f32).ln()
}

/// Kullback–Leibler divergence `KL(p ‖ q)` in nats, with ε-smoothing of `q`
/// to keep the result finite.
pub fn kl_divergence(p: &[f32], q: &[f32]) -> f32 {
    debug_assert_eq!(p.len(), q.len());
    const EPS: f32 = 1e-7;
    p.iter()
        .zip(q)
        .filter(|(&pv, _)| pv > 0.0)
        .map(|(&pv, &qv)| pv * (pv / (qv + EPS)).ln())
        .sum()
}

/// Jensen–Shannon divergence, symmetric and bounded by `ln 2`.
pub fn js_divergence(p: &[f32], q: &[f32]) -> f32 {
    debug_assert_eq!(p.len(), q.len());
    let m: Vec<f32> = p.iter().zip(q).map(|(a, b)| 0.5 * (a + b)).collect();
    0.5 * kl_divergence(p, &m) + 0.5 * kl_divergence(q, &m)
}

/// Jensen–Shannon similarity in `[0, 1]`: `1 - JSD/ln 2`.
///
/// This is DeepMorph's default footprint-to-pattern alignment metric.
pub fn js_similarity(p: &[f32], q: &[f32]) -> f32 {
    (1.0 - js_divergence(p, q) / std::f32::consts::LN_2).clamp(0.0, 1.0)
}

/// Cosine similarity; 0 if either vector is all-zero.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Squared Euclidean distance.
pub fn sq_euclidean(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum()
}

/// Arithmetic mean (0 for empty input).
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f32>() / xs.len() as f32
    }
}

/// Population variance (0 for fewer than 2 samples).
pub fn variance(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|v| (v - m).powi(2)).sum::<f32>() / xs.len() as f32
}

/// Standard deviation (population).
pub fn std_dev(xs: &[f32]) -> f32 {
    variance(xs).sqrt()
}

/// Largest and second-largest values of a slice.
///
/// Returns `(max, second)`; for a single-element slice `second` is `-inf`.
/// Useful for "margin" computations over alignment scores.
pub fn top2(xs: &[f32]) -> (f32, f32) {
    let mut best = f32::NEG_INFINITY;
    let mut second = f32::NEG_INFINITY;
    for &v in xs {
        if v > best {
            second = best;
            best = v;
        } else if v > second {
            second = v;
        }
    }
    (best, second)
}

/// Index of the maximum element (0 for empty input).
pub fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate() {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

/// Normalizes a non-negative vector to sum to 1 in place; leaves an
/// all-zero vector untouched.
pub fn normalize_in_place(xs: &mut [f32]) {
    let s: f32 = xs.iter().sum();
    if s > 0.0 {
        for v in xs {
            *v /= s;
        }
    }
}

/// Softmax of arbitrary scores (stable), returning a fresh vector.
pub fn softmax(xs: &[f32]) -> Vec<f32> {
    let m = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = xs.iter().map(|v| (v - m).exp()).collect();
    let s: f32 = exps.iter().sum();
    if s <= 0.0 || !s.is_finite() {
        vec![1.0 / xs.len().max(1) as f32; xs.len()]
    } else {
        exps.into_iter().map(|v| v / s).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LN2: f32 = std::f32::consts::LN_2;

    #[test]
    fn entropy_uniform_is_ln_k() {
        let p = [0.25f32; 4];
        assert!((entropy(&p) - (4f32).ln()).abs() < 1e-6);
        assert!((normalized_entropy(&p) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn entropy_point_mass_is_zero() {
        let p = [1.0, 0.0, 0.0];
        assert_eq!(entropy(&p), 0.0);
        assert_eq!(normalized_entropy(&p), 0.0);
    }

    #[test]
    fn kl_zero_iff_equal() {
        let p = [0.2, 0.3, 0.5];
        assert!(kl_divergence(&p, &p).abs() < 1e-5);
        let q = [0.5, 0.3, 0.2];
        assert!(kl_divergence(&p, &q) > 0.0);
    }

    #[test]
    fn js_is_symmetric_and_bounded() {
        let p = [0.9, 0.1, 0.0];
        let q = [0.0, 0.1, 0.9];
        let d1 = js_divergence(&p, &q);
        let d2 = js_divergence(&q, &p);
        assert!((d1 - d2).abs() < 1e-6);
        assert!(d1 <= LN2 + 1e-5);
        assert!(d1 > 0.5 * LN2); // nearly disjoint supports
    }

    #[test]
    fn js_similarity_bounds() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        assert!(js_similarity(&p, &p) > 0.999);
        assert!(js_similarity(&p, &q) < 0.001);
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine_similarity(&[1.0, 0.0], &[2.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 3.0]).abs() < 1e-6);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
        assert!((cosine_similarity(&[1.0, 1.0], &[-1.0, -1.0]) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn top2_and_argmax() {
        let xs = [3.0, 9.0, 7.0, 9.0];
        assert_eq!(top2(&xs), (9.0, 9.0));
        assert_eq!(argmax(&xs), 1);
        assert_eq!(top2(&[5.0]), (5.0, f32::NEG_INFINITY));
    }

    #[test]
    fn softmax_sums_to_one_even_for_extreme_inputs() {
        let s = softmax(&[1000.0, -1000.0, 0.0]);
        assert!((s.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(s[0] > 0.999);
    }

    #[test]
    fn normalize_handles_zero_vector() {
        let mut v = [0.0f32; 3];
        normalize_in_place(&mut v);
        assert_eq!(v, [0.0; 3]);
        let mut w = [2.0, 2.0];
        normalize_in_place(&mut w);
        assert_eq!(w, [0.5, 0.5]);
    }

    #[test]
    fn mean_variance_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-6);
        assert!((variance(&xs) - 4.0).abs() < 1e-6);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-6);
    }
}
