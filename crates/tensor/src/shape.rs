//! Inline tensor shapes.
//!
//! Every tensor in this workspace has rank ≤ [`MAX_RANK`], so shapes are
//! stored in a fixed-size inline array instead of a `Vec<usize>`. This
//! removes one heap allocation from every tensor construction — which
//! matters because the workspace arena ([`crate::workspace`]) recycles the
//! *data* buffers, leaving shape vectors as the last per-tensor allocation
//! on the hot path.

use std::fmt;

/// Maximum tensor rank representable by [`Shape`].
///
/// Activations are at most NCHW (rank 4); [`crate::Tensor::stack`] adds one
/// leading axis, giving 5.
pub const MAX_RANK: usize = 5;

/// A tensor shape stored inline (no heap allocation).
///
/// Compares and displays like the `&[usize]` slice it wraps.
#[derive(Clone, Copy, Eq)]
pub struct Shape {
    dims: [usize; MAX_RANK],
    rank: u8,
}

impl Shape {
    /// Builds a shape from a slice of dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `dims.len() > MAX_RANK`; fallible constructors
    /// ([`crate::Tensor::from_vec`]) validate the rank before calling this.
    pub fn from_slice(dims: &[usize]) -> Self {
        assert!(
            dims.len() <= MAX_RANK,
            "tensor rank {} exceeds MAX_RANK {MAX_RANK}",
            dims.len()
        );
        let mut inline = [0usize; MAX_RANK];
        inline[..dims.len()].copy_from_slice(dims);
        Shape {
            dims: inline,
            rank: dims.len() as u8,
        }
    }

    /// The dimensions as a slice.
    pub fn as_slice(&self) -> &[usize] {
        &self.dims[..self.rank as usize]
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.rank as usize
    }

    /// Product of all dimensions (1 for a rank-0 shape).
    pub fn num_elements(&self) -> usize {
        self.as_slice().iter().product()
    }
}

impl PartialEq for Shape {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<[usize]> for Shape {
    fn eq(&self, other: &[usize]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<[usize; N]> for Shape {
    fn eq(&self, other: &[usize; N]) -> bool {
        self.as_slice() == other
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_dims() {
        let s = Shape::from_slice(&[2, 3, 4]);
        assert_eq!(s.as_slice(), &[2, 3, 4]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.num_elements(), 24);
    }

    #[test]
    fn empty_shape_is_rank_zero() {
        let s = Shape::from_slice(&[]);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.num_elements(), 1);
    }

    #[test]
    fn equality_ignores_unused_slots() {
        let a = Shape::from_slice(&[2, 3]);
        let b = Shape::from_slice(&[2, 3]);
        assert_eq!(a, b);
        assert_eq!(a, [2usize, 3]);
        assert_ne!(a.as_slice(), Shape::from_slice(&[2, 3, 1]).as_slice());
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_RANK")]
    fn oversized_rank_panics() {
        let _ = Shape::from_slice(&[1; MAX_RANK + 1]);
    }

    #[test]
    fn debug_matches_slice() {
        let s = Shape::from_slice(&[4, 5]);
        assert_eq!(format!("{s:?}"), "[4, 5]");
    }
}
