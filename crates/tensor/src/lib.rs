//! Dense tensor math substrate for the DeepMorph reproduction.
//!
//! The paper implements DeepMorph over TensorFlow; this crate is the
//! from-scratch replacement for the numerical kernels that the rest of the
//! workspace builds on. It provides:
//!
//! * [`Tensor`] — a contiguous, row-major, `f32` n-dimensional array with
//!   elementwise arithmetic, matrix multiplication, reductions, and
//!   softmax/log-softmax.
//! * [`conv`] — `im2col`/`col2im` and pooling kernels used by the
//!   convolution layers in `deepmorph-nn`.
//! * [`backend`] — the pluggable compute seam: a [`backend::Backend`]
//!   trait every dense product dispatches through, with the cache-blocked
//!   scalar kernel as the bitwise reference, a feature-gated AVX2/FMA
//!   microkernel (`--features simd`), and the explicit
//!   [`backend::ComputeCtx`] threaded through graphs and servers. The raw
//!   kernel entry points are private; [`Tensor::matmul`] and friends are
//!   the pinned scalar surface.
//! * [`workspace`] — the thread-local scratch arena that keeps the
//!   conv/matmul hot loop allocation-free after warm-up.
//! * [`init`] — deterministic weight initialization (uniform, normal,
//!   Xavier/Glorot, He).
//! * [`io`] — the versioned, checksummed binary codec (tensor save/load
//!   plus the byte primitives the higher-layer artifact formats build on).
//! * [`stats`] — distribution/geometry helpers (entropy, KL/JS divergence,
//!   cosine similarity) that the DeepMorph footprint analysis relies on.
//!
//! Layout convention is **NCHW** for 4-D activation tensors and
//! `[rows, cols]` for matrices.
//!
//! # Example
//!
//! ```
//! use deepmorph_tensor::Tensor;
//!
//! # fn main() -> Result<(), deepmorph_tensor::TensorError> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.data(), a.data());
//! # Ok(())
//! # }
//! ```

pub mod backend;
pub mod chunks;
pub mod conv;
mod error;
mod gemm;
pub mod init;
pub mod io;
mod shape;
pub mod stats;
mod tensor;
pub mod workspace;

pub use error::TensorError;
pub use shape::{Shape, MAX_RANK};
pub use tensor::Tensor;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::backend::{
        Backend, BackendHandle, BackendKind, ComputeCtx, GemmSpec, MatLayout,
    };
    pub use crate::conv::{self, Conv2dGeometry, Im2colMap, PoolGeometry};
    pub use crate::init::{self, Init};
    pub use crate::io::{self, CodecError};
    pub use crate::stats;
    pub use crate::{workspace, Tensor, TensorError};
}

/// Result alias used across this crate.
pub type Result<T> = std::result::Result<T, TensorError>;
