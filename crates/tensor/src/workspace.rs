//! Thread-local scratch arena for hot-loop `f32` buffers.
//!
//! DeepMorph re-runs probe training and footprint extraction across every
//! defect-injection scenario, so the conv/matmul hot loop executes
//! thousands of times per report. Allocating fresh buffers each call costs
//! allocator traffic *and* page faults (a fresh `vec![0.0; …]` is lazily
//! mapped, so its first touch faults every page). The [`Workspace`] arena
//! keeps retired buffers in size-keyed free lists: after a warm-up step,
//! every checkout is a pop and every retire is a push — zero heap
//! allocations in steady state (`tests/alloc_regression.rs` enforces this).
//!
//! # Checkout / recycle protocol
//!
//! * [`take_raw`] / [`take_zeroed`] check a buffer of an exact length out
//!   of the current thread's arena ([`tensor_raw`] / [`tensor_zeroed`] wrap
//!   it in a [`Tensor`]). `*_raw` buffers contain stale values from their
//!   previous life — only for kernels that overwrite every element.
//! * [`recycle`] / [`recycle_tensor`] return a buffer to the arena. Buffers
//!   are plain `Vec<f32>`s, so forgetting to recycle is never unsound —
//!   the buffer is simply freed and the next checkout of that size
//!   allocates again.
//!
//! # Thread affinity
//!
//! The arena is **thread-local**: checkouts always come from the calling
//! thread's arena, and a recycle feeds the arena of whichever thread runs
//! it. The `deepmorph-parallel` worker pool interacts with this in two
//! ways:
//!
//! * Chunked kernels (`par_chunks_mut`) check buffers out on the
//!   *submitting* thread and hand workers disjoint chunks — workers never
//!   touch an arena.
//! * Order-preserving fan-outs (`par_map`, e.g. per-probe training) run
//!   whole closures on worker threads; each worker then warms and reuses
//!   its own arena. One arena per worker thread, no locks anywhere.
//!
//! For deterministic reuse, recycle on the thread that checked out —
//! cross-thread recycling is safe but leaves the original arena cold.

use std::cell::RefCell;

use crate::{Shape, Tensor};

/// Retired buffers kept per size class before further recycles are
/// dropped. Hot loops use a handful of live buffers per size, so a small
/// cap bounds arena growth while keeping steady state allocation-free.
const MAX_POOLED_PER_SIZE: usize = 16;

/// A size-keyed pool of reusable `f32` buffers.
///
/// Usually accessed through the thread-local free functions
/// ([`take_raw`], [`take_zeroed`], [`recycle`], …); the type is public so
/// tests and callers with special lifetimes can hold a private arena.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Free lists, one per exact buffer length. Hot loops cycle through a
    /// few distinct sizes, so a linear scan beats hashing.
    pools: Vec<(usize, Vec<Vec<f32>>)>,
    checkouts: u64,
    misses: u64,
}

impl Workspace {
    /// Creates an empty arena.
    pub const fn new() -> Self {
        Workspace {
            pools: Vec::new(),
            checkouts: 0,
            misses: 0,
        }
    }

    /// Checks out a buffer of exactly `len` elements with **unspecified
    /// contents** (stale values from the buffer's previous use). Only for
    /// kernels that overwrite every element.
    pub fn checkout_raw(&mut self, len: usize) -> Vec<f32> {
        self.checkouts += 1;
        if let Some((_, list)) = self.pools.iter_mut().find(|(l, _)| *l == len) {
            if let Some(buf) = list.pop() {
                debug_assert_eq!(buf.len(), len);
                return buf;
            }
        }
        self.misses += 1;
        vec![0.0; len]
    }

    /// Checks out a buffer of exactly `len` elements, zero-filled.
    pub fn checkout_zeroed(&mut self, len: usize) -> Vec<f32> {
        self.checkouts += 1;
        if let Some((_, list)) = self.pools.iter_mut().find(|(l, _)| *l == len) {
            if let Some(mut buf) = list.pop() {
                debug_assert_eq!(buf.len(), len);
                buf.fill(0.0);
                return buf;
            }
        }
        self.misses += 1;
        // Fresh allocation: `vec![0.0; …]` maps lazily-zeroed pages, so the
        // kernel that writes the buffer pays the page-faults where it
        // touches them (often in parallel) — never fill() a cold buffer.
        vec![0.0; len]
    }

    /// Returns a buffer to the arena for reuse.
    pub fn recycle(&mut self, buf: Vec<f32>) {
        let len = buf.len();
        if len == 0 {
            return;
        }
        if let Some((_, list)) = self.pools.iter_mut().find(|(l, _)| *l == len) {
            if list.len() < MAX_POOLED_PER_SIZE {
                list.push(buf);
            }
            return;
        }
        self.pools.push((len, vec![buf]));
    }

    /// Drops every pooled buffer, releasing the memory to the allocator.
    pub fn reset(&mut self) {
        self.pools.clear();
    }

    /// Total bytes currently held in free lists.
    pub fn pooled_bytes(&self) -> usize {
        self.pools
            .iter()
            .map(|(len, list)| len * list.len() * std::mem::size_of::<f32>())
            .sum()
    }

    /// `(checkouts, misses)` since construction. A warm hot loop shows a
    /// growing checkout count with a constant miss count.
    pub fn stats(&self) -> (u64, u64) {
        (self.checkouts, self.misses)
    }
}

thread_local! {
    static ARENA: RefCell<Workspace> = const { RefCell::new(Workspace::new()) };
}

/// Runs `f` with exclusive access to the current thread's arena.
///
/// `f` must not re-enter the workspace API (the arena is behind a
/// `RefCell`); use the leaf helpers below from kernel code.
pub fn with<R>(f: impl FnOnce(&mut Workspace) -> R) -> R {
    ARENA.with(|a| f(&mut a.borrow_mut()))
}

/// Thread-local [`Workspace::checkout_raw`].
pub fn take_raw(len: usize) -> Vec<f32> {
    with(|ws| ws.checkout_raw(len))
}

/// Thread-local [`Workspace::checkout_zeroed`].
pub fn take_zeroed(len: usize) -> Vec<f32> {
    with(|ws| ws.checkout_zeroed(len))
}

/// Thread-local [`Workspace::recycle`].
pub fn recycle(buf: Vec<f32>) {
    with(|ws| ws.recycle(buf));
}

/// Recycles a tensor's data buffer into the current thread's arena.
pub fn recycle_tensor(t: Tensor) {
    recycle(t.into_vec());
}

/// Recycles an optional tensor (no-op for `None`).
pub fn recycle_opt(t: Option<Tensor>) {
    if let Some(t) = t {
        recycle_tensor(t);
    }
}

/// Checks out a tensor of `shape` with **unspecified element values**.
/// Only for kernels that overwrite every element.
pub fn tensor_raw(shape: &[usize]) -> Tensor {
    let s = Shape::from_slice(shape);
    let data = take_raw(s.num_elements());
    Tensor::from_parts(s, data)
}

/// Checks out a zero-filled tensor of `shape`.
pub fn tensor_zeroed(shape: &[usize]) -> Tensor {
    let s = Shape::from_slice(shape);
    let data = take_zeroed(s.num_elements());
    Tensor::from_parts(s, data)
}

/// Drops every buffer pooled by the current thread's arena.
pub fn reset() {
    with(Workspace::reset);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_reuses_recycled_buffers() {
        let mut ws = Workspace::new();
        let a = ws.checkout_zeroed(64);
        ws.recycle(a);
        let b = ws.checkout_raw(64);
        assert_eq!(b.len(), 64);
        let (checkouts, misses) = ws.stats();
        assert_eq!(checkouts, 2);
        assert_eq!(misses, 1, "second checkout must hit the pool");
    }

    #[test]
    fn zeroed_checkout_clears_stale_data() {
        let mut ws = Workspace::new();
        let mut a = ws.checkout_raw(8);
        a.fill(7.0);
        ws.recycle(a);
        let b = ws.checkout_zeroed(8);
        assert!(b.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn distinct_sizes_use_distinct_pools() {
        let mut ws = Workspace::new();
        ws.recycle(vec![1.0; 4]);
        ws.recycle(vec![2.0; 8]);
        assert_eq!(ws.checkout_raw(8).len(), 8);
        assert_eq!(ws.checkout_raw(4).len(), 4);
        assert_eq!(ws.stats().1, 0);
    }

    #[test]
    fn pool_growth_is_capped() {
        let mut ws = Workspace::new();
        for _ in 0..(2 * MAX_POOLED_PER_SIZE) {
            ws.recycle(vec![0.0; 16]);
        }
        assert_eq!(
            ws.pooled_bytes(),
            MAX_POOLED_PER_SIZE * 16 * std::mem::size_of::<f32>()
        );
        ws.reset();
        assert_eq!(ws.pooled_bytes(), 0);
    }

    #[test]
    fn tensor_helpers_round_trip() {
        let t = tensor_zeroed(&[3, 4]);
        assert_eq!(t.shape(), &[3, 4]);
        assert!(t.data().iter().all(|&v| v == 0.0));
        recycle_tensor(t);
        let t = tensor_raw(&[3, 4]);
        assert_eq!(t.len(), 12);
        recycle_tensor(t);
        recycle_opt(None);
    }

    #[test]
    fn zero_length_buffers_are_not_pooled() {
        let mut ws = Workspace::new();
        ws.recycle(Vec::new());
        assert_eq!(ws.pooled_bytes(), 0);
    }
}
