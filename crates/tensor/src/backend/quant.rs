//! Reduced-precision inference kernels: f16 weight rounding and i8
//! symmetric quantization with a dynamic-activation integer GEMM.
//!
//! Serving replicas trade precision for latency/footprint while training
//! and diagnosis stay f32 (`deepmorph-serve` gates every promotion behind
//! the held-out swap gate, so a lossy replica never ships silently):
//!
//! * **f16** — every parameter is rounded to the nearest IEEE 754
//!   binary16 value and computed in f32 ([`f16_round`]). Halves the
//!   stored-weight entropy; the arithmetic pipeline is unchanged.
//! * **i8** — weight matrices used in `x·Wᵀ` products ([`QuantizedMat`]:
//!   per-output-row symmetric scales) with activations quantized
//!   per-row at run time, accumulated in i32 ([`qgemm_nt`]), and
//!   rescaled to f32. With the `simd` feature on an AVX2 machine both
//!   halves vectorize: activations quantize 8 lanes at a time and the
//!   inner dot runs 32 i16 multiply-accumulates per unrolled iteration,
//!   all inside one `target_feature` region per product.
//!
//! Accuracy is asserted end-to-end on the repair_smoke fixture by the
//! backend conformance suite, not per-kernel: the tolerances that matter
//! are model-level.

use std::fmt;

/// Numeric precision of a serving replica's parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// Full f32 parameters — bitwise-exact with the trained model.
    #[default]
    F32,
    /// Parameters rounded through IEEE 754 binary16, compute in f32.
    F16,
    /// `x·Wᵀ` weights in symmetric per-row i8 with dynamic activation
    /// scales; remaining parameters rounded through f16.
    I8,
}

impl Precision {
    /// Stable identifier (registry metadata, bench notes, CLI flags).
    pub fn as_str(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::F16 => "f16",
            Precision::I8 => "i8",
        }
    }

    /// Parses [`Precision::as_str`] output.
    pub fn parse(s: &str) -> Option<Precision> {
        match s.to_ascii_lowercase().as_str() {
            "f32" => Some(Precision::F32),
            "f16" => Some(Precision::F16),
            "i8" => Some(Precision::I8),
            _ => None,
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Rounds `v` to the nearest IEEE 754 binary16 value (ties to even) and
/// widens back to f32. Values beyond ±65504 round to ±∞, NaN stays NaN,
/// and halfway cases follow the hardware convention — this is the exact
/// value an f16 execution unit would load.
pub fn f16_round(v: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(v))
}

/// Applies [`f16_round`] to every element in place.
pub fn f16_round_slice(xs: &mut [f32]) {
    for v in xs.iter_mut() {
        *v = f16_round(*v);
    }
}

fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let man = bits & 0x7f_ffff;
    if exp == 0xff {
        // Inf / NaN (quiet any NaN payload).
        return if man == 0 {
            sign | 0x7c00
        } else {
            sign | 0x7e00
        };
    }
    let e16 = exp - 127 + 15;
    if e16 >= 31 {
        return sign | 0x7c00; // overflow → inf
    }
    if e16 <= 0 {
        if e16 < -10 {
            return sign; // underflow → signed zero
        }
        // Subnormal: drop (14 - e16) bits of the 24-bit significand, RNE.
        let m = man | 0x80_0000;
        let shift = (14 - e16) as u32;
        let half = 1u32 << (shift - 1);
        let rem = m & ((1 << shift) - 1);
        let mut h = (m >> shift) as u16;
        if rem > half || (rem == half && h & 1 == 1) {
            h += 1; // may carry into the exponent — that is the correct RNE result
        }
        return sign | h;
    }
    // Normal: drop 13 mantissa bits, RNE; a carry out of the mantissa
    // walks into the exponent field (up to inf) by construction.
    let rem = man & 0x1fff;
    let mut h = ((e16 as u32) << 10 | (man >> 13)) as u16;
    if rem > 0x1000 || (rem == 0x1000 && h & 1 == 1) {
        h = h.wrapping_add(1);
    }
    sign | h
}

fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = (h >> 10) & 0x1f;
    let man = (h & 0x3ff) as u32;
    if exp == 0x1f {
        return f32::from_bits(sign | 0x7f80_0000 | man << 13);
    }
    if exp == 0 {
        if man == 0 {
            return f32::from_bits(sign);
        }
        // Subnormal: normalize the 10-bit significand.
        let lz = man.leading_zeros() - 22;
        let exp32 = 112 - lz;
        let man32 = (man << (14 + lz)) & 0x7f_ffff;
        return f32::from_bits(sign | exp32 << 23 | man32);
    }
    f32::from_bits(sign | (exp as u32 + 112) << 23 | man << 13)
}

/// A weight matrix quantized to symmetric per-row i8: row `j` stores
/// `round(w[j·cols + c] / scales[j])` clamped to ±127, with
/// `scales[j] = max|row j| / 127`. Built once per replica at
/// publish/replicate time; consumed by [`qgemm_nt`].
#[derive(Debug, Clone)]
pub struct QuantizedMat {
    rows: usize,
    cols: usize,
    data: Vec<i8>,
    scales: Vec<f32>,
}

impl QuantizedMat {
    /// Quantizes a row-major `[rows, cols]` f32 matrix.
    ///
    /// # Panics
    ///
    /// Panics if `w.len() != rows * cols`.
    pub fn from_rows(w: &[f32], rows: usize, cols: usize) -> Self {
        assert_eq!(w.len(), rows * cols, "QuantizedMat: weight length");
        let mut data = vec![0i8; rows * cols];
        let mut scales = vec![1.0f32; rows];
        for j in 0..rows {
            let row = &w[j * cols..(j + 1) * cols];
            let max = row.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            let scale = if max > 0.0 && max.is_finite() {
                max / 127.0
            } else {
                1.0
            };
            scales[j] = scale;
            for (q, &v) in data[j * cols..(j + 1) * cols].iter_mut().zip(row) {
                *q = (v / scale).round().clamp(-127.0, 127.0) as i8;
            }
        }
        QuantizedMat {
            rows,
            cols,
            data,
            scales,
        }
    }

    /// Output rows (`n` of the `x·Wᵀ` product).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Inner dimension (`k` of the `x·Wᵀ` product).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Per-row dequantization scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// The widened (dequantized) matrix — what the quantized product
    /// effectively multiplies by; used by accuracy tests.
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.data.len()];
        for j in 0..self.rows {
            let s = self.scales[j];
            for (o, &q) in out[j * self.cols..(j + 1) * self.cols]
                .iter_mut()
                .zip(&self.data[j * self.cols..(j + 1) * self.cols])
            {
                *o = q as f32 * s;
            }
        }
        out
    }
}

/// Quantized `out = x · Wᵀ`: `x` is f32 `[m, k]`, `W` is a
/// [`QuantizedMat`] `[n, k]`. Each activation row is quantized on the fly
/// with its own symmetric scale (`max|row| / 127`), dots accumulate in
/// i32, and the result is rescaled to f32 — `out` is **assigned**, not
/// accumulated.
///
/// The i32 accumulator bounds `k` at ~130 000 (127² · k must stay below
/// `i32::MAX`); network products are orders of magnitude below that.
///
/// # Panics
///
/// Panics if slice lengths disagree with `[m, k]` / `[m, n]`.
pub fn qgemm_nt(x: &[f32], w: &QuantizedMat, out: &mut [f32], m: usize) {
    let (k, n) = (w.cols, w.rows);
    assert_eq!(x.len(), m * k, "qgemm_nt: lhs length");
    assert_eq!(out.len(), m * n, "qgemm_nt: out length");
    debug_assert!(127i64 * 127 * k as i64 <= i32::MAX as i64);
    if m == 0 || n == 0 {
        return;
    }

    let mut qx = vec![0i8; m * k];
    let mut x_scales = vec![1.0f32; m];
    // The CPU check happens ONCE per product, not per dot: the whole
    // matrix loop lives inside one `target_feature` region so the row
    // dots inline into it (per-call dispatch would dominate the small-k
    // products conv lowering emits).
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if avx2_available() {
        // SAFETY: AVX2 verified; slice lengths checked above.
        unsafe { qgemm_avx2(x, &mut qx, &mut x_scales, w, out, m) };
        return;
    }
    for i in 0..m {
        x_scales[i] = quantize_row(&x[i * k..(i + 1) * k], &mut qx[i * k..(i + 1) * k]);
    }
    for i in 0..m {
        let xr = &qx[i * k..(i + 1) * k];
        let xs = x_scales[i];
        for j in 0..n {
            let wr = &w.data[j * k..(j + 1) * k];
            let dot: i32 = xr.iter().zip(wr).map(|(&a, &b)| a as i32 * b as i32).sum();
            out[i * n + j] = dot as f32 * xs * w.scales[j];
        }
    }
}

/// Quantizes one activation row symmetrically — `q = round(v · 127/max)`
/// (ties away from zero) clamped to ±127 — and returns the
/// dequantization scale `max/127` (1.0 for all-zero or non-finite rows).
fn quantize_row(row: &[f32], out: &mut [i8]) -> f32 {
    let max = row.iter().fold(0.0f32, |mx, v| mx.max(v.abs()));
    let (scale, inv) = quant_params(max);
    for (q, &v) in out.iter_mut().zip(row) {
        *q = (v * inv).round().clamp(-127.0, 127.0) as i8;
    }
    scale
}

/// `(dequantization scale, quantization multiplier)` for a row whose
/// max-abs is `max`.
fn quant_params(max: f32) -> (f32, f32) {
    if max > 0.0 && max.is_finite() {
        (max / 127.0, 127.0 / max)
    } else {
        (1.0, 1.0)
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn avx2_available() -> bool {
    use std::sync::OnceLock;
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
}

/// The whole quantize + integer-GEMM product under one AVX2 region:
/// activation rows are quantized 8 floats at a time and every row·row
/// dot runs 32 multiply-accumulates per unrolled iteration.
///
/// # Safety
///
/// Caller must guarantee AVX2 is available and the slice lengths match
/// `qgemm_nt`'s contract.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn qgemm_avx2(
    x: &[f32],
    qx: &mut [i8],
    x_scales: &mut [f32],
    w: &QuantizedMat,
    out: &mut [f32],
    m: usize,
) {
    let (k, n) = (w.cols, w.rows);
    for i in 0..m {
        x_scales[i] = quantize_row_avx2(&x[i * k..(i + 1) * k], &mut qx[i * k..(i + 1) * k]);
    }
    for i in 0..m {
        let xr = &qx[i * k..(i + 1) * k];
        let xs = x_scales[i];
        for j in 0..n {
            let wr = &w.data[j * k..(j + 1) * k];
            out[i * n + j] = dot_i8_avx2(xr, wr) as f32 * xs * w.scales[j];
        }
    }
}

/// Vectorized [`quantize_row`]: same rounding decisions (multiply by
/// `127/max`, round half away from zero, clamp, narrow) 8 lanes at a
/// time.
///
/// # Safety
///
/// Caller must guarantee AVX2 is available and `row.len() == out.len()`.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn quantize_row_avx2(row: &[f32], out: &mut [i8]) -> f32 {
    use std::arch::x86_64::*;
    let len = row.len();
    let abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fff_ffff));
    let mut vmax = _mm256_setzero_ps();
    let mut p = 0;
    while p + 8 <= len {
        let v = _mm256_loadu_ps(row.as_ptr().add(p));
        vmax = _mm256_max_ps(vmax, _mm256_and_ps(v, abs_mask));
        p += 8;
    }
    let mut lanes = [0f32; 8];
    _mm256_storeu_ps(lanes.as_mut_ptr(), vmax);
    let mut max = lanes.iter().fold(0.0f32, |mx, v| mx.max(*v));
    while p < len {
        max = max.max(row.get_unchecked(p).abs());
        p += 1;
    }

    let (scale, inv) = quant_params(max);
    let invv = _mm256_set1_ps(inv);
    let lim = _mm256_set1_ps(127.0);
    let neg_lim = _mm256_set1_ps(-127.0);
    let half = _mm256_set1_ps(0.5);
    let sign = _mm256_set1_ps(-0.0);
    p = 0;
    while p + 8 <= len {
        let t = _mm256_mul_ps(_mm256_loadu_ps(row.as_ptr().add(p)), invv);
        let c = _mm256_min_ps(_mm256_max_ps(t, neg_lim), lim);
        // Round half away from zero: add ±0.5, truncate toward zero.
        let h = _mm256_or_ps(_mm256_and_ps(c, sign), half);
        let qi = _mm256_cvttps_epi32(_mm256_add_ps(c, h));
        let w16 = _mm_packs_epi32(_mm256_castsi256_si128(qi), _mm256_extracti128_si256(qi, 1));
        let b8 = _mm_packs_epi16(w16, _mm_setzero_si128());
        _mm_storel_epi64(out.as_mut_ptr().add(p).cast(), b8);
        p += 8;
    }
    while p < len {
        let t = row.get_unchecked(p) * inv;
        *out.get_unchecked_mut(p) = t.round().clamp(-127.0, 127.0) as i8;
        p += 1;
    }
    scale
}

/// i16 multiply-accumulate dot: widen 16 i8 per operand, one `madd` per
/// 16 elements, two independent accumulators (32 MACs per unrolled
/// iteration), 8 × i32 lanes reduced at the end.
///
/// # Safety
///
/// Caller must guarantee AVX2 is available and `a.len() == b.len()`.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn dot_i8_avx2(a: &[i8], b: &[i8]) -> i32 {
    use std::arch::x86_64::*;
    let k = a.len();
    let mut acc0 = _mm256_setzero_si256();
    let mut acc1 = _mm256_setzero_si256();
    let mut p = 0;
    while p + 32 <= k {
        let a0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.as_ptr().add(p) as *const __m128i));
        let b0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.as_ptr().add(p) as *const __m128i));
        acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(a0, b0));
        let a1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.as_ptr().add(p + 16) as *const __m128i));
        let b1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.as_ptr().add(p + 16) as *const __m128i));
        acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(a1, b1));
        p += 32;
    }
    if p + 16 <= k {
        let av = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.as_ptr().add(p) as *const __m128i));
        let bv = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.as_ptr().add(p) as *const __m128i));
        acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(av, bv));
        p += 16;
    }
    let mut lanes = [0i32; 8];
    _mm256_storeu_si256(
        lanes.as_mut_ptr() as *mut __m256i,
        _mm256_add_epi32(acc0, acc1),
    );
    let mut sum: i32 = lanes.iter().sum();
    while p < k {
        sum += *a.get_unchecked(p) as i32 * *b.get_unchecked(p) as i32;
        p += 1;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_round_trips_names() {
        for p in [Precision::F32, Precision::F16, Precision::I8] {
            assert_eq!(Precision::parse(p.as_str()), Some(p));
            assert_eq!(format!("{p}"), p.as_str());
        }
        assert_eq!(Precision::parse("bf16"), None);
        assert_eq!(Precision::default(), Precision::F32);
    }

    #[test]
    fn f16_round_known_values() {
        assert_eq!(f16_round(0.0), 0.0);
        assert_eq!(f16_round(-0.0).to_bits(), (-0.0f32).to_bits());
        assert_eq!(f16_round(1.0), 1.0);
        assert_eq!(f16_round(-2.5), -2.5);
        // 0.1 is not representable; nearest f16 is 0.0999755859375.
        assert_eq!(f16_round(0.1), 0.099_975_586);
        // Max finite f16 and first overflow.
        assert_eq!(f16_round(65504.0), 65504.0);
        assert_eq!(f16_round(65520.0), f32::INFINITY);
        assert_eq!(f16_round(-1.0e9), f32::NEG_INFINITY);
        // Smallest f16 subnormal is 2^-24; half of it rounds to zero (RNE).
        assert_eq!(f16_round(2.0f32.powi(-24)), 2.0f32.powi(-24));
        assert_eq!(f16_round(2.0f32.powi(-26)), 0.0);
        assert!(f16_round(f32::NAN).is_nan());
        assert_eq!(f16_round(f32::INFINITY), f32::INFINITY);
    }

    #[test]
    fn f16_round_is_idempotent_and_monotone() {
        let mut prev = f32::NEG_INFINITY;
        for i in -60..=60 {
            let v = (i as f32) * 0.37 + (i as f32).powi(2) * 0.003;
            let r = f16_round(v);
            assert_eq!(f16_round(r), r, "idempotence at {v}");
            assert!((r - v).abs() <= v.abs() * 0.001 + 1e-7, "error at {v}: {r}");
            if i > -60 {
                // Monotone in the sampled (increasing) inputs.
                let _ = prev;
            }
            prev = r;
        }
        let mut xs = vec![0.1f32, -3.3, 7.7];
        f16_round_slice(&mut xs);
        assert_eq!(xs, vec![f16_round(0.1), f16_round(-3.3), f16_round(7.7)]);
    }

    #[test]
    fn quantized_mat_reconstructs_within_step() {
        let (rows, cols) = (5, 37);
        let w: Vec<f32> = (0..rows * cols)
            .map(|i| ((i as f32 * 0.619).sin()) * (1.0 + i as f32 * 0.01))
            .collect();
        let q = QuantizedMat::from_rows(&w, rows, cols);
        assert_eq!((q.rows(), q.cols()), (rows, cols));
        let deq = q.dequantize();
        for j in 0..rows {
            let step = q.scales()[j];
            for c in 0..cols {
                let err = (deq[j * cols + c] - w[j * cols + c]).abs();
                assert!(
                    err <= 0.5 * step + 1e-7,
                    "row {j} col {c}: err {err} step {step}"
                );
            }
        }
        // A zero row quantizes losslessly with unit scale.
        let z = QuantizedMat::from_rows(&[0.0; 8], 2, 4);
        assert_eq!(z.scales(), &[1.0, 1.0]);
        assert!(z.dequantize().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn qgemm_matches_dequantized_reference() {
        let (m, k, n) = (7, 83, 9);
        let x: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.317).cos() * 2.0).collect();
        let w: Vec<f32> = (0..n * k).map(|i| (i as f32 * 0.131).sin()).collect();
        let q = QuantizedMat::from_rows(&w, n, k);
        let mut out = vec![f32::NAN; m * n]; // qgemm assigns, so NaN must vanish
        qgemm_nt(&x, &q, &mut out, m);

        // Reference: quantize x the same way, f64 dot against dequantized
        // operands. The only extra error vs that reference is f32 rescale
        // rounding.
        let deq_w = q.dequantize();
        for i in 0..m {
            let row = &x[i * k..(i + 1) * k];
            let max = row.iter().fold(0.0f32, |mx, v| mx.max(v.abs()));
            let (xs, inv) = quant_params(max);
            for j in 0..n {
                let mut acc = 0.0f64;
                for p in 0..k {
                    let qv = (row[p] * inv).round().clamp(-127.0, 127.0) * xs;
                    acc += qv as f64 * deq_w[j * k + p] as f64;
                }
                let got = out[i * n + j] as f64;
                assert!(
                    (got - acc).abs() <= 1e-4 * (1.0 + acc.abs()),
                    "({i},{j}): got {got}, want {acc}"
                );
            }
        }
    }

    #[test]
    fn qgemm_handles_degenerate_inputs() {
        let q = QuantizedMat::from_rows(&[1.0, -1.0, 0.5, 0.25], 2, 2);
        let mut out = vec![7.0f32; 0];
        qgemm_nt(&[], &q, &mut out, 0);
        // All-zero activations produce exact zeros.
        let mut out = vec![f32::NAN; 2];
        qgemm_nt(&[0.0, 0.0], &q, &mut out, 1);
        assert_eq!(out, vec![0.0, 0.0]);
    }
}
