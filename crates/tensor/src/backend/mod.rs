//! Pluggable compute backends behind one typed kernel API.
//!
//! Every dense product in the workspace — the matmul family, the im2col'd
//! convolution, and the elementwise activation/bias kernels — dispatches
//! through the [`Backend`] trait. The descriptor every backend consumes is
//! a [`GemmSpec`]: dimensions plus per-operand [`MatLayout`]s and a
//! fan-out hint, replacing the historical `(a_transposed, b_transposed)`
//! boolean-flag call surface. The raw kernel entry points are private to
//! this crate; [`Tensor`]'s `matmul*` methods and
//! [`ComputeCtx`] are the only ways in.
//!
//! Three implementations exist:
//!
//! * [`ScalarBackend`] — the default and the **bitwise reference**. It is
//!   the PR 2 cache-blocked, B-panel-packed kernel with the pinned
//!   per-element accumulation order; every determinism digest in
//!   `tests/determinism.rs` is defined against it, and it is selected
//!   everywhere unless a caller explicitly asks for something else.
//! * `SimdBackend` (feature `simd`, x86_64 only) — an AVX2/FMA
//!   register-blocked microkernel with runtime CPU-feature detection and
//!   scalar fallback. Same inputs, *different accumulation order* (8-lane
//!   FMA with per-tile partial sums), so results match the scalar backend
//!   to documented ULP bounds, not bitwise — see
//!   `crates/tensor/tests/backend_conformance.rs`.
//! * Elementwise ops (`relu_inplace`, `bias_add_rows`) are pure per-element
//!   maps: every backend produces bitwise-identical results for them by
//!   construction.
//!
//! # Selection
//!
//! Nothing is implicit: [`ComputeCtx`] carries the chosen backend handle
//! (plus workspace access) and is threaded explicitly through
//! `Graph`/`Trainer`/the serve scheduler. [`ComputeCtx::default`] is the
//! scalar backend, so a build with `--features simd` is still
//! bitwise-unchanged until a caller opts a context in via
//! [`ComputeCtx::auto`], [`select`], or `DEEPMORPH_BACKEND`.

use std::sync::Arc;
use std::sync::OnceLock;

use crate::workspace::{self, Workspace};
use crate::{Tensor, TensorError};

pub mod quant;
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub mod simd;
pub mod tune;

/// Storage layout of one GEMM operand, relative to the logical matrix the
/// product is defined over.
///
/// `RowMajor` means the operand slice stores the logical matrix directly;
/// `Transposed` means the slice stores its transpose (so the kernel packs
/// or strides it). For `out = A·B` with `A: [m, k]` and `B: [k, n]`:
///
/// | operand | `RowMajor` slice shape | `Transposed` slice shape |
/// |---------|------------------------|--------------------------|
/// | lhs `A` | `[m, k]`               | `[k, m]`                 |
/// | rhs `B` | `[k, n]`               | `[n, k]`                 |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatLayout {
    /// The slice stores the logical matrix row-major.
    RowMajor,
    /// The slice stores the logical matrix's transpose row-major.
    Transposed,
}

/// Typed descriptor of one GEMM: `out[m, n] += A[m, k] · B[k, n]`, with
/// the storage layout of each operand and a parallelism hint.
///
/// This is the single call surface every [`Backend`] consumes — it
/// replaces the historical boolean-flag (`a_transposed`, `b_transposed`)
/// kernel entry points. Constructors cover the three products the
/// networks use (`nn`, `nt`, `tn`); [`GemmSpec::with_layouts`] spells any
/// combination, including the (never hot) double-transposed product.
///
/// # Accumulation semantics
///
/// The output **accumulates**: callers zero `out` for a plain product.
/// Zero-skip semantics are part of the reference contract and follow the
/// rhs layout: products with a `RowMajor` rhs skip `A` coefficients that
/// are exactly `0.0` (matching the historical `NN`/`TN` kernels, which
/// affects `-0.0`/`NaN`/`inf` propagation); products with a `Transposed`
/// rhs never skip (the historical `NT` dot-product kernel).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmSpec {
    /// Output rows.
    pub m: usize,
    /// Inner (contraction) dimension.
    pub k: usize,
    /// Output columns.
    pub n: usize,
    /// Layout of the lhs operand.
    pub lhs: MatLayout,
    /// Layout of the rhs operand.
    pub rhs: MatLayout,
    /// Request fan-out over output rows. A hint: backends may run inline
    /// when the product is too small to pay for dispatch or when no
    /// worker threads exist.
    pub parallel: bool,
}

impl GemmSpec {
    /// `out += A[m,k] · B[k,n]`, both operands row-major.
    pub fn nn(m: usize, k: usize, n: usize) -> Self {
        GemmSpec::with_layouts(m, k, n, MatLayout::RowMajor, MatLayout::RowMajor)
    }

    /// `out += A[m,k] · B[n,k]ᵀ` (rhs stored transposed — the dense/conv
    /// forward product).
    pub fn nt(m: usize, k: usize, n: usize) -> Self {
        GemmSpec::with_layouts(m, k, n, MatLayout::RowMajor, MatLayout::Transposed)
    }

    /// `out += A[k,m]ᵀ · B[k,n]` (lhs stored transposed — the weight
    /// gradient product).
    pub fn tn(m: usize, k: usize, n: usize) -> Self {
        GemmSpec::with_layouts(m, k, n, MatLayout::Transposed, MatLayout::RowMajor)
    }

    /// A spec with explicit operand layouts.
    pub fn with_layouts(m: usize, k: usize, n: usize, lhs: MatLayout, rhs: MatLayout) -> Self {
        GemmSpec {
            m,
            k,
            n,
            lhs,
            rhs,
            parallel: false,
        }
    }

    /// Returns the spec with the fan-out hint set.
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Returns the spec with the fan-out hint sized by the product: on
    /// when the `parallel` feature is active and the multiply-accumulate
    /// count clears the dispatch-cost grain.
    pub fn parallel_worthwhile(self) -> Self {
        let worthwhile = cfg!(feature = "parallel")
            && self.m * self.k * self.n >= crate::chunks::PAR_GRAIN_FLOPS;
        self.parallel(worthwhile)
    }

    /// Required lhs slice length.
    pub fn lhs_len(&self) -> usize {
        self.m * self.k
    }

    /// Required rhs slice length.
    pub fn rhs_len(&self) -> usize {
        self.k * self.n
    }

    /// Required output slice length.
    pub fn out_len(&self) -> usize {
        self.m * self.n
    }

    /// `true` when the reference contract skips exactly-zero lhs
    /// coefficients (see the type-level docs).
    pub fn skips_zero_lhs(&self) -> bool {
        self.rhs == MatLayout::RowMajor
    }

    /// Panics unless the slices match the spec (backends call this before
    /// touching any data, so a shape bug is a loud assert at the seam, not
    /// UB or silent corruption inside a kernel).
    pub fn check(&self, a: &[f32], b: &[f32], out: &[f32]) {
        assert_eq!(a.len(), self.lhs_len(), "gemm: lhs length");
        assert_eq!(b.len(), self.rhs_len(), "gemm: rhs length");
        assert_eq!(out.len(), self.out_len(), "gemm: out length");
    }
}

/// A compute backend: the kernels behind every layer forward/backward.
///
/// Implementations must be `Send + Sync` — one handle is shared across
/// serving workers and training threads. See the module docs for the
/// determinism contract each implementation offers.
pub trait Backend: Send + Sync + std::fmt::Debug {
    /// Stable identifier (used in logs, benches, and tuning-file keys).
    fn name(&self) -> &'static str;

    /// Accumulates the product described by `spec` into `out`.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths disagree with the spec.
    fn gemm(&self, spec: &GemmSpec, a: &[f32], b: &[f32], out: &mut [f32]);

    /// The im2col'd convolution product: `cols[m, k] @ weight[n, k]ᵀ`,
    /// where `m = batch · output positions`, `k` is the patch length, and
    /// `n` the output channels. Default: exactly [`Backend::gemm`] with an
    /// `nt` spec — the lowering *is* a GEMM; a backend only overrides this
    /// to fuse packing with the gather.
    fn conv_cols_gemm(&self, spec: &GemmSpec, cols: &[f32], weight: &[f32], out: &mut [f32]) {
        debug_assert_eq!(
            spec.rhs,
            MatLayout::Transposed,
            "conv weight is [out_c, patch]"
        );
        self.gemm(spec, cols, weight, out);
    }

    /// Elementwise `x[i] = max(x[i], 0)`. Pure per-element map: every
    /// backend is bitwise-identical here.
    fn relu_inplace(&self, x: &mut [f32]) {
        for v in x.iter_mut() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
    }

    /// Adds `bias` to every `bias.len()`-sized row of `x`. Pure
    /// per-element map: every backend is bitwise-identical here.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` is not a multiple of `bias.len()`.
    fn bias_add_rows(&self, x: &mut [f32], bias: &[f32]) {
        if bias.is_empty() {
            return;
        }
        assert_eq!(x.len() % bias.len(), 0, "bias_add_rows: ragged rows");
        for row in x.chunks_exact_mut(bias.len()) {
            for (v, &b) in row.iter_mut().zip(bias) {
                *v += b;
            }
        }
    }
}

/// Shared, cheaply clonable handle to a backend.
pub type BackendHandle = Arc<dyn Backend>;

/// The default backend: the PR 2 cache-blocked scalar kernel with the
/// pinned per-element accumulation order. This is the bitwise reference
/// every digest and cross-build test is defined against.
#[derive(Debug, Default, Clone, Copy)]
pub struct ScalarBackend;

impl Backend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn gemm(&self, spec: &GemmSpec, a: &[f32], b: &[f32], out: &mut [f32]) {
        spec.check(a, b, out);
        // Per-shape kernel timing; `None` (one relaxed load) unless
        // telemetry is armed and `DEEPMORPH_KERNEL_TIMING=1`.
        let _timer = deepmorph_telemetry::kernel_timer(spec.m, spec.k, spec.n);
        use crate::gemm::{gemm_into, GemmOp};
        match (spec.lhs, spec.rhs) {
            (MatLayout::RowMajor, MatLayout::RowMajor) => {
                gemm_into(GemmOp::NN, a, b, out, spec.m, spec.k, spec.n, spec.parallel);
            }
            (MatLayout::RowMajor, MatLayout::Transposed) => {
                gemm_into(GemmOp::NT, a, b, out, spec.m, spec.k, spec.n, spec.parallel);
            }
            (MatLayout::Transposed, MatLayout::RowMajor) => {
                gemm_into(GemmOp::TN, a, b, out, spec.m, spec.k, spec.n, spec.parallel);
            }
            (MatLayout::Transposed, MatLayout::Transposed) => {
                // Never on a hot path (no layer emits it); define it by
                // materializing the lhs row-major, then running the NT
                // reference kernel — semantics documented on `GemmSpec`.
                let packed = crate::gemm::pack_a_transposed(a, spec.m, spec.k);
                gemm_into(
                    GemmOp::NT,
                    &packed,
                    b,
                    out,
                    spec.m,
                    spec.k,
                    spec.n,
                    spec.parallel,
                );
                workspace::recycle(packed);
            }
        }
    }
}

static SCALAR: OnceLock<BackendHandle> = OnceLock::new();

/// The shared [`ScalarBackend`] handle.
pub fn scalar() -> BackendHandle {
    Arc::clone(SCALAR.get_or_init(|| Arc::new(ScalarBackend)))
}

/// Which backend a caller asks for; resolved by [`select`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// The bitwise-reference scalar kernel (the default everywhere).
    #[default]
    Scalar,
    /// The SIMD microkernel if this build carries it *and* the CPU
    /// supports it; the scalar backend otherwise.
    Simd,
    /// The fastest backend available: SIMD when compiled + detected,
    /// scalar otherwise.
    Auto,
}

impl BackendKind {
    /// Parses `"scalar"` / `"simd"` / `"auto"` (used by
    /// `DEEPMORPH_BACKEND` and CLI flags).
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Some(BackendKind::Scalar),
            "simd" => Some(BackendKind::Simd),
            "auto" => Some(BackendKind::Auto),
            _ => None,
        }
    }
}

/// Resolves a [`BackendKind`] to a concrete handle. `Simd`/`Auto` fall
/// back to the scalar backend when the `simd` feature is off or the CPU
/// lacks AVX2+FMA — callers can always ask and always get a valid kernel.
pub fn select(kind: BackendKind) -> BackendHandle {
    match kind {
        BackendKind::Scalar => scalar(),
        BackendKind::Simd | BackendKind::Auto => simd_or_scalar(),
    }
}

/// The SIMD backend when compiled in and runtime-supported, otherwise the
/// scalar backend. The detection result (and the tuning-file load) is
/// cached after the first call.
pub fn simd_or_scalar() -> BackendHandle {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        static SIMD: OnceLock<Option<BackendHandle>> = OnceLock::new();
        if let Some(h) =
            SIMD.get_or_init(|| simd::SimdBackend::detect().map(|b| Arc::new(b) as BackendHandle))
        {
            return Arc::clone(h);
        }
    }
    scalar()
}

/// `true` when [`simd_or_scalar`] resolves to a real SIMD backend.
pub fn simd_available() -> bool {
    simd_or_scalar().name() != "scalar"
}

/// The SIMD backend with an explicit block-size tuning — the autotuner's
/// door for measuring candidates before persisting a winner. `None` when
/// the CPU lacks AVX2+FMA.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub fn simd_with_tuning(t: tune::GemmTuning) -> Option<BackendHandle> {
    simd::SimdBackend::new(t).map(|b| Arc::new(b) as BackendHandle)
}

/// Explicit compute context: the backend handle a graph/trainer/scheduler
/// runs its kernels on, plus access to the per-thread scratch workspace.
///
/// Contexts are cheap to clone (one `Arc` bump) and are threaded
/// explicitly — a `Graph` owns one, the serve scheduler hands one to each
/// replica it builds — instead of kernels consulting process-global
/// state. The default context is the scalar (bitwise-reference) backend.
#[derive(Debug, Clone)]
pub struct ComputeCtx {
    backend: BackendHandle,
}

impl Default for ComputeCtx {
    fn default() -> Self {
        ComputeCtx::scalar()
    }
}

impl ComputeCtx {
    /// A context on the bitwise-reference scalar backend.
    pub fn scalar() -> Self {
        ComputeCtx { backend: scalar() }
    }

    /// A context on the fastest backend this build + CPU offers.
    pub fn auto() -> Self {
        ComputeCtx {
            backend: select(BackendKind::Auto),
        }
    }

    /// A context on an explicit backend handle.
    pub fn with_backend(backend: BackendHandle) -> Self {
        ComputeCtx { backend }
    }

    /// A context resolved from a [`BackendKind`].
    pub fn for_kind(kind: BackendKind) -> Self {
        ComputeCtx {
            backend: select(kind),
        }
    }

    /// A context from the `DEEPMORPH_BACKEND` environment variable
    /// (`scalar` | `simd` | `auto`; unset or unknown = scalar).
    pub fn from_env() -> Self {
        let kind = std::env::var("DEEPMORPH_BACKEND")
            .ok()
            .and_then(|v| BackendKind::parse(&v))
            .unwrap_or_default();
        ComputeCtx::for_kind(kind)
    }

    /// The backend handle.
    pub fn backend(&self) -> &BackendHandle {
        &self.backend
    }

    /// The backend's stable name.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Runs `f` with the calling thread's scratch [`Workspace`] — the
    /// context's explicit door to the arena every kernel draws buffers
    /// from (one arena per thread; see [`crate::workspace`]).
    pub fn with_workspace<R>(&self, f: impl FnOnce(&mut Workspace) -> R) -> R {
        workspace::with(f)
    }

    /// `A @ B` on this context's backend (shapes as
    /// [`Tensor::matmul`](crate::Tensor::matmul)).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] or
    /// [`TensorError::MatmulDimMismatch`].
    pub fn matmul(&self, a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
        self.product(a, b, MatLayout::RowMajor, MatLayout::RowMajor, "matmul")
    }

    /// `A @ Bᵀ` on this context's backend (shapes as
    /// [`Tensor::matmul_nt`](crate::Tensor::matmul_nt)).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] or
    /// [`TensorError::MatmulDimMismatch`].
    pub fn matmul_nt(&self, a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
        self.product(
            a,
            b,
            MatLayout::RowMajor,
            MatLayout::Transposed,
            "matmul_nt",
        )
    }

    /// `Aᵀ @ B` on this context's backend (shapes as
    /// [`Tensor::matmul_tn`](crate::Tensor::matmul_tn)).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] or
    /// [`TensorError::MatmulDimMismatch`].
    pub fn matmul_tn(&self, a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
        self.product(
            a,
            b,
            MatLayout::Transposed,
            MatLayout::RowMajor,
            "matmul_tn",
        )
    }

    fn product(
        &self,
        a: &Tensor,
        b: &Tensor,
        lhs: MatLayout,
        rhs: MatLayout,
        op: &'static str,
    ) -> Result<Tensor, TensorError> {
        let spec = a.gemm_spec(b, lhs, rhs, op)?.parallel_worthwhile();
        let mut out = workspace::tensor_zeroed(&[spec.m, spec.n]);
        self.backend.gemm(&spec, a.data(), b.data(), out.data_mut());
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_constructors_set_layouts_and_lengths() {
        let s = GemmSpec::nn(2, 3, 4);
        assert_eq!((s.lhs, s.rhs), (MatLayout::RowMajor, MatLayout::RowMajor));
        assert_eq!((s.lhs_len(), s.rhs_len(), s.out_len()), (6, 12, 8));
        assert!(s.skips_zero_lhs());

        let s = GemmSpec::nt(2, 3, 4).parallel(true);
        assert_eq!((s.lhs, s.rhs), (MatLayout::RowMajor, MatLayout::Transposed));
        assert!(s.parallel);
        assert!(!s.skips_zero_lhs());

        let s = GemmSpec::tn(2, 3, 4);
        assert_eq!((s.lhs, s.rhs), (MatLayout::Transposed, MatLayout::RowMajor));
        assert!(s.skips_zero_lhs());
    }

    #[test]
    #[should_panic(expected = "lhs length")]
    fn scalar_backend_checks_lengths() {
        ScalarBackend.gemm(&GemmSpec::nn(2, 2, 2), &[0.0; 3], &[0.0; 4], &mut [0.0; 4]);
    }

    #[test]
    fn scalar_backend_matches_tensor_matmul_bitwise() {
        let a =
            Tensor::from_vec((0..12).map(|v| v as f32 * 0.37 - 1.0).collect(), &[3, 4]).unwrap();
        let b =
            Tensor::from_vec((0..20).map(|v| (v as f32 * 0.11).sin()).collect(), &[4, 5]).unwrap();
        let via_tensor = a.matmul(&b).unwrap();
        let mut out = vec![0.0f32; 15];
        scalar().gemm(&GemmSpec::nn(3, 4, 5), a.data(), b.data(), &mut out);
        assert_eq!(via_tensor.data(), &out[..]);
    }

    #[test]
    fn double_transposed_product_matches_materialized() {
        // A stored as [k, m], B stored as [n, k]: out = Aᵀ·Bᵀ... spelled
        // against the NT reference after materializing the lhs.
        let (m, k, n) = (3usize, 5usize, 4usize);
        let a_t: Vec<f32> = (0..k * m).map(|v| (v as f32 * 0.23).cos()).collect();
        let b_t: Vec<f32> = (0..n * k).map(|v| v as f32 * 0.17 - 2.0).collect();
        // Materialize A row-major and use the NT kernel as the oracle.
        let mut a = vec![0.0f32; m * k];
        for p in 0..k {
            for i in 0..m {
                a[i * k + p] = a_t[p * m + i];
            }
        }
        let mut expect = vec![0.0f32; m * n];
        scalar().gemm(&GemmSpec::nt(m, k, n), &a, &b_t, &mut expect);
        let mut got = vec![0.0f32; m * n];
        scalar().gemm(
            &GemmSpec::with_layouts(m, k, n, MatLayout::Transposed, MatLayout::Transposed),
            &a_t,
            &b_t,
            &mut got,
        );
        assert_eq!(expect, got);
    }

    #[test]
    fn elementwise_defaults() {
        let mut x = vec![-1.0f32, 0.0, 2.5, -0.0];
        ScalarBackend.relu_inplace(&mut x);
        assert_eq!(x, vec![0.0, 0.0, 2.5, -0.0]);

        let mut y = vec![1.0f32, 2.0, 3.0, 4.0];
        ScalarBackend.bias_add_rows(&mut y, &[10.0, 20.0]);
        assert_eq!(y, vec![11.0, 22.0, 13.0, 24.0]);
        ScalarBackend.bias_add_rows(&mut y, &[]);
        assert_eq!(y, vec![11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn kind_parsing_and_selection_fall_back_to_scalar() {
        assert_eq!(BackendKind::parse("Scalar"), Some(BackendKind::Scalar));
        assert_eq!(BackendKind::parse("SIMD"), Some(BackendKind::Simd));
        assert_eq!(BackendKind::parse("auto"), Some(BackendKind::Auto));
        assert_eq!(BackendKind::parse("gpu"), None);
        assert_eq!(select(BackendKind::Scalar).name(), "scalar");
        // Simd/Auto resolve to *something* valid on every build.
        let name = select(BackendKind::Auto).name();
        assert!(name == "scalar" || name.starts_with("simd"));
    }

    #[test]
    fn ctx_matmul_dispatches_and_validates() {
        let ctx = ComputeCtx::default();
        assert_eq!(ctx.backend_name(), "scalar");
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::eye(2);
        let c = ctx.matmul(&a, &b).unwrap();
        assert_eq!(c.data(), a.data());
        let nt = ctx.matmul_nt(&a, &b).unwrap();
        assert_eq!(nt.data(), a.matmul_nt(&b).unwrap().data());
        let tn = ctx.matmul_tn(&a, &b).unwrap();
        assert_eq!(tn.data(), a.matmul_tn(&b).unwrap().data());
        assert!(ctx.matmul(&a, &Tensor::ones(&[3, 2])).is_err());
        ctx.with_workspace(|ws| {
            let _ = ws.stats();
        });
    }
}
