//! AVX2/FMA register-blocked GEMM microkernel (feature `simd`, x86_64).
//!
//! Classic three-level blocking: the rhs is packed once into `NR`-wide
//! micro-panels (zero-padded at the edge), then each `mc`-row strip of the
//! output packs its lhs block into `MR`-row micro-panels and walks
//! `MR × NR` output tiles. The microkernel holds one tile in registers —
//! `MR = 6` rows × `NR = 16` columns = 12 ymm accumulators — broadcasting
//! one lhs scalar against two rhs vectors per FMA. Block sizes `mc/kc/nc`
//! come from [`GemmTuning`] (persisted by `calibrate gemm`, loaded at
//! backend init).
//!
//! # Numerics
//!
//! This backend is **not** bitwise-compatible with the scalar reference:
//! FMAs contract the multiply-add rounding and each output element is the
//! sum of 8-lane partial accumulators, so the accumulation order differs.
//! It never skips zero coefficients. The conformance suite
//! (`tests/backend_conformance.rs`) pins it to the documented forward
//! error bound against an `f64` reference: for every element,
//! `|simd − ref| ≤ 2·k·ε·Σₚ|aᵢₚ·bₚⱼ|` (`ε = f32::EPSILON`).
//!
//! # Safety
//!
//! Every `unsafe` block below executes AVX2/FMA intrinsics; construction
//! is gated on [`SimdBackend::new`] verifying `avx2` **and** `fma` via
//! `is_x86_feature_detected!`, so the target-feature contract holds on
//! every path that can reach the kernel.

use std::arch::x86_64::*;

use super::tune::{self, GemmTuning};
use super::{Backend, GemmSpec, MatLayout, ScalarBackend};
use crate::workspace;

/// Microkernel tile rows (lhs values broadcast per step).
pub const MR: usize = 6;
/// Microkernel tile columns (two 8-lane ymm vectors).
pub const NR: usize = 16;

/// Products below this multiply-accumulate count run on the scalar
/// backend — packing overhead beats the vector win on tiny shapes.
const SIMD_MIN_FLOPS: usize = 8 * 1024;

/// The AVX2/FMA backend. Constructed only through [`SimdBackend::new`] /
/// [`SimdBackend::detect`], which verify the CPU features the kernels are
/// compiled for.
#[derive(Debug, Clone)]
pub struct SimdBackend {
    tuning: GemmTuning,
}

impl SimdBackend {
    /// Builds the backend with an explicit tuning if this CPU supports
    /// AVX2+FMA; `None` otherwise. Block sizes are sanitized and rounded
    /// to microkernel multiples.
    pub fn new(tuning: GemmTuning) -> Option<SimdBackend> {
        if !(std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("fma"))
        {
            return None;
        }
        let t = tuning.sanitized();
        Some(SimdBackend {
            tuning: GemmTuning {
                mc: round_up(t.mc, MR),
                kc: t.kc,
                nc: round_up(t.nc, NR),
            },
        })
    }

    /// Builds the backend with the persisted tuning for this machine
    /// ([`tune::load`]), falling back to [`GemmTuning::default`] when no
    /// tuning file exists.
    pub fn detect() -> Option<SimdBackend> {
        SimdBackend::new(tune::load().unwrap_or_default())
    }

    /// The (rounded) block sizes this backend runs with.
    pub fn tuning(&self) -> GemmTuning {
        self.tuning
    }
}

impl Backend for SimdBackend {
    fn name(&self) -> &'static str {
        "simd-avx2"
    }

    fn gemm(&self, spec: &GemmSpec, a: &[f32], b: &[f32], out: &mut [f32]) {
        spec.check(a, b, out);
        let (m, k, n) = (spec.m, spec.k, spec.n);
        if m == 0 || n == 0 || k == 0 {
            return;
        }
        if m * k * n < SIMD_MIN_FLOPS {
            // Delegation is timed by the scalar kernel's own hook.
            return ScalarBackend.gemm(spec, a, b, out);
        }
        // Per-shape kernel timing; `None` (one relaxed load) unless
        // telemetry is armed and `DEEPMORPH_KERNEL_TIMING=1`.
        let _timer = deepmorph_telemetry::kernel_timer(m, k, n);
        let GemmTuning { mc, kc, nc } = self.tuning;

        // Pack the whole rhs once: per kc-block, NR-wide micro-panels,
        // zero-padded to a full NR at the right edge.
        let n_pad = round_up(n, NR);
        let packed_b = pack_b(spec, b, kc, n_pad);

        let strip = |strip_idx: usize, out_strip: &mut [f32]| {
            let i0 = strip_idx * mc;
            let rows = out_strip.len() / n;
            process_strip(spec, a, &packed_b, out_strip, i0, rows, kc, nc, n_pad);
        };

        if spec.parallel {
            // Grain 0: the caller sized the fan-out decision; the chunk
            // helper still runs inline when no worker threads exist.
            crate::chunks::for_chunks_mut(out, mc * n, 0, |i, chunk| strip(i, chunk));
        } else {
            for (i, chunk) in out.chunks_mut(mc * n).enumerate() {
                strip(i, chunk);
            }
        }
        workspace::recycle(packed_b);
    }
}

fn round_up(v: usize, to: usize) -> usize {
    v.div_ceil(to) * to
}

#[inline]
fn a_at(spec: &GemmSpec, a: &[f32], i: usize, p: usize) -> f32 {
    match spec.lhs {
        MatLayout::RowMajor => a[i * spec.k + p],
        MatLayout::Transposed => a[p * spec.m + i],
    }
}

/// Packs the full rhs: kc-blocks back to back, each stored as
/// `n_pad / NR` micro-panels of `kc_eff × NR` (panel-row `p`, then lane
/// `j`), right edge zero-padded. Block `pc` starts at `pc · kc · n_pad`.
fn pack_b(spec: &GemmSpec, b: &[f32], kc: usize, n_pad: usize) -> Vec<f32> {
    let (k, n) = (spec.k, spec.n);
    let mut dst = workspace::take_raw(k * n_pad);
    let mut pc = 0;
    while pc < k {
        let kc_eff = kc.min(k - pc);
        let block = &mut dst[pc * n_pad..pc * n_pad + kc_eff * n_pad];
        for jm in 0..n_pad / NR {
            let j0 = jm * NR;
            let panel = &mut block[jm * kc_eff * NR..(jm + 1) * kc_eff * NR];
            let full = j0 + NR <= n;
            match spec.rhs {
                MatLayout::RowMajor if full => {
                    for p in 0..kc_eff {
                        panel[p * NR..(p + 1) * NR]
                            .copy_from_slice(&b[(pc + p) * n + j0..(pc + p) * n + j0 + NR]);
                    }
                }
                MatLayout::RowMajor => {
                    let w = n - j0;
                    for p in 0..kc_eff {
                        let row = &b[(pc + p) * n + j0..(pc + p) * n + n];
                        panel[p * NR..p * NR + w].copy_from_slice(row);
                        panel[p * NR + w..(p + 1) * NR].fill(0.0);
                    }
                }
                MatLayout::Transposed => {
                    let w = NR.min(n - j0);
                    for jj in 0..w {
                        let col = &b[(j0 + jj) * k + pc..(j0 + jj) * k + pc + kc_eff];
                        for (p, &v) in col.iter().enumerate() {
                            panel[p * NR + jj] = v;
                        }
                    }
                    if w < NR {
                        for p in 0..kc_eff {
                            panel[p * NR + w..(p + 1) * NR].fill(0.0);
                        }
                    }
                }
            }
        }
        pc += kc;
    }
    dst
}

/// Runs every kc-block of one `rows`-row output strip starting at global
/// row `i0`.
#[allow(clippy::too_many_arguments)]
fn process_strip(
    spec: &GemmSpec,
    a: &[f32],
    packed_b: &[f32],
    out_strip: &mut [f32],
    i0: usize,
    rows: usize,
    kc: usize,
    nc: usize,
    n_pad: usize,
) {
    let (k, n) = (spec.k, spec.n);
    let m_tiles = rows.div_ceil(MR);
    let mut tile = [0.0f32; MR * NR];
    let mut pc = 0;
    while pc < k {
        let kc_eff = kc.min(k - pc);
        // Pack this strip's lhs block: MR-row micro-panels (panel-depth
        // `p`, then row lane), bottom edge zero-padded.
        let mut packed_a = workspace::take_raw(m_tiles * MR * kc_eff);
        for mi in 0..m_tiles {
            let panel = &mut packed_a[mi * kc_eff * MR..(mi + 1) * kc_eff * MR];
            let r0 = mi * MR;
            let h = MR.min(rows - r0);
            for p in 0..kc_eff {
                for ii in 0..MR {
                    panel[p * MR + ii] = if ii < h {
                        a_at(spec, a, i0 + r0 + ii, pc + p)
                    } else {
                        0.0
                    };
                }
            }
        }

        let b_block = &packed_b[pc * n_pad..pc * n_pad + kc_eff * n_pad];
        // Walk rhs micro-panels in nc-wide groups (panel stays hot across
        // the mi loop; the group bound keeps the active pack in L2).
        let mut jc = 0;
        while jc < n_pad {
            let jc_end = (jc + nc).min(n_pad);
            for jm in jc / NR..jc_end / NR {
                let b_panel = &b_block[jm * kc_eff * NR..(jm + 1) * kc_eff * NR];
                let j0 = jm * NR;
                let w = NR.min(n - j0);
                for mi in 0..m_tiles {
                    let a_panel = &packed_a[mi * kc_eff * MR..(mi + 1) * kc_eff * MR];
                    // SAFETY: construction verified avx2+fma (see module
                    // docs); panels are exactly kc_eff·MR / kc_eff·NR long.
                    unsafe {
                        tile_mr_nr(
                            kc_eff,
                            a_panel.as_ptr(),
                            b_panel.as_ptr(),
                            tile.as_mut_ptr(),
                        );
                    }
                    let r0 = mi * MR;
                    let h = MR.min(rows - r0);
                    for ii in 0..h {
                        let dst = &mut out_strip[(r0 + ii) * n + j0..(r0 + ii) * n + j0 + w];
                        let src = &tile[ii * NR..ii * NR + w];
                        for (o, &v) in dst.iter_mut().zip(src) {
                            *o += v;
                        }
                    }
                }
            }
            jc = jc_end;
        }
        workspace::recycle(packed_a);
        pc += kc;
    }
}

/// Computes one `MR × NR` tile: `tile = A_panel · B_panel` over `kc`
/// depth steps, 12 ymm accumulators, FMA contraction.
///
/// # Safety
///
/// Caller must guarantee AVX2+FMA are available and that `ap`/`bp` point
/// to at least `kc·MR` / `kc·NR` valid floats and `tile` to `MR·NR`.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn tile_mr_nr(kc: usize, ap: *const f32, bp: *const f32, tile: *mut f32) {
    let mut acc0 = [_mm256_setzero_ps(); MR];
    let mut acc1 = [_mm256_setzero_ps(); MR];
    for p in 0..kc {
        let b0 = _mm256_loadu_ps(bp.add(p * NR));
        let b1 = _mm256_loadu_ps(bp.add(p * NR + 8));
        for i in 0..MR {
            let av = _mm256_broadcast_ss(&*ap.add(p * MR + i));
            acc0[i] = _mm256_fmadd_ps(av, b0, acc0[i]);
            acc1[i] = _mm256_fmadd_ps(av, b1, acc1[i]);
        }
    }
    for i in 0..MR {
        _mm256_storeu_ps(tile.add(i * NR), acc0[i]);
        _mm256_storeu_ps(tile.add(i * NR + 8), acc1[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(len: usize, salt: u64) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let h = (i as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(salt.wrapping_mul(0x2545_F491_4F6C_DD1D));
                ((h >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
            })
            .collect()
    }

    /// `f64` reference product with per-element absolute-term sums (for
    /// the documented forward error bound).
    fn reference(spec: &GemmSpec, a: &[f32], b: &[f32]) -> (Vec<f64>, Vec<f64>) {
        let (m, k, n) = (spec.m, spec.k, spec.n);
        let mut out = vec![0.0f64; m * n];
        let mut abs = vec![0.0f64; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    let av = a_at(spec, a, i, p) as f64;
                    let bv = match spec.rhs {
                        MatLayout::RowMajor => b[p * n + j],
                        MatLayout::Transposed => b[j * k + p],
                    } as f64;
                    out[i * n + j] += av * bv;
                    abs[i * n + j] += (av * bv).abs();
                }
            }
        }
        (out, abs)
    }

    fn assert_within_bound(spec: &GemmSpec, got: &[f32], refs: &(Vec<f64>, Vec<f64>)) {
        let (expect, abs) = refs;
        for (i, (&g, (&e, &s))) in got.iter().zip(expect.iter().zip(abs.iter())).enumerate() {
            let tol = 2.0 * spec.k as f64 * f32::EPSILON as f64 * s + 1e-12;
            assert!(
                ((g as f64) - e).abs() <= tol,
                "elem {i}: got {g}, want {e} ± {tol} ({spec:?})"
            );
        }
    }

    #[test]
    fn simd_matches_f64_reference_within_bound() {
        let Some(be) = SimdBackend::new(GemmTuning::default()) else {
            eprintln!("skipping: no AVX2+FMA on this CPU");
            return;
        };
        for &(m, k, n) in &[
            (1usize, 40usize, 1usize),
            (MR, 64, NR),
            (MR + 1, 33, NR + 1),
            (37, 129, 50),
            (64, 300, 48),
            (200, 17, 3),
        ] {
            for lhs in [MatLayout::RowMajor, MatLayout::Transposed] {
                for rhs in [MatLayout::RowMajor, MatLayout::Transposed] {
                    let spec = GemmSpec::with_layouts(m, k, n, lhs, rhs);
                    let a = synth(spec.lhs_len(), 7);
                    let b = synth(spec.rhs_len(), 11);
                    let refs = reference(&spec, &a, &b);
                    let mut out = vec![0.0f32; m * n];
                    be.gemm(&spec, &a, &b, &mut out);
                    assert_within_bound(&spec, &out, &refs);
                    // Parallel fan-out must stay within the same bound.
                    let mut out_p = vec![0.0f32; m * n];
                    be.gemm(&spec.parallel(true), &a, &b, &mut out_p);
                    assert_within_bound(&spec, &out_p, &refs);
                }
            }
        }
    }

    #[test]
    fn simd_accumulates_into_existing_output() {
        let Some(be) = SimdBackend::new(GemmTuning::default()) else {
            return;
        };
        // Large enough to clear the scalar-fallback threshold.
        let (m, k, n) = (24, 64, 24);
        let spec = GemmSpec::nn(m, k, n);
        let a = synth(m * k, 3);
        let b = synth(k * n, 4);
        let mut base = vec![0.0f32; m * n];
        be.gemm(&spec, &a, &b, &mut base);
        let mut out = vec![1.0f32; m * n];
        be.gemm(&spec, &a, &b, &mut out);
        for (o, bse) in out.iter().zip(&base) {
            assert!((o - 1.0 - bse).abs() <= 1e-4 * (1.0 + bse.abs()));
        }
    }

    #[test]
    fn tiny_products_fall_back_to_scalar_bitwise() {
        let Some(be) = SimdBackend::new(GemmTuning::default()) else {
            return;
        };
        let spec = GemmSpec::nt(3, 5, 4);
        let a = synth(15, 1);
        let b = synth(20, 2);
        let mut simd_out = vec![0.0f32; 12];
        be.gemm(&spec, &a, &b, &mut simd_out);
        let mut scalar_out = vec![0.0f32; 12];
        ScalarBackend.gemm(&spec, &a, &b, &mut scalar_out);
        assert_eq!(simd_out, scalar_out);
    }

    #[test]
    fn block_sizes_are_rounded_to_microkernel_multiples() {
        let Some(be) = SimdBackend::new(GemmTuning {
            mc: 50,
            kc: 100,
            nc: 100,
        }) else {
            return;
        };
        let t = be.tuning();
        assert_eq!(t.mc % MR, 0);
        assert_eq!(t.nc % NR, 0);
        assert_eq!(t.kc, 100);
    }
}
