//! Persisted GEMM block-size tuning.
//!
//! The SIMD microkernel blocks its loops as `mc × kc` packed-A strips
//! against `kc × nc` packed-B panels; the best sizes depend on the cache
//! hierarchy, so `deepmorph-bench`'s `calibrate gemm` subcommand measures
//! them once and persists the winner here. Backend init then *loads* the
//! tuned sizes instead of re-measuring on every invocation (the historical
//! behaviour this module fixes).
//!
//! Files are plain `key=value` text under [`tune_dir`] (override with
//! `DEEPMORPH_TUNE_DIR`), one file per CPU-feature key ([`cpu_key`]), so a
//! tuning measured on an AVX-512 box is never applied to a plain-AVX2 one.
//! A missing or malformed file is never an error — callers fall back to
//! [`GemmTuning::default`], which is sized for the common 32 KiB L1d /
//! 1 MiB L2 case.

use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Cache block sizes for the register-blocked SIMD GEMM: the kernel packs
/// `mc × kc` strips of the lhs and `kc × nc` panels of the rhs, then runs
/// the microkernel over `MR × NR` output tiles inside one strip×panel
/// pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmTuning {
    /// Rows of the lhs packed per strip (L2-resident together with the
    /// active panel).
    pub mc: usize,
    /// Contraction-dimension block (one packed lhs strip row and one
    /// packed rhs panel column of this depth stay L1-resident).
    pub kc: usize,
    /// Columns of the rhs packed per panel.
    pub nc: usize,
}

impl Default for GemmTuning {
    fn default() -> Self {
        GemmTuning {
            mc: 96,
            kc: 256,
            nc: 1024,
        }
    }
}

impl fmt::Display for GemmTuning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mc={} kc={} nc={}", self.mc, self.kc, self.nc)
    }
}

impl GemmTuning {
    /// Clamps each block size into a sane range (non-zero, bounded), so a
    /// hand-edited or corrupted file cannot drive the kernel into
    /// degenerate blocking.
    pub fn sanitized(self) -> Self {
        GemmTuning {
            mc: self.mc.clamp(8, 4096),
            kc: self.kc.clamp(8, 4096),
            nc: self.nc.clamp(16, 1 << 16),
        }
    }
}

/// The CPU-feature key tuning files are stored under: the coarse vector
/// capability actually dispatched on, not the full CPUID dump — a tuning
/// travels between machines with the same vector width and cache-friendly
/// block sizes are re-measured when the capability differs.
pub fn cpu_key() -> String {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return "x86_64-avx512f".to_string();
        }
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return "x86_64-avx2-fma".to_string();
        }
        "x86_64-baseline".to_string()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        format!("{}-baseline", std::env::consts::ARCH)
    }
}

/// Directory tuning files live in: `DEEPMORPH_TUNE_DIR` when set,
/// `artifacts/tune` under the current directory otherwise.
pub fn tune_dir() -> PathBuf {
    match std::env::var_os("DEEPMORPH_TUNE_DIR") {
        Some(d) if !d.is_empty() => PathBuf::from(d),
        _ => PathBuf::from("artifacts").join("tune"),
    }
}

/// Path of the tuning file for a CPU key inside `dir`.
pub fn tuning_path(dir: &Path, key: &str) -> PathBuf {
    dir.join(format!("gemm-{key}.tune"))
}

/// Loads the tuning for `key` from `dir`. `None` when the file is absent
/// or unreadable; a present file missing some keys fills them from the
/// default (files are forward-compatible by construction).
pub fn load_from(dir: &Path, key: &str) -> Option<GemmTuning> {
    let text = std::fs::read_to_string(tuning_path(dir, key)).ok()?;
    let mut t = GemmTuning::default();
    let mut any = false;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((k, v)) = line.split_once('=') else {
            continue;
        };
        let Ok(v) = v.trim().parse::<usize>() else {
            continue;
        };
        any = true;
        match k.trim() {
            "mc" => t.mc = v,
            "kc" => t.kc = v,
            "nc" => t.nc = v,
            _ => {}
        }
    }
    any.then(|| t.sanitized())
}

/// Loads the tuning for this machine from the default [`tune_dir`].
pub fn load() -> Option<GemmTuning> {
    load_from(&tune_dir(), &cpu_key())
}

/// Persists `t` for `key` under `dir` (creating it), atomically via a
/// temp file + rename so a concurrent loader never sees a torn write.
///
/// # Errors
///
/// Returns the underlying I/O error when the directory or file cannot be
/// written.
pub fn store_to(dir: &Path, key: &str, t: &GemmTuning) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = tuning_path(dir, key);
    let tmp = path.with_extension("tune.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        writeln!(f, "# deepmorph gemm block-size tuning (cpu: {key})")?;
        writeln!(f, "mc={}", t.mc)?;
        writeln!(f, "kc={}", t.kc)?;
        writeln!(f, "nc={}", t.nc)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, &path)?;
    Ok(path)
}

/// Persists `t` for this machine under the default [`tune_dir`].
///
/// # Errors
///
/// Returns the underlying I/O error when the directory or file cannot be
/// written.
pub fn store(t: &GemmTuning) -> std::io::Result<PathBuf> {
    store_to(&tune_dir(), &cpu_key(), t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dm-tune-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn round_trips_through_disk() {
        let dir = temp_dir("rt");
        let t = GemmTuning {
            mc: 64,
            kc: 192,
            nc: 2048,
        };
        let path = store_to(&dir, "testcpu", &t).unwrap();
        assert!(path.ends_with("gemm-testcpu.tune"));
        assert_eq!(load_from(&dir, "testcpu"), Some(t));
        // Other keys stay independent.
        assert_eq!(load_from(&dir, "othercpu"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_and_malformed_files_fall_back() {
        let dir = temp_dir("bad");
        assert_eq!(load_from(&dir, "nope"), None);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(tuning_path(&dir, "junk"), "not a tuning\n").unwrap();
        assert_eq!(load_from(&dir, "junk"), None);
        // Partial files fill missing keys from the default, and absurd
        // values are clamped.
        std::fs::write(tuning_path(&dir, "part"), "mc=1000000\n# comment\n").unwrap();
        let t = load_from(&dir, "part").unwrap();
        assert_eq!(t.mc, 4096);
        assert_eq!(t.kc, GemmTuning::default().kc);
        assert_eq!(t.nc, GemmTuning::default().nc);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cpu_key_is_stable_and_nonempty() {
        let k = cpu_key();
        assert!(!k.is_empty());
        assert_eq!(k, cpu_key());
    }
}
