//! Convolution and pooling kernels.
//!
//! The convolution layers in `deepmorph-nn` lower 2-D convolution onto
//! matrix multiplication through the classic `im2col` transformation: each
//! receptive field of the (padded) input becomes one row of a patch matrix,
//! so `conv2d(x, w)` is `patches @ w_flat.T`. The backward pass reverses the
//! lowering with [`col2im`].
//!
//! Layers that run the same geometry every batch should build an
//! [`Im2colMap`] once and use the `*_mapped_into` kernels: the gather
//! indices are precomputed per layer, and outputs land in caller-provided
//! (workspace-recycled) buffers, so the steady-state batch loop performs no
//! heap allocations and no per-element bounds arithmetic.
//!
//! All activation tensors are NCHW.

use crate::{workspace, Result, Tensor, TensorError};

/// Static geometry of a 2-D convolution: input/output sizes, kernel,
/// stride, and padding.
///
/// Constructing a `Conv2dGeometry` validates the configuration once, so the
/// per-batch hot paths can index without re-checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dGeometry {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Vertical and horizontal stride.
    pub stride: usize,
    /// Symmetric zero padding applied to all four sides.
    pub padding: usize,
    /// Output height (derived).
    pub out_h: usize,
    /// Output width (derived).
    pub out_w: usize,
}

impl Conv2dGeometry {
    /// Computes and validates convolution geometry.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] if the kernel does not fit
    /// in the padded input, or any dimension is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        in_h: usize,
        in_w: usize,
        kernel_h: usize,
        kernel_w: usize,
        stride: usize,
        padding: usize,
    ) -> Result<Self> {
        if in_channels == 0 || out_channels == 0 || kernel_h == 0 || kernel_w == 0 || stride == 0 {
            return Err(TensorError::InvalidGeometry {
                reason: format!(
                    "zero dimension: in_c={in_channels} out_c={out_channels} \
                     kernel={kernel_h}x{kernel_w} stride={stride}"
                ),
            });
        }
        let padded_h = in_h + 2 * padding;
        let padded_w = in_w + 2 * padding;
        if kernel_h > padded_h || kernel_w > padded_w {
            return Err(TensorError::InvalidGeometry {
                reason: format!(
                    "kernel {kernel_h}x{kernel_w} larger than padded input {padded_h}x{padded_w}"
                ),
            });
        }
        let out_h = (padded_h - kernel_h) / stride + 1;
        let out_w = (padded_w - kernel_w) / stride + 1;
        Ok(Conv2dGeometry {
            in_channels,
            out_channels,
            in_h,
            in_w,
            kernel_h,
            kernel_w,
            stride,
            padding,
            out_h,
            out_w,
        })
    }

    /// Number of elements in one flattened receptive field
    /// (`in_channels * kernel_h * kernel_w`).
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel_h * self.kernel_w
    }

    /// Number of output spatial positions (`out_h * out_w`).
    pub fn out_positions(&self) -> usize {
        self.out_h * self.out_w
    }

    fn check_input(&self, input: &Tensor, op: &'static str) -> Result<usize> {
        input.expect_rank(4, op)?;
        let [n, c, h, w] = [
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        ];
        if c != self.in_channels || h != self.in_h || w != self.in_w {
            return Err(TensorError::InvalidGeometry {
                reason: format!(
                    "input {:?} does not match geometry (c={}, h={}, w={})",
                    input.shape(),
                    self.in_channels,
                    self.in_h,
                    self.in_w
                ),
            });
        }
        Ok(n)
    }
}

/// Sentinel in an [`Im2colMap`] marking a padding slot (reads as `0.0`).
const PAD: usize = usize::MAX;

/// Precomputed gather indices for one convolution geometry.
///
/// Entry `(p * patch_len + k)` holds the offset of patch slot `k` at output
/// position `p` within one image's `c*h*w` buffer, or the `PAD` sentinel when the slot
/// falls in the zero padding. Layers cache one map per instance so the
/// per-batch kernels do table lookups instead of recomputing receptive
/// fields.
#[derive(Debug, Clone)]
pub struct Im2colMap {
    geo: Conv2dGeometry,
    idx: Vec<usize>,
}

impl Im2colMap {
    /// Builds the index table for `geo`.
    pub fn new(geo: &Conv2dGeometry) -> Self {
        let patch_len = geo.patch_len();
        let (c, h, w) = (geo.in_channels, geo.in_h, geo.in_w);
        let (kh, kw, stride, pad) = (geo.kernel_h, geo.kernel_w, geo.stride, geo.padding);
        let mut idx = vec![PAD; geo.out_positions() * patch_len];
        for oy in 0..geo.out_h {
            let base_y = (oy * stride) as isize - pad as isize;
            for ox in 0..geo.out_w {
                let base_x = (ox * stride) as isize - pad as isize;
                let row = &mut idx[(oy * geo.out_w + ox) * patch_len..][..patch_len];
                let mut k = 0;
                for ch in 0..c {
                    for ky in 0..kh {
                        let y = base_y + ky as isize;
                        if y < 0 || y >= h as isize {
                            k += kw;
                            continue;
                        }
                        for kx in 0..kw {
                            let x = base_x + kx as isize;
                            if x >= 0 && x < w as isize {
                                row[k] = ch * h * w + y as usize * w + x as usize;
                            }
                            k += 1;
                        }
                    }
                }
            }
        }
        Im2colMap { geo: *geo, idx }
    }

    /// The geometry this map was built for.
    pub fn geometry(&self) -> &Conv2dGeometry {
        &self.geo
    }
}

/// Lowers a batch of NCHW inputs to a patch matrix.
///
/// `input` is `[n, c, h, w]`; the result is
/// `[n * out_h * out_w, c * kernel_h * kernel_w]` where row
/// `(i * out_positions + p)` is the receptive field of sample `i` at output
/// position `p` (row-major over `out_h x out_w`). The result buffer comes
/// from the thread's [`workspace`] arena.
///
/// # Errors
///
/// Returns a shape error if `input` is not rank 4 or disagrees with `geo`.
pub fn im2col(input: &Tensor, geo: &Conv2dGeometry) -> Result<Tensor> {
    let n = geo.check_input(input, "im2col")?;
    let patch_len = geo.patch_len();
    let positions = geo.out_positions();
    // Padding slots rely on the zero fill (only in-bounds slots are
    // written below).
    let mut out = workspace::take_zeroed(n * positions * patch_len);
    let src = input.data();
    let (c, h, w) = (geo.in_channels, geo.in_h, geo.in_w);
    let (kh, kw, stride, pad) = (geo.kernel_h, geo.kernel_w, geo.stride, geo.padding);
    let (out_h, out_w) = (geo.out_h, geo.out_w);

    // One chunk per (sample, output row): a pure gather, so chunks are
    // independent and the parallel split is bitwise exact.
    crate::chunks::for_chunks_mut(
        &mut out,
        out_w * patch_len,
        crate::chunks::PAR_GRAIN_ELEMS,
        |chunk_idx, rows| {
            let i = chunk_idx / out_h;
            let oy = chunk_idx % out_h;
            let src_img = &src[i * c * h * w..(i + 1) * c * h * w];
            let base_y = (oy * stride) as isize - pad as isize;
            for (ox, row) in rows.chunks_mut(patch_len).enumerate() {
                let base_x = (ox * stride) as isize - pad as isize;
                let mut k = 0;
                for ch in 0..c {
                    let src_ch = &src_img[ch * h * w..(ch + 1) * h * w];
                    for ky in 0..kh {
                        let y = base_y + ky as isize;
                        if y < 0 || y >= h as isize {
                            k += kw;
                            continue;
                        }
                        let src_row = &src_ch[y as usize * w..(y as usize + 1) * w];
                        for kx in 0..kw {
                            let x = base_x + kx as isize;
                            if x >= 0 && x < w as isize {
                                row[k] = src_row[x as usize];
                            }
                            k += 1;
                        }
                    }
                }
            }
        },
    );
    Tensor::from_vec(out, &[n * positions, patch_len])
}

/// Table-driven [`im2col`] writing into a caller-provided buffer
/// (`n * out_positions * patch_len`, fully overwritten — stale contents are
/// fine). Identical output to [`im2col`], zero allocations.
///
/// # Errors
///
/// Returns a shape error if `input` disagrees with the map's geometry or
/// `out` has the wrong length.
pub fn im2col_mapped_into(input: &Tensor, map: &Im2colMap, out: &mut [f32]) -> Result<()> {
    let geo = &map.geo;
    let n = geo.check_input(input, "im2col")?;
    let patch_len = geo.patch_len();
    let positions = geo.out_positions();
    if out.len() != n * positions * patch_len {
        return Err(TensorError::LengthMismatch {
            shape: vec![n * positions, patch_len],
            len: out.len(),
        });
    }
    let src = input.data();
    let img_len = geo.in_channels * geo.in_h * geo.in_w;
    let idx = &map.idx;
    let out_h = geo.out_h;
    let row_len = geo.out_w * patch_len;

    // Same (sample, output row) chunking as `im2col`; each row is a pure
    // table gather with `0.0` written for padding slots.
    crate::chunks::for_chunks_mut(
        out,
        row_len,
        crate::chunks::PAR_GRAIN_ELEMS,
        |chunk_idx, rows| {
            let i = chunk_idx / out_h;
            let oy = chunk_idx % out_h;
            let src_img = &src[i * img_len..(i + 1) * img_len];
            let tbl = &idx[oy * row_len..(oy + 1) * row_len];
            for (slot, &ix) in rows.iter_mut().zip(tbl) {
                *slot = if ix == PAD { 0.0 } else { src_img[ix] };
            }
        },
    );
    Ok(())
}

/// Reverses [`im2col`]: scatters patch-matrix gradients back onto the NCHW
/// input gradient, summing where receptive fields overlap. The result
/// buffer comes from the thread's [`workspace`] arena.
///
/// `cols` must be `[n * out_h * out_w, patch_len]`; the result is
/// `[n, c, h, w]`.
///
/// # Errors
///
/// Returns a shape error if `cols` disagrees with `geo` or `n`.
pub fn col2im(cols: &Tensor, geo: &Conv2dGeometry, n: usize) -> Result<Tensor> {
    let mut out = workspace::take_raw(n * geo.in_channels * geo.in_h * geo.in_w);
    col2im_scatter(cols, geo, n, None, &mut out)?;
    Tensor::from_vec(out, &[n, geo.in_channels, geo.in_h, geo.in_w])
}

/// Table-driven [`col2im`] writing into a caller-provided buffer
/// (`n * c * h * w`, fully overwritten). Identical output to [`col2im`],
/// zero allocations.
///
/// # Errors
///
/// Returns a shape error if `cols` disagrees with the map's geometry or
/// `out` has the wrong length.
pub fn col2im_mapped_into(cols: &Tensor, map: &Im2colMap, n: usize, out: &mut [f32]) -> Result<()> {
    col2im_scatter(cols, &map.geo, n, Some(&map.idx), out)
}

/// Shared scatter core of [`col2im`] / [`col2im_mapped_into`]: zeroes each
/// image chunk, then adds overlapping receptive fields in the pinned order
/// (output positions row-major, patch slots `ch, ky, kx`).
fn col2im_scatter(
    cols: &Tensor,
    geo: &Conv2dGeometry,
    n: usize,
    idx: Option<&[usize]>,
    out: &mut [f32],
) -> Result<()> {
    cols.expect_rank(2, "col2im")?;
    let patch_len = geo.patch_len();
    let positions = geo.out_positions();
    if cols.shape() != [n * positions, patch_len] {
        return Err(TensorError::InvalidGeometry {
            reason: format!(
                "cols {:?} does not match geometry [{} x {}]",
                cols.shape(),
                n * positions,
                patch_len
            ),
        });
    }
    let (c, h, w) = (geo.in_channels, geo.in_h, geo.in_w);
    if out.len() != n * c * h * w {
        return Err(TensorError::LengthMismatch {
            shape: vec![n, c, h, w],
            len: out.len(),
        });
    }
    let (kh, kw, stride, pad) = (geo.kernel_h, geo.kernel_w, geo.stride, geo.padding);
    let src = cols.data();

    // col2im scatter-adds overlapping receptive fields, so the parallel
    // split is per sample: each image's accumulation stays on one thread
    // in serial order (bitwise exact).
    crate::chunks::for_chunks_mut(
        out,
        c * h * w,
        crate::chunks::PAR_GRAIN_ELEMS,
        |i, dst_img| {
            dst_img.fill(0.0);
            if let Some(idx) = idx {
                for p in 0..positions {
                    let row = &src[(i * positions + p) * patch_len..][..patch_len];
                    let tbl = &idx[p * patch_len..(p + 1) * patch_len];
                    for (&v, &ix) in row.iter().zip(tbl) {
                        if ix != PAD {
                            dst_img[ix] += v;
                        }
                    }
                }
                return;
            }
            for oy in 0..geo.out_h {
                for ox in 0..geo.out_w {
                    let row_idx = i * positions + oy * geo.out_w + ox;
                    let row = &src[row_idx * patch_len..(row_idx + 1) * patch_len];
                    let base_y = (oy * stride) as isize - pad as isize;
                    let base_x = (ox * stride) as isize - pad as isize;
                    let mut k = 0;
                    for ch in 0..c {
                        for ky in 0..kh {
                            let y = base_y + ky as isize;
                            if y < 0 || y >= h as isize {
                                k += kw;
                                continue;
                            }
                            for kx in 0..kw {
                                let x = base_x + kx as isize;
                                if x >= 0 && x < w as isize {
                                    dst_img[ch * h * w + y as usize * w + x as usize] += row[k];
                                }
                                k += 1;
                            }
                        }
                    }
                }
            }
        },
    );
    Ok(())
}

/// Static geometry of a 2-D pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolGeometry {
    /// Channels (pooling is per-channel).
    pub channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Pooling window size (square).
    pub window: usize,
    /// Stride.
    pub stride: usize,
    /// Output height (derived).
    pub out_h: usize,
    /// Output width (derived).
    pub out_w: usize,
}

impl PoolGeometry {
    /// Computes and validates pooling geometry.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] if the window does not fit
    /// or any dimension is zero.
    pub fn new(
        channels: usize,
        in_h: usize,
        in_w: usize,
        window: usize,
        stride: usize,
    ) -> Result<Self> {
        if channels == 0 || window == 0 || stride == 0 {
            return Err(TensorError::InvalidGeometry {
                reason: format!("zero dimension: c={channels} window={window} stride={stride}"),
            });
        }
        if window > in_h || window > in_w {
            return Err(TensorError::InvalidGeometry {
                reason: format!("pool window {window} larger than input {in_h}x{in_w}"),
            });
        }
        let out_h = (in_h - window) / stride + 1;
        let out_w = (in_w - window) / stride + 1;
        Ok(PoolGeometry {
            channels,
            in_h,
            in_w,
            window,
            stride,
            out_h,
            out_w,
        })
    }

    fn check_input(&self, input: &Tensor, op: &'static str) -> Result<usize> {
        input.expect_rank(4, op)?;
        let [n, c, h, w] = [
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        ];
        if c != self.channels || h != self.in_h || w != self.in_w {
            return Err(TensorError::InvalidGeometry {
                reason: format!("input {:?} does not match pool geometry", input.shape()),
            });
        }
        Ok(n)
    }
}

/// Max-pools an NCHW batch; also returns the argmax index (into each image's
/// `c*h*w` buffer) of every output element, for the backward pass.
///
/// # Errors
///
/// Returns a shape error if `input` disagrees with `geo`.
pub fn maxpool2d(input: &Tensor, geo: &PoolGeometry) -> Result<(Tensor, Vec<usize>)> {
    let n = geo.check_input(input, "maxpool2d")?;
    let mut out = workspace::take_raw(n * geo.channels * geo.out_h * geo.out_w);
    let mut argmax = vec![0usize; out.len()];
    maxpool2d_kernel(input, geo, &mut out, &mut argmax);
    Ok((
        Tensor::from_vec(out, &[n, geo.channels, geo.out_h, geo.out_w])?,
        argmax,
    ))
}

/// [`maxpool2d`] into caller-provided buffers (both fully overwritten;
/// zero allocations). Layers keep `out`/`argmax` across batches.
///
/// # Errors
///
/// Returns a shape error if `input` disagrees with `geo` or buffer lengths
/// are wrong.
pub fn maxpool2d_into(
    input: &Tensor,
    geo: &PoolGeometry,
    out: &mut [f32],
    argmax: &mut [usize],
) -> Result<()> {
    let n = geo.check_input(input, "maxpool2d")?;
    let expected = n * geo.channels * geo.out_h * geo.out_w;
    if out.len() != expected || argmax.len() != expected {
        return Err(TensorError::LengthMismatch {
            shape: vec![n, geo.channels, geo.out_h, geo.out_w],
            len: out.len().min(argmax.len()),
        });
    }
    maxpool2d_kernel(input, geo, out, argmax);
    Ok(())
}

fn maxpool2d_kernel(input: &Tensor, geo: &PoolGeometry, out: &mut [f32], argmax: &mut [usize]) {
    let (c, h, w) = (geo.channels, geo.in_h, geo.in_w);
    let src = input.data();
    let plane_len = geo.out_h * geo.out_w;
    // One chunk per (sample, channel) output plane; each plane only reads
    // its own input plane, so the parallel split is bitwise exact.
    crate::chunks::for_chunks2_mut(
        out,
        plane_len,
        argmax,
        plane_len,
        crate::chunks::PAR_GRAIN_ELEMS,
        |chunk_idx, out_plane, arg_plane| {
            // `chunk_idx` counts (sample, channel) planes; the channel is
            // still needed because argmax indexes into the sample's
            // `c*h*w` buffer.
            let ch = chunk_idx % c;
            let plane = &src[chunk_idx * h * w..(chunk_idx + 1) * h * w];
            for oy in 0..geo.out_h {
                for ox in 0..geo.out_w {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0;
                    for ky in 0..geo.window {
                        for kx in 0..geo.window {
                            let y = oy * geo.stride + ky;
                            let x = ox * geo.stride + kx;
                            let v = plane[y * w + x];
                            if v > best {
                                best = v;
                                best_idx = ch * h * w + y * w + x;
                            }
                        }
                    }
                    let o = oy * geo.out_w + ox;
                    out_plane[o] = best;
                    arg_plane[o] = best_idx;
                }
            }
        },
    );
}

/// Backward pass of [`maxpool2d`]: routes each output gradient to the input
/// position that produced the max. The result buffer comes from the
/// thread's [`workspace`] arena.
///
/// # Errors
///
/// Returns a shape error if `grad` disagrees with `geo`.
pub fn maxpool2d_backward(grad: &Tensor, argmax: &[usize], geo: &PoolGeometry) -> Result<Tensor> {
    grad.expect_rank(4, "maxpool2d_backward")?;
    let n = grad.shape()[0];
    let mut out = workspace::take_raw(n * geo.channels * geo.in_h * geo.in_w);
    let img_len = geo.channels * geo.in_h * geo.in_w;
    let grad_img_len = geo.channels * geo.out_h * geo.out_w;
    let g = grad.data();
    // Scatter-adds stay within one sample; split per sample.
    crate::chunks::for_chunks_mut(
        &mut out,
        img_len,
        crate::chunks::PAR_GRAIN_ELEMS,
        |i, dst_img| {
            dst_img.fill(0.0);
            let lo = i * grad_img_len;
            for (gv, &idx) in g[lo..lo + grad_img_len]
                .iter()
                .zip(&argmax[lo..lo + grad_img_len])
            {
                dst_img[idx] += gv;
            }
        },
    );
    Tensor::from_vec(out, &[n, geo.channels, geo.in_h, geo.in_w])
}

/// Average-pools an NCHW batch. The result buffer comes from the thread's
/// [`workspace`] arena.
///
/// # Errors
///
/// Returns a shape error if `input` disagrees with `geo`.
pub fn avgpool2d(input: &Tensor, geo: &PoolGeometry) -> Result<Tensor> {
    let n = geo.check_input(input, "avgpool2d")?;
    let norm = 1.0 / (geo.window * geo.window) as f32;
    let mut out = workspace::take_raw(n * geo.channels * geo.out_h * geo.out_w);
    let (h, w) = (geo.in_h, geo.in_w);
    let src = input.data();
    // One chunk per (sample, channel) output plane; pure gather.
    crate::chunks::for_chunks_mut(
        &mut out,
        geo.out_h * geo.out_w,
        crate::chunks::PAR_GRAIN_ELEMS,
        |chunk_idx, out_plane| {
            let plane = &src[chunk_idx * h * w..(chunk_idx + 1) * h * w];
            for oy in 0..geo.out_h {
                for ox in 0..geo.out_w {
                    let mut acc = 0.0;
                    for ky in 0..geo.window {
                        for kx in 0..geo.window {
                            acc += plane[(oy * geo.stride + ky) * w + ox * geo.stride + kx];
                        }
                    }
                    out_plane[oy * geo.out_w + ox] = acc * norm;
                }
            }
        },
    );
    Tensor::from_vec(out, &[n, geo.channels, geo.out_h, geo.out_w])
}

/// Backward pass of [`avgpool2d`]: spreads each output gradient uniformly
/// over its window. The result buffer comes from the thread's
/// [`workspace`] arena.
///
/// # Errors
///
/// Returns a shape error if `grad` disagrees with `geo`.
pub fn avgpool2d_backward(grad: &Tensor, geo: &PoolGeometry) -> Result<Tensor> {
    grad.expect_rank(4, "avgpool2d_backward")?;
    let n = grad.shape()[0];
    let norm = 1.0 / (geo.window * geo.window) as f32;
    let mut out = workspace::take_raw(n * geo.channels * geo.in_h * geo.in_w);
    let g = grad.data();
    // Scatter-adds stay within one (sample, channel) plane; split per plane.
    crate::chunks::for_chunks_mut(
        &mut out,
        geo.in_h * geo.in_w,
        crate::chunks::PAR_GRAIN_ELEMS,
        |chunk_idx, out_plane| {
            out_plane.fill(0.0);
            for oy in 0..geo.out_h {
                for ox in 0..geo.out_w {
                    let gv = g[(chunk_idx * geo.out_h + oy) * geo.out_w + ox] * norm;
                    for ky in 0..geo.window {
                        for kx in 0..geo.window {
                            let y = oy * geo.stride + ky;
                            let x = ox * geo.stride + kx;
                            out_plane[y * geo.in_w + x] += gv;
                        }
                    }
                }
            }
        },
    );
    Tensor::from_vec(out, &[n, geo.channels, geo.in_h, geo.in_w])
}

/// Global average pool: `[n, c, h, w]` → `[n, c]`. The result buffer comes
/// from the thread's [`workspace`] arena.
///
/// Used both by the classifier heads and by DeepMorph's softmax probes to
/// summarize a convolutional activation into a fixed-size vector.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-4 input.
pub fn global_avg_pool(input: &Tensor) -> Result<Tensor> {
    input.expect_rank(4, "global_avg_pool")?;
    let [n, c, h, w] = [
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    ];
    let norm = 1.0 / (h * w) as f32;
    let mut out = workspace::take_raw(n * c);
    let src = input.data();
    // One chunk per sample row of the [n, c] output; pure reduction over
    // that sample's planes. The work scales with the *input* size, so the
    // parallel threshold is computed on it rather than on `out.len()`.
    let grain = if n * c * h * w >= crate::chunks::PAR_GRAIN_ELEMS {
        0
    } else {
        usize::MAX
    };
    crate::chunks::for_chunks_mut(&mut out, c, grain, |i, row| {
        for (ch, slot) in row.iter_mut().enumerate() {
            let plane = &src[(i * c + ch) * h * w..(i * c + ch + 1) * h * w];
            *slot = plane.iter().sum::<f32>() * norm;
        }
    });
    Tensor::from_vec(out, &[n, c])
}

/// Backward pass of [`global_avg_pool`]. The result buffer comes from the
/// thread's [`workspace`] arena.
///
/// # Errors
///
/// Returns a shape error if `grad` is not `[n, c]`.
pub fn global_avg_pool_backward(grad: &Tensor, h: usize, w: usize) -> Result<Tensor> {
    grad.expect_rank(2, "global_avg_pool_backward")?;
    let (n, c) = (grad.shape()[0], grad.shape()[1]);
    let norm = 1.0 / (h * w) as f32;
    let mut out = workspace::take_raw(n * c * h * w);
    for i in 0..n {
        for ch in 0..c {
            let gv = grad.data()[i * c + ch] * norm;
            for p in 0..h * w {
                out[(i * c + ch) * h * w + p] = gv;
            }
        }
    }
    Tensor::from_vec(out, &[n, c, h, w])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_tensor(shape: &[usize]) -> Tensor {
        let len: usize = shape.iter().product();
        Tensor::from_vec((0..len).map(|v| v as f32).collect(), shape).unwrap()
    }

    #[test]
    fn geometry_computes_output_size() {
        let g = Conv2dGeometry::new(3, 8, 16, 16, 3, 3, 1, 1).unwrap();
        assert_eq!((g.out_h, g.out_w), (16, 16));
        let g = Conv2dGeometry::new(3, 8, 16, 16, 3, 3, 2, 1).unwrap();
        assert_eq!((g.out_h, g.out_w), (8, 8));
        let g = Conv2dGeometry::new(1, 1, 5, 5, 5, 5, 1, 0).unwrap();
        assert_eq!((g.out_h, g.out_w), (1, 1));
    }

    #[test]
    fn geometry_rejects_oversized_kernel() {
        assert!(Conv2dGeometry::new(1, 1, 4, 4, 5, 5, 1, 0).is_err());
        assert!(Conv2dGeometry::new(1, 1, 4, 4, 5, 5, 1, 1).is_ok());
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1, no padding: patches are just the pixels.
        let x = seq_tensor(&[1, 2, 2, 2]);
        let g = Conv2dGeometry::new(2, 1, 2, 2, 1, 1, 1, 0).unwrap();
        let cols = im2col(&x, &g).unwrap();
        assert_eq!(cols.shape(), &[4, 2]);
        // Position (0,0): channels 0 and 1 at pixel 0 → values 0 and 4.
        assert_eq!(cols.row(0).unwrap(), &[0.0, 4.0]);
        assert_eq!(cols.row(3).unwrap(), &[3.0, 7.0]);
    }

    #[test]
    fn im2col_padding_zero_fills() {
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let g = Conv2dGeometry::new(1, 1, 2, 2, 3, 3, 1, 1).unwrap();
        let cols = im2col(&x, &g).unwrap();
        assert_eq!(cols.shape(), &[4, 9]);
        // Top-left position: only the bottom-right 2x2 of the kernel overlaps.
        let r = cols.row(0).unwrap();
        assert_eq!(r.iter().filter(|&&v| v == 1.0).count(), 4);
        assert_eq!(r.iter().filter(|&&v| v == 0.0).count(), 5);
    }

    #[test]
    fn mapped_im2col_matches_direct() {
        for (c, h, w, k, s, p) in [(2, 5, 5, 3, 1, 1), (3, 8, 6, 3, 2, 0), (1, 4, 4, 4, 1, 2)] {
            let geo = Conv2dGeometry::new(c, 4, h, w, k, k, s, p).unwrap();
            let map = Im2colMap::new(&geo);
            let x = seq_tensor(&[2, c, h, w]);
            let direct = im2col(&x, &geo).unwrap();
            let mut mapped = vec![7.7f32; direct.len()]; // stale contents
            im2col_mapped_into(&x, &map, &mut mapped).unwrap();
            assert_eq!(direct.data(), &mapped[..], "geometry {geo:?}");
        }
    }

    #[test]
    fn mapped_col2im_matches_direct() {
        let geo = Conv2dGeometry::new(2, 3, 5, 5, 3, 3, 1, 1).unwrap();
        let map = Im2colMap::new(&geo);
        let cols = seq_tensor(&[2 * geo.out_positions(), geo.patch_len()]);
        let direct = col2im(&cols, &geo, 2).unwrap();
        let mut mapped = vec![9.9f32; direct.len()];
        col2im_mapped_into(&cols, &map, 2, &mut mapped).unwrap();
        assert_eq!(direct.data(), &mapped[..]);
    }

    #[test]
    fn conv_via_im2col_matches_direct() {
        // Direct 2D convolution (valid, stride 1) computed naively.
        let x = seq_tensor(&[1, 1, 4, 4]);
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0, -1.0], &[1, 1, 2, 2]).unwrap();
        let g = Conv2dGeometry::new(1, 1, 4, 4, 2, 2, 1, 0).unwrap();
        let cols = im2col(&x, &g).unwrap();
        let wf = w.reshape(&[1, 4]).unwrap();
        let out = cols.matmul_nt(&wf).unwrap(); // [9, 1]

        // Direct: out[y][x] = x[y][x] - x[y+1][x+1] = -5 for this ramp.
        for v in out.data() {
            assert!((v + 5.0).abs() < 1e-5);
        }
    }

    #[test]
    fn col2im_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> — the operators are adjoint.
        let x = seq_tensor(&[2, 2, 4, 4]);
        let g = Conv2dGeometry::new(2, 3, 4, 4, 3, 3, 1, 1).unwrap();
        let cols = im2col(&x, &g).unwrap();
        let y = Tensor::from_vec(
            (0..cols.len()).map(|v| (v % 7) as f32 - 3.0).collect(),
            cols.shape(),
        )
        .unwrap();
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let back = col2im(&y, &g, 2).unwrap();
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-2, "lhs={lhs} rhs={rhs}");
    }

    #[test]
    fn maxpool_forward_and_backward() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 10.0, 11.0, 12.0, //
                13.0, 14.0, 15.0, 16.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let g = PoolGeometry::new(1, 4, 4, 2, 2).unwrap();
        let (y, argmax) = maxpool2d(&x, &g).unwrap();
        assert_eq!(y.data(), &[6.0, 8.0, 14.0, 16.0]);
        let grad = Tensor::ones(&[1, 1, 2, 2]);
        let gx = maxpool2d_backward(&grad, &argmax, &g).unwrap();
        assert_eq!(gx.sum(), 4.0);
        assert_eq!(gx.at(&[0, 0, 1, 1]).unwrap(), 1.0); // position of 6
        assert_eq!(gx.at(&[0, 0, 3, 3]).unwrap(), 1.0); // position of 16
        assert_eq!(gx.at(&[0, 0, 0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn maxpool_into_matches_allocating_version() {
        let x = seq_tensor(&[2, 2, 4, 4]);
        let g = PoolGeometry::new(2, 4, 4, 2, 2).unwrap();
        let (y, argmax) = maxpool2d(&x, &g).unwrap();
        let mut out = vec![-1.0f32; y.len()];
        let mut arg = vec![usize::MAX; y.len()];
        maxpool2d_into(&x, &g, &mut out, &mut arg).unwrap();
        assert_eq!(y.data(), &out[..]);
        assert_eq!(argmax, arg);
        assert!(maxpool2d_into(&x, &g, &mut out[..3], &mut arg).is_err());
    }

    #[test]
    fn avgpool_forward_and_backward() {
        let x = seq_tensor(&[1, 1, 4, 4]);
        let g = PoolGeometry::new(1, 4, 4, 2, 2).unwrap();
        let y = avgpool2d(&x, &g).unwrap();
        assert_eq!(y.data(), &[2.5, 4.5, 10.5, 12.5]);
        let grad = Tensor::ones(&[1, 1, 2, 2]);
        let gx = avgpool2d_backward(&grad, &g).unwrap();
        assert!((gx.sum() - 4.0).abs() < 1e-6);
        assert!((gx.at(&[0, 0, 0, 0]).unwrap() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn global_avg_pool_round_trip() {
        let x = seq_tensor(&[2, 3, 2, 2]);
        let y = global_avg_pool(&x).unwrap();
        assert_eq!(y.shape(), &[2, 3]);
        assert!((y.at(&[0, 0]).unwrap() - 1.5).abs() < 1e-6);
        let grad = Tensor::ones(&[2, 3]);
        let gx = global_avg_pool_backward(&grad, 2, 2).unwrap();
        assert_eq!(gx.shape(), &[2, 3, 2, 2]);
        assert!((gx.sum() - 6.0).abs() < 1e-5);
    }

    #[test]
    fn pool_geometry_rejects_oversized_window() {
        assert!(PoolGeometry::new(1, 2, 2, 3, 1).is_err());
    }
}
