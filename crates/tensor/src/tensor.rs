use std::fmt;
use std::ops::{Add, Mul, Sub};

use crate::backend::{Backend, GemmSpec, MatLayout, ScalarBackend};
use crate::shape::{Shape, MAX_RANK};
use crate::{workspace, Result, TensorError};

/// A dense, contiguous, row-major `f32` n-dimensional array.
///
/// `Tensor` is the single numeric container used throughout the DeepMorph
/// reproduction: network activations are `[n, c, h, w]` or `[n, features]`,
/// weights are `[out, in]` / `[out_c, in_c, kh, kw]`, and probe
/// distributions are `[n, classes]`.
///
/// All operations either return a new tensor or mutate `self` in place
/// (`*_inplace` / `*_mut` suffixes); shapes are validated and mismatches
/// reported as [`TensorError`]. Operations on the training/inference hot
/// path draw their result buffers from the thread's [`workspace`] arena, so
/// a caller that recycles retired tensors
/// ([`workspace::recycle_tensor`]) runs allocation-free in steady state.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    // ---------------------------------------------------------------------
    // Constructors
    // ---------------------------------------------------------------------

    /// Creates a tensor filled with zeros.
    ///
    /// ```
    /// # use deepmorph_tensor::Tensor;
    /// let t = Tensor::zeros(&[2, 3]);
    /// assert_eq!(t.len(), 6);
    /// assert!(t.data().iter().all(|&v| v == 0.0));
    /// ```
    pub fn zeros(shape: &[usize]) -> Self {
        let shape = Shape::from_slice(shape);
        Tensor {
            data: vec![0.0; shape.num_elements()],
            shape,
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let shape = Shape::from_slice(shape);
        Tensor {
            data: vec![value; shape.num_elements()],
            shape,
        }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor from a flat buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not
    /// equal the product of `shape`, or [`TensorError::InvalidShape`] for a
    /// rank above [`MAX_RANK`].
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self> {
        if shape.len() > MAX_RANK {
            return Err(TensorError::InvalidShape {
                shape: shape.to_vec(),
                reason: "rank exceeds MAX_RANK",
            });
        }
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(TensorError::LengthMismatch {
                shape: shape.to_vec(),
                len: data.len(),
            });
        }
        Ok(Tensor {
            shape: Shape::from_slice(shape),
            data,
        })
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            shape: Shape::from_slice(&[data.len()]),
            data: data.to_vec(),
        }
    }

    /// Assembles a tensor from pre-validated parts (workspace checkout).
    pub(crate) fn from_parts(shape: Shape, data: Vec<f32>) -> Self {
        debug_assert_eq!(shape.num_elements(), data.len());
        Tensor { shape, data }
    }

    // ---------------------------------------------------------------------
    // Accessors
    // ---------------------------------------------------------------------

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        self.shape.as_slice()
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the underlying buffer (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Copy of `self` whose buffer comes from the thread's [`workspace`]
    /// arena (allocation-free once warm). Use instead of `clone()` on hot
    /// paths that recycle their tensors.
    pub fn pooled_clone(&self) -> Tensor {
        let mut data = workspace::take_raw(self.data.len());
        data.copy_from_slice(&self.data);
        Tensor {
            shape: self.shape,
            data,
        }
    }

    /// Overwrites `self` with `src`'s contents and shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if element counts differ
    /// (the buffer is reused, never reallocated).
    pub fn copy_from(&mut self, src: &Tensor) -> Result<()> {
        if self.data.len() != src.data.len() {
            return Err(TensorError::LengthMismatch {
                shape: src.shape().to_vec(),
                len: self.data.len(),
            });
        }
        self.shape = src.shape;
        self.data.copy_from_slice(&src.data);
        Ok(())
    }

    /// Value at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index has the wrong
    /// rank or any coordinate is out of range.
    pub fn at(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.offset(index)?])
    }

    /// Sets the value at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] on a bad index.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.ndim() {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.shape().to_vec(),
            });
        }
        let mut off = 0;
        for (&ix, &dim) in index.iter().zip(self.shape()) {
            if ix >= dim {
                return Err(TensorError::IndexOutOfBounds {
                    index: index.to_vec(),
                    shape: self.shape().to_vec(),
                });
            }
            off = off * dim + ix;
        }
        Ok(off)
    }

    /// Borrow row `r` of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices and
    /// [`TensorError::IndexOutOfBounds`] for a bad row.
    pub fn row(&self, r: usize) -> Result<&[f32]> {
        self.expect_rank(2, "row")?;
        let (rows, cols) = (self.shape()[0], self.shape()[1]);
        if r >= rows {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![r],
                shape: self.shape().to_vec(),
            });
        }
        Ok(&self.data[r * cols..(r + 1) * cols])
    }

    /// Mutable borrow of row `r` of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::row`].
    pub fn row_mut(&mut self, r: usize) -> Result<&mut [f32]> {
        self.expect_rank(2, "row_mut")?;
        let (rows, cols) = (self.shape()[0], self.shape()[1]);
        if r >= rows {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![r],
                shape: self.shape().to_vec(),
            });
        }
        Ok(&mut self.data[r * cols..(r + 1) * cols])
    }

    /// Checks that the tensor has exactly `rank` dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] otherwise.
    pub fn expect_rank(&self, rank: usize, op: &'static str) -> Result<()> {
        if self.ndim() != rank {
            return Err(TensorError::RankMismatch {
                expected: rank,
                actual: self.ndim(),
                op,
            });
        }
        Ok(())
    }

    // ---------------------------------------------------------------------
    // Shape manipulation
    // ---------------------------------------------------------------------

    /// Returns a tensor with the same data and a new shape (buffer drawn
    /// from the [`workspace`] arena).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor> {
        if shape.len() > MAX_RANK {
            return Err(TensorError::InvalidShape {
                shape: shape.to_vec(),
                reason: "rank exceeds MAX_RANK",
            });
        }
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(TensorError::LengthMismatch {
                shape: shape.to_vec(),
                len: self.data.len(),
            });
        }
        let mut out = self.pooled_clone();
        out.shape = Shape::from_slice(shape);
        Ok(out)
    }

    /// In-place variant of [`Tensor::reshape`]; avoids the buffer copy.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts differ.
    pub fn reshape_inplace(&mut self, shape: &[usize]) -> Result<()> {
        if shape.len() > MAX_RANK {
            return Err(TensorError::InvalidShape {
                shape: shape.to_vec(),
                reason: "rank exceeds MAX_RANK",
            });
        }
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(TensorError::LengthMismatch {
                shape: shape.to_vec(),
                len: self.data.len(),
            });
        }
        self.shape = Shape::from_slice(shape);
        Ok(())
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn transpose(&self) -> Result<Tensor> {
        self.expect_rank(2, "transpose")?;
        let (rows, cols) = (self.shape()[0], self.shape()[1]);
        let mut out = workspace::tensor_raw(&[cols, rows]);
        for r in 0..rows {
            for c in 0..cols {
                out.data[c * rows + r] = self.data[r * cols + c];
            }
        }
        Ok(out)
    }

    /// Extracts rows `[start, end)` of a rank-2 tensor into a new tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices or
    /// [`TensorError::IndexOutOfBounds`] for a bad range.
    pub fn slice_rows(&self, start: usize, end: usize) -> Result<Tensor> {
        self.expect_rank(2, "slice_rows")?;
        let (rows, cols) = (self.shape()[0], self.shape()[1]);
        if start > end || end > rows {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![start, end],
                shape: self.shape().to_vec(),
            });
        }
        let mut out = workspace::tensor_raw(&[end - start, cols]);
        out.data
            .copy_from_slice(&self.data[start * cols..end * cols]);
        Ok(out)
    }

    /// Stacks rank-≥1 tensors along a new leading batch axis.
    ///
    /// Each input must have identical shape `s`; the result has shape
    /// `[inputs.len(), s...]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes disagree, or
    /// [`TensorError::InvalidShape`] for an empty input list or a result
    /// rank above [`MAX_RANK`].
    pub fn stack(inputs: &[&Tensor]) -> Result<Tensor> {
        let first = inputs.first().ok_or(TensorError::InvalidShape {
            shape: vec![],
            reason: "cannot stack zero tensors",
        })?;
        if first.ndim() + 1 > MAX_RANK {
            return Err(TensorError::InvalidShape {
                shape: first.shape().to_vec(),
                reason: "stack result rank exceeds MAX_RANK",
            });
        }
        let mut data = Vec::with_capacity(first.len() * inputs.len());
        for t in inputs {
            if t.shape != first.shape {
                return Err(TensorError::ShapeMismatch {
                    lhs: first.shape().to_vec(),
                    rhs: t.shape().to_vec(),
                    op: "stack",
                });
            }
            data.extend_from_slice(&t.data);
        }
        let mut dims = [0usize; MAX_RANK];
        dims[0] = inputs.len();
        dims[1..=first.ndim()].copy_from_slice(first.shape());
        Ok(Tensor {
            shape: Shape::from_slice(&dims[..first.ndim() + 1]),
            data,
        })
    }

    /// Concatenates rank-2 tensors along axis 0 (rows).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if column counts disagree or
    /// [`TensorError::InvalidShape`] for an empty input list.
    pub fn concat_rows(inputs: &[&Tensor]) -> Result<Tensor> {
        let first = inputs.first().ok_or(TensorError::InvalidShape {
            shape: vec![],
            reason: "cannot concat zero tensors",
        })?;
        first.expect_rank(2, "concat_rows")?;
        let cols = first.shape()[1];
        let mut rows = 0;
        let mut data = Vec::new();
        for t in inputs {
            t.expect_rank(2, "concat_rows")?;
            if t.shape()[1] != cols {
                return Err(TensorError::ShapeMismatch {
                    lhs: first.shape().to_vec(),
                    rhs: t.shape().to_vec(),
                    op: "concat_rows",
                });
            }
            rows += t.shape()[0];
            data.extend_from_slice(&t.data);
        }
        Ok(Tensor {
            shape: Shape::from_slice(&[rows, cols]),
            data,
        })
    }

    // ---------------------------------------------------------------------
    // Elementwise arithmetic
    // ---------------------------------------------------------------------

    fn check_same_shape(&self, other: &Tensor, op: &'static str) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().to_vec(),
                rhs: other.shape().to_vec(),
                op,
            });
        }
        Ok(())
    }

    /// Applies `f` pairwise into a workspace-backed result tensor.
    fn zip_map(
        &self,
        other: &Tensor,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor> {
        self.check_same_shape(other, op)?;
        let mut out = workspace::tensor_raw(self.shape());
        for ((o, &a), &b) in out.data.iter_mut().zip(&self.data).zip(&other.data) {
            *o = f(a, b);
        }
        Ok(out)
    }

    /// Elementwise sum, returning a new tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add_tensor(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, "add", |a, b| a + b)
    }

    /// Elementwise `self += other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add_assign_tensor(&mut self, other: &Tensor) -> Result<()> {
        self.check_same_shape(other, "add_assign")?;
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(())
    }

    /// Elementwise `self += alpha * other` (axpy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        self.check_same_shape(other, "axpy")?;
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Elementwise difference, returning a new tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub_tensor(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, "sub", |a, b| a - b)
    }

    /// Elementwise (Hadamard) product, returning a new tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul_tensor(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, "mul", |a, b| a * b)
    }

    /// Multiplies every element by `s` in place.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Returns a copy scaled by `s`.
    pub fn scaled(&self, s: f32) -> Tensor {
        let mut out = self.pooled_clone();
        out.scale(s);
        out
    }

    /// Adds `s` to every element in place.
    pub fn add_scalar(&mut self, s: f32) {
        for v in &mut self.data {
            *v += s;
        }
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut out = workspace::tensor_raw(self.shape());
        for (o, &v) in out.data.iter_mut().zip(&self.data) {
            *o = f(v);
        }
        out
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill(&mut self, value: f32) {
        for v in &mut self.data {
            *v = value;
        }
    }

    // ---------------------------------------------------------------------
    // Reductions & row-wise ops
    // ---------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (−∞ for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (+∞ for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Squared Frobenius norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Index of the maximum element of each row of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn argmax_rows(&self) -> Result<Vec<usize>> {
        self.expect_rank(2, "argmax_rows")?;
        let (rows, cols) = (self.shape()[0], self.shape()[1]);
        let mut out = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &self.data[r * cols..(r + 1) * cols];
            let mut best = 0;
            for (i, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = i;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    /// Column sums of a rank-2 tensor, returned as shape `[cols]` (buffer
    /// drawn from the [`workspace`] arena).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn sum_axis0(&self) -> Result<Tensor> {
        self.expect_rank(2, "sum_axis0")?;
        let (rows, cols) = (self.shape()[0], self.shape()[1]);
        let mut out = workspace::tensor_zeroed(&[cols]);
        for r in 0..rows {
            let row = &self.data[r * cols..(r + 1) * cols];
            for (o, &v) in out.data.iter_mut().zip(row) {
                *o += v;
            }
        }
        Ok(out)
    }

    /// Row sums of a rank-2 tensor, returned as shape `[rows]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn sum_axis1(&self) -> Result<Tensor> {
        self.expect_rank(2, "sum_axis1")?;
        let (rows, cols) = (self.shape()[0], self.shape()[1]);
        let mut out = workspace::tensor_raw(&[rows]);
        for r in 0..rows {
            out.data[r] = self.data[r * cols..(r + 1) * cols].iter().sum();
        }
        Ok(out)
    }

    /// Adds a `[cols]` bias vector to every row of a `[rows, cols]` matrix.
    ///
    /// # Errors
    ///
    /// Returns shape errors if `self` is not rank 2 or `bias` is not
    /// `[cols]`.
    pub fn add_row_broadcast(&mut self, bias: &Tensor) -> Result<()> {
        self.expect_rank(2, "add_row_broadcast")?;
        let (rows, cols) = (self.shape()[0], self.shape()[1]);
        if bias.shape != [cols] {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().to_vec(),
                rhs: bias.shape().to_vec(),
                op: "add_row_broadcast",
            });
        }
        for r in 0..rows {
            for c in 0..cols {
                self.data[r * cols + c] += bias.data[c];
            }
        }
        Ok(())
    }

    /// Row-wise softmax of a `[rows, cols]` matrix.
    ///
    /// Numerically stabilized by subtracting the row max before
    /// exponentiation.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn softmax_rows(&self) -> Result<Tensor> {
        self.expect_rank(2, "softmax_rows")?;
        let (rows, cols) = (self.shape()[0], self.shape()[1]);
        let mut out = self.pooled_clone();
        for r in 0..rows {
            let row = &mut out.data[r * cols..(r + 1) * cols];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - m).exp();
                sum += *v;
            }
            // A row of -inf logits would give sum == 0; fall back to uniform.
            if sum <= 0.0 || !sum.is_finite() {
                for v in row.iter_mut() {
                    *v = 1.0 / cols as f32;
                }
            } else {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
        Ok(out)
    }

    /// Row-wise log-softmax of a `[rows, cols]` matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn log_softmax_rows(&self) -> Result<Tensor> {
        self.expect_rank(2, "log_softmax_rows")?;
        let (rows, cols) = (self.shape()[0], self.shape()[1]);
        let mut out = self.pooled_clone();
        for r in 0..rows {
            let row = &mut out.data[r * cols..(r + 1) * cols];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let log_sum = row.iter().map(|v| (v - m).exp()).sum::<f32>().ln() + m;
            for v in row.iter_mut() {
                *v -= log_sum;
            }
        }
        Ok(out)
    }

    // ---------------------------------------------------------------------
    // Matrix multiplication
    // ---------------------------------------------------------------------
    //
    // All entry points below run on the **scalar reference backend**
    // ([`crate::backend::ScalarBackend`]) with a [`GemmSpec`] describing
    // dims and operand layouts; the dispatching versions fan rows out over
    // threads for large products, the `*_serial` versions pin
    // single-threaded execution (benches and the determinism tests compare
    // the two). Every variant produces bitwise-identical results because
    // the reference kernel fixes the per-element accumulation order
    // regardless of threading. Backend-selectable products live on
    // [`crate::backend::ComputeCtx`]; these methods *are* the pinned
    // reference the other backends are tested against.

    /// Matrix product `self @ other` for rank-2 tensors.
    ///
    /// The result buffer comes from the thread's [`workspace`] arena.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] or
    /// [`TensorError::MatmulDimMismatch`].
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        self.reference_product(
            other,
            MatLayout::RowMajor,
            MatLayout::RowMajor,
            "matmul",
            true,
        )
    }

    /// Single-threaded reference entry point for [`Tensor::matmul`]
    /// (same kernel, threading pinned off; bitwise identical).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] or
    /// [`TensorError::MatmulDimMismatch`].
    pub fn matmul_serial(&self, other: &Tensor) -> Result<Tensor> {
        self.reference_product(
            other,
            MatLayout::RowMajor,
            MatLayout::RowMajor,
            "matmul",
            false,
        )
    }

    /// `self @ other.T` without materializing the transpose.
    ///
    /// `self` is `[m, k]`, `other` is `[n, k]`; result is `[m, n]`. The
    /// kernel packs `other`ᵀ into a workspace panel buffer, then runs the
    /// same inner loop as [`Tensor::matmul`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] or
    /// [`TensorError::MatmulDimMismatch`].
    pub fn matmul_nt(&self, other: &Tensor) -> Result<Tensor> {
        self.reference_product(
            other,
            MatLayout::RowMajor,
            MatLayout::Transposed,
            "matmul_nt",
            true,
        )
    }

    /// Single-threaded reference entry point for [`Tensor::matmul_nt`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] or
    /// [`TensorError::MatmulDimMismatch`].
    pub fn matmul_nt_serial(&self, other: &Tensor) -> Result<Tensor> {
        self.reference_product(
            other,
            MatLayout::RowMajor,
            MatLayout::Transposed,
            "matmul_nt",
            false,
        )
    }

    /// `self.T @ other` without materializing the transpose.
    ///
    /// `self` is `[k, m]`, `other` is `[k, n]`; result is `[m, n]`. The
    /// kernel packs `self`ᵀ into a workspace buffer, then runs the same
    /// inner loop as [`Tensor::matmul`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] or
    /// [`TensorError::MatmulDimMismatch`].
    pub fn matmul_tn(&self, other: &Tensor) -> Result<Tensor> {
        self.reference_product(
            other,
            MatLayout::Transposed,
            MatLayout::RowMajor,
            "matmul_tn",
            true,
        )
    }

    /// Single-threaded reference entry point for [`Tensor::matmul_tn`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] or
    /// [`TensorError::MatmulDimMismatch`].
    pub fn matmul_tn_serial(&self, other: &Tensor) -> Result<Tensor> {
        self.reference_product(
            other,
            MatLayout::Transposed,
            MatLayout::RowMajor,
            "matmul_tn",
            false,
        )
    }

    /// Runs the product on the scalar reference backend, with the fan-out
    /// hint sized by [`GemmSpec::parallel_worthwhile`] or pinned off.
    fn reference_product(
        &self,
        other: &Tensor,
        lhs: MatLayout,
        rhs: MatLayout,
        op: &'static str,
        dispatch: bool,
    ) -> Result<Tensor> {
        let mut spec = self.gemm_spec(other, lhs, rhs, op)?;
        if dispatch {
            spec = spec.parallel_worthwhile();
        }
        let mut out = workspace::tensor_zeroed(&[spec.m, spec.n]);
        ScalarBackend.gemm(&spec, &self.data, &other.data, &mut out.data);
        Ok(out)
    }

    /// Validates operand ranks/shapes for the matmul family against the
    /// given operand layouts and returns the corresponding [`GemmSpec`]
    /// (fan-out hint unset).
    pub(crate) fn gemm_spec(
        &self,
        other: &Tensor,
        lhs: MatLayout,
        rhs: MatLayout,
        op: &'static str,
    ) -> Result<GemmSpec> {
        self.expect_rank(2, op)?;
        other.expect_rank(2, op)?;
        let (m, k) = match lhs {
            MatLayout::Transposed => (self.shape()[1], self.shape()[0]),
            MatLayout::RowMajor => (self.shape()[0], self.shape()[1]),
        };
        let (k2, n) = match rhs {
            MatLayout::Transposed => (other.shape()[1], other.shape()[0]),
            MatLayout::RowMajor => (other.shape()[0], other.shape()[1]),
        };
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch {
                lhs: [m, k],
                rhs: [k2, n],
            });
        }
        Ok(GemmSpec::with_layouts(m, k, n, lhs, rhs))
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?} [", self.shape)?;
        const LIMIT: usize = 8;
        for (i, v) in self.data.iter().take(LIMIT).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.data.len() > LIMIT {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

impl Add<&Tensor> for &Tensor {
    type Output = Tensor;

    /// # Panics
    ///
    /// Panics on shape mismatch; use [`Tensor::add_tensor`] for a fallible
    /// version.
    fn add(self, rhs: &Tensor) -> Tensor {
        self.add_tensor(rhs).expect("tensor add: shape mismatch")
    }
}

impl Sub<&Tensor> for &Tensor {
    type Output = Tensor;

    /// # Panics
    ///
    /// Panics on shape mismatch; use [`Tensor::sub_tensor`] for a fallible
    /// version.
    fn sub(self, rhs: &Tensor) -> Tensor {
        self.sub_tensor(rhs).expect("tensor sub: shape mismatch")
    }
}

impl Mul<f32> for &Tensor {
    type Output = Tensor;

    fn mul(self, rhs: f32) -> Tensor {
        self.scaled(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
        let err = Tensor::from_vec(vec![1.0; 5], &[2, 3]).unwrap_err();
        assert!(matches!(err, TensorError::LengthMismatch { .. }));
    }

    #[test]
    fn from_vec_rejects_oversized_rank() {
        let err = Tensor::from_vec(vec![1.0], &[1; MAX_RANK + 1]).unwrap_err();
        assert!(matches!(err, TensorError::InvalidShape { .. }));
    }

    #[test]
    fn indexing_round_trips() {
        let mut t = Tensor::zeros(&[2, 3, 4]);
        t.set(&[1, 2, 3], 42.0).unwrap();
        assert_eq!(t.at(&[1, 2, 3]).unwrap(), 42.0);
        assert_eq!(t.at(&[0, 0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn indexing_rejects_out_of_bounds() {
        let t = Tensor::zeros(&[2, 2]);
        assert!(t.at(&[2, 0]).is_err());
        assert!(t.at(&[0]).is_err());
        assert!(t.at(&[0, 0, 0]).is_err());
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_bad_dims() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(matches!(
            a.matmul(&b).unwrap_err(),
            TensorError::MatmulDimMismatch { .. }
        ));
    }

    #[test]
    fn matmul_nt_equals_matmul_with_transpose() {
        let a = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]).unwrap();
        let b = Tensor::from_vec((0..12).map(|v| v as f32 * 0.5).collect(), &[4, 3]).unwrap();
        let via_nt = a.matmul_nt(&b).unwrap();
        let via_t = a.matmul(&b.transpose().unwrap()).unwrap();
        assert_eq!(via_nt, via_t);
    }

    #[test]
    fn matmul_tn_equals_transpose_then_matmul() {
        let a = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[3, 2]).unwrap();
        let b = Tensor::from_vec((0..12).map(|v| v as f32 * 0.25).collect(), &[3, 4]).unwrap();
        let via_tn = a.matmul_tn(&b).unwrap();
        let via_t = a.transpose().unwrap().matmul(&b).unwrap();
        assert_eq!(via_tn, via_t);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let s = t.softmax_rows().unwrap();
        for r in 0..2 {
            let row = s.row(r).unwrap();
            assert!(close(row.iter().sum::<f32>(), 1.0));
            assert!(row[2] > row[1] && row[1] > row[0]);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let shifted = t.map(|v| v + 100.0);
        let a = t.softmax_rows().unwrap();
        let b = shifted.softmax_rows().unwrap();
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!(close(*x, *y));
        }
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let t = Tensor::from_vec(vec![0.5, -0.25, 2.0, 1.0], &[1, 4]).unwrap();
        let s = t.softmax_rows().unwrap();
        let ls = t.log_softmax_rows().unwrap();
        for (p, lp) in s.data().iter().zip(ls.data()) {
            assert!(close(p.ln(), *lp));
        }
    }

    #[test]
    fn argmax_rows_picks_first_max() {
        let t = Tensor::from_vec(vec![0.0, 5.0, 5.0, 1.0, 0.0, -1.0], &[2, 3]).unwrap();
        assert_eq!(t.argmax_rows().unwrap(), vec![1, 0]);
    }

    #[test]
    fn transpose_involution() {
        let t = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[3, 4]).unwrap();
        assert_eq!(t.transpose().unwrap().transpose().unwrap(), t);
    }

    #[test]
    fn stack_builds_batch_axis() {
        let a = Tensor::ones(&[2, 2]);
        let b = Tensor::zeros(&[2, 2]);
        let s = Tensor::stack(&[&a, &b]).unwrap();
        assert_eq!(s.shape(), &[2, 2, 2]);
        assert_eq!(s.at(&[0, 1, 1]).unwrap(), 1.0);
        assert_eq!(s.at(&[1, 1, 1]).unwrap(), 0.0);
    }

    #[test]
    fn stack_rejects_mismatched_shapes() {
        let a = Tensor::ones(&[2, 2]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(Tensor::stack(&[&a, &b]).is_err());
    }

    #[test]
    fn concat_rows_appends() {
        let a = Tensor::ones(&[1, 3]);
        let b = Tensor::zeros(&[2, 3]);
        let c = Tensor::concat_rows(&[&a, &b]).unwrap();
        assert_eq!(c.shape(), &[3, 3]);
        assert_eq!(c.row(0).unwrap(), &[1.0, 1.0, 1.0]);
        assert_eq!(c.row(2).unwrap(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn add_row_broadcast_adds_bias_per_row() {
        let mut t = Tensor::zeros(&[2, 3]);
        let bias = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        t.add_row_broadcast(&bias).unwrap();
        assert_eq!(t.row(0).unwrap(), &[1.0, 2.0, 3.0]);
        assert_eq!(t.row(1).unwrap(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0, 0.0], &[2, 2]).unwrap();
        assert!(close(t.sum(), 2.0));
        assert!(close(t.mean(), 0.5));
        assert!(close(t.max(), 3.0));
        assert!(close(t.min(), -2.0));
        assert!(close(t.norm_sq(), 14.0));
        assert_eq!(t.sum_axis0().unwrap().data(), &[4.0, -2.0]);
        assert_eq!(t.sum_axis1().unwrap().data(), &[-1.0, 3.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones(&[3]);
        let b = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.data(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn display_truncates() {
        let t = Tensor::zeros(&[100]);
        let s = format!("{t}");
        assert!(s.contains('…'));
        assert!(s.len() < 200);
    }

    #[test]
    fn eye_is_matmul_identity() {
        let t = Tensor::from_vec((0..9).map(|v| v as f32).collect(), &[3, 3]).unwrap();
        assert_eq!(t.matmul(&Tensor::eye(3)).unwrap(), t);
        assert_eq!(Tensor::eye(3).matmul(&t).unwrap(), t);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn pooled_clone_and_copy_from_round_trip() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let c = t.pooled_clone();
        assert_eq!(c, t);
        let mut dst = Tensor::zeros(&[4]);
        dst.copy_from(&t).unwrap();
        assert_eq!(dst.shape(), &[2, 2]);
        assert_eq!(dst.data(), t.data());
        assert!(Tensor::zeros(&[3]).copy_from(&t).is_err());
    }
}
