//! Deterministic weight initialization.
//!
//! Experiments in EXPERIMENTS.md must be byte-reproducible, so every
//! initializer takes an explicit RNG; the workspace standardizes on
//! [`rand_chacha::ChaCha8Rng`] streams derived from a single experiment
//! seed.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::Tensor;

/// Weight-initialization scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Init {
    /// All zeros (biases, batch-norm shift).
    Zeros,
    /// All ones (batch-norm scale).
    Ones,
    /// Uniform on `[-limit, limit]`.
    Uniform {
        /// Half-width of the interval.
        limit: f32,
    },
    /// Gaussian with the given standard deviation.
    Normal {
        /// Standard deviation.
        std: f32,
    },
    /// Xavier/Glorot uniform: `limit = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform,
    /// He (Kaiming) normal: `std = sqrt(2 / fan_in)` — the right choice in
    /// front of ReLU nonlinearities, used for all conv/dense weights here.
    HeNormal,
}

impl Init {
    /// Materializes a tensor of `shape` using fan statistics `fan_in` /
    /// `fan_out` (callers compute fans from the layer geometry).
    pub fn materialize(
        self,
        shape: &[usize],
        fan_in: usize,
        fan_out: usize,
        rng: &mut impl Rng,
    ) -> Tensor {
        let len: usize = shape.iter().product();
        let data: Vec<f32> = match self {
            Init::Zeros => vec![0.0; len],
            Init::Ones => vec![1.0; len],
            Init::Uniform { limit } => (0..len).map(|_| rng.gen_range(-limit..=limit)).collect(),
            Init::Normal { std } => (0..len).map(|_| gaussian(rng) * std).collect(),
            Init::XavierUniform => {
                let limit = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
                (0..len).map(|_| rng.gen_range(-limit..=limit)).collect()
            }
            Init::HeNormal => {
                let std = (2.0 / fan_in.max(1) as f32).sqrt();
                (0..len).map(|_| gaussian(rng) * std).collect()
            }
        };
        Tensor::from_vec(data, shape).expect("init: shape/len always consistent")
    }
}

/// Standard normal sample via Box–Muller.
///
/// `rand_distr` is not in the offline allow-list, so we carry the 6-line
/// transform ourselves.
pub fn gaussian(rng: &mut impl Rng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// Derives a named RNG stream from a base seed.
///
/// Each component (model init, data generation, defect injection, probe
/// init…) gets its own stream so that changing one does not perturb the
/// others — the key property for the ablation experiments.
pub fn stream_rng(base_seed: u64, stream: &str) -> ChaCha8Rng {
    // FNV-1a over the stream name, folded into the seed.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in stream.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    ChaCha8Rng::seed_from_u64(base_seed ^ h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let mut rng = stream_rng(1, "t");
        let z = Init::Zeros.materialize(&[3, 3], 3, 3, &mut rng);
        assert!(z.data().iter().all(|&v| v == 0.0));
        let o = Init::Ones.materialize(&[3], 3, 3, &mut rng);
        assert!(o.data().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn he_normal_has_expected_scale() {
        let mut rng = stream_rng(42, "he");
        let t = Init::HeNormal.materialize(&[10_000], 50, 10, &mut rng);
        let mean = t.mean();
        let var = t.data().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / t.len() as f32;
        let expected = 2.0 / 50.0;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!(
            (var - expected).abs() / expected < 0.15,
            "var {var} vs {expected}"
        );
    }

    #[test]
    fn xavier_uniform_within_limit() {
        let mut rng = stream_rng(7, "xavier");
        let t = Init::XavierUniform.materialize(&[1000], 30, 30, &mut rng);
        let limit = (6.0f32 / 60.0).sqrt();
        assert!(t.data().iter().all(|v| v.abs() <= limit + 1e-6));
        assert!(t.max() > limit * 0.8); // actually spans the range
    }

    #[test]
    fn stream_rng_is_deterministic_and_stream_separated() {
        let a: Vec<u32> = {
            let mut r = stream_rng(9, "model");
            (0..4).map(|_| r.gen()).collect()
        };
        let b: Vec<u32> = {
            let mut r = stream_rng(9, "model");
            (0..4).map(|_| r.gen()).collect()
        };
        let c: Vec<u32> = {
            let mut r = stream_rng(9, "data");
            (0..4).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gaussian_is_standardish() {
        let mut rng = stream_rng(3, "g");
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
