//! Unified cache-blocked, B-panel-packed GEMM.
//!
//! One kernel computes all three products the network needs — `A·B`,
//! `A·Bᵀ`, and `Aᵀ·B` — parameterized by [`GemmOp`]. Operands that would
//! be walked with a stride are first packed into contiguous workspace
//! buffers ([`crate::workspace`]): `Aᵀ` for [`GemmOp::TN`], `Bᵀ` for
//! [`GemmOp::NT`], and wide `B` matrices into cache-sized column panels.
//! After packing, every variant runs the same inner loop.
//!
//! # Determinism contract
//!
//! `tests/determinism.rs` pins serial and parallel builds to *bitwise*
//! identical results, so the accumulation order here is load-bearing:
//!
//! * every output element accumulates its `k` terms with `p` ascending, as
//!   a single dependent add chain;
//! * [`GemmOp::NN`] and [`GemmOp::TN`] skip terms whose `A` coefficient is
//!   exactly `0.0` (matching the historical reference kernels — skipping
//!   is *not* a pure optimization, it changes `-0.0` and `NaN`/`inf`
//!   propagation); [`GemmOp::NT`] never skips (its reference was a plain
//!   dot product);
//! * the 4-step unrolled chain `(((o + a₀x₀) + a₁x₁) + a₂x₂) + a₃x₃`
//!   performs the same adds in the same order as four single steps;
//! * parallelism only changes which thread computes an output row, never
//!   the order of operations within one.

use crate::workspace;

/// Which operand, if any, the product uses transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmOp {
    /// `out = A[m,k] · B[k,n]`, skipping zero `A` coefficients.
    NN,
    /// `out = A[m,k] · B[n,k]ᵀ`, no zero skipping.
    NT,
    /// `out = A[k,m]ᵀ · B[k,n]`, skipping zero `A` coefficients.
    TN,
}

/// Panel width (output columns) processed per cache block. One output
/// segment plus four packed `B` rows of this width stay inside L1.
const PANEL: usize = 512;

/// Accumulates the selected product into `out` (`m · n`, caller-zeroed for
/// a plain product).
///
/// `a` and `b` are row-major with the shapes implied by `op`; `parallel`
/// requests fan-out over output rows (honored only when the `parallel`
/// feature is active, enough threads exist, and the product is large
/// enough to pay for dispatch — smaller products run inline).
///
/// # Panics
///
/// Panics if slice lengths disagree with `(m, k, n)` and `op`.
#[allow(clippy::too_many_arguments)]
pub fn gemm_into(
    op: GemmOp,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    parallel: bool,
) {
    assert_eq!(a.len(), m * k, "gemm: lhs length");
    assert_eq!(b.len(), k * n, "gemm: rhs length");
    assert_eq!(out.len(), m * n, "gemm: out length");
    if m == 0 || n == 0 || k == 0 {
        return;
    }

    // Pack strided operands into contiguous workspace buffers.
    let a_packed = match op {
        GemmOp::TN => Some(pack_a_transposed(a, m, k)),
        _ => None,
    };
    let a_eff: &[f32] = a_packed.as_deref().unwrap_or(a);

    let b_packed = match op {
        GemmOp::NT => Some(pack_b_panels_transposed(b, k, n)),
        // Row-major B is already a single contiguous panel when it fits.
        GemmOp::NN | GemmOp::TN if n > PANEL => Some(pack_b_panels(b, k, n)),
        _ => None,
    };
    let b_eff: &[f32] = b_packed.as_deref().unwrap_or(b);

    let skip_zero = op != GemmOp::NT;
    let row = |i: usize, out_row: &mut [f32]| {
        let a_row = &a_eff[i * k..(i + 1) * k];
        let mut j0 = 0;
        while j0 < n {
            let w = PANEL.min(n - j0);
            let panel = &b_eff[(j0 / PANEL) * k * PANEL..][..k * w];
            accumulate_panel(a_row, panel, &mut out_row[j0..j0 + w], w, skip_zero);
            j0 += w;
        }
    };

    if parallel {
        // Grain 0: the caller already decided this product is worth
        // fanning out; `for_chunks_mut` still falls back to the serial
        // loop when the feature is off or no extra threads exist.
        crate::chunks::for_chunks_mut(out, n, 0, |i, out_row| row(i, out_row));
    } else {
        for (i, out_row) in out.chunks_mut(n).enumerate() {
            row(i, out_row);
        }
    }

    if let Some(buf) = a_packed {
        workspace::recycle(buf);
    }
    if let Some(buf) = b_packed {
        workspace::recycle(buf);
    }
}

/// Accumulates `out_seg[j] += Σ_p a_row[p] · panel[p·w + j]` with `p`
/// ascending per element. Four `k` steps run as one dependent chain per
/// element (same adds, same order, fewer L1 round-trips); when
/// `skip_zero`, any zero coefficient in a quad falls back to skip-aware
/// single steps, preserving the reference kernels' exact semantics.
fn accumulate_panel(a_row: &[f32], panel: &[f32], out_seg: &mut [f32], w: usize, skip_zero: bool) {
    let k = a_row.len();
    let mut p = 0;
    while p + 3 < k {
        let (a0, a1, a2, a3) = (a_row[p], a_row[p + 1], a_row[p + 2], a_row[p + 3]);
        if !skip_zero || (a0 != 0.0 && a1 != 0.0 && a2 != 0.0 && a3 != 0.0) {
            let b0 = &panel[p * w..(p + 1) * w];
            let b1 = &panel[(p + 1) * w..(p + 2) * w];
            let b2 = &panel[(p + 2) * w..(p + 3) * w];
            let b3 = &panel[(p + 3) * w..(p + 4) * w];
            for ((((o, &x0), &x1), &x2), &x3) in out_seg.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3)
            {
                *o = (((*o + a0 * x0) + a1 * x1) + a2 * x2) + a3 * x3;
            }
        } else {
            for (q, &a) in a_row[p..p + 4].iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &panel[(p + q) * w..(p + q + 1) * w];
                for (o, &x) in out_seg.iter_mut().zip(b_row) {
                    *o += a * x;
                }
            }
        }
        p += 4;
    }
    for (q, &a) in a_row[p..].iter().enumerate() {
        if skip_zero && a == 0.0 {
            continue;
        }
        let b_row = &panel[(p + q) * w..(p + q + 1) * w];
        for (o, &x) in out_seg.iter_mut().zip(b_row) {
            *o += a * x;
        }
    }
}

/// Packs `a` (`[k, m]` row-major) as `Aᵀ` (`[m, k]` row-major) into a
/// workspace buffer. Source rows stream; the `m` destination rows being
/// interleaved stay within a few open cache lines.
pub(crate) fn pack_a_transposed(a: &[f32], m: usize, k: usize) -> Vec<f32> {
    let mut dst = workspace::take_raw(m * k);
    for p in 0..k {
        let src_row = &a[p * m..(p + 1) * m];
        for (i, &v) in src_row.iter().enumerate() {
            dst[i * k + p] = v;
        }
    }
    dst
}

/// Packs row-major `b` (`[k, n]`) into contiguous column panels of width
/// [`PANEL`]: panel `q` starts at `q·k·PANEL` and stores its `k` rows
/// (width `min(PANEL, n − q·PANEL)`) back to back.
fn pack_b_panels(b: &[f32], k: usize, n: usize) -> Vec<f32> {
    let mut dst = workspace::take_raw(k * n);
    let mut j0 = 0;
    while j0 < n {
        let w = PANEL.min(n - j0);
        let panel = &mut dst[(j0 / PANEL) * k * PANEL..];
        for p in 0..k {
            panel[p * w..(p + 1) * w].copy_from_slice(&b[p * n + j0..p * n + j0 + w]);
        }
        j0 += w;
    }
    dst
}

/// Packs `b` (`[n, k]` row-major) as `Bᵀ` in the panel layout of
/// [`pack_b_panels`]. Source rows stream; writes fan across one panel
/// column.
fn pack_b_panels_transposed(b: &[f32], k: usize, n: usize) -> Vec<f32> {
    let mut dst = workspace::take_raw(k * n);
    let mut j0 = 0;
    while j0 < n {
        let w = PANEL.min(n - j0);
        let panel = &mut dst[(j0 / PANEL) * k * PANEL..];
        for jj in 0..w {
            let src_row = &b[(j0 + jj) * k..(j0 + jj + 1) * k];
            for (p, &v) in src_row.iter().enumerate() {
                panel[p * w + jj] = v;
            }
        }
        j0 += w;
    }
    dst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(len: usize, salt: u64) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let h = (i as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(salt.wrapping_mul(0x2545_F491_4F6C_DD1D));
                ((h >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
            })
            .collect()
    }

    fn with_zeros(mut v: Vec<f32>) -> Vec<f32> {
        for (i, x) in v.iter_mut().enumerate() {
            if i % 5 == 0 {
                *x = 0.0;
            }
        }
        v
    }

    /// Independent per-element reference with the documented order and
    /// skip semantics.
    fn naive(op: GemmOp, a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    let av = match op {
                        GemmOp::TN => a[p * m + i],
                        _ => a[i * k + p],
                    };
                    if op != GemmOp::NT && av == 0.0 {
                        continue;
                    }
                    let bv = match op {
                        GemmOp::NT => b[j * k + p],
                        _ => b[p * n + j],
                    };
                    acc += av * bv;
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    #[test]
    fn matches_naive_reference_bitwise() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (16, 72, 16),
            (33, 9, 130),
            (4, 6, PANEL + 3), // exercises the panel split
            (2, 70, 2 * PANEL + 1),
        ] {
            for op in [GemmOp::NN, GemmOp::NT, GemmOp::TN] {
                for zeros in [false, true] {
                    let mut a = synth(m * k, 1);
                    let mut b = synth(k * n, 2);
                    if zeros {
                        a = with_zeros(a);
                        b = with_zeros(b);
                    }
                    let expect = naive(op, &a, &b, m, k, n);
                    for parallel in [false, true] {
                        let mut out = vec![0.0f32; m * n];
                        gemm_into(op, &a, &b, &mut out, m, k, n, parallel);
                        assert_eq!(
                            out, expect,
                            "{op:?} {m}x{k}x{n} zeros={zeros} parallel={parallel}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn empty_dims_are_no_ops() {
        let mut out = vec![1.0f32; 0];
        gemm_into(GemmOp::NN, &[], &[], &mut out, 0, 0, 0, false);
        let mut out = vec![0.0f32; 4];
        gemm_into(GemmOp::NN, &[], &[], &mut out, 2, 0, 2, false);
        assert_eq!(out, vec![0.0; 4]);
    }

    #[test]
    fn accumulates_into_existing_output() {
        let a = vec![1.0f32, 2.0];
        let b = vec![3.0f32, 4.0];
        let mut out = vec![10.0f32];
        gemm_into(GemmOp::NN, &a, &b, &mut out, 1, 2, 1, false);
        assert_eq!(out, vec![10.0 + 3.0 + 8.0]);
    }
}
