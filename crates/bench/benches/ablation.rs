//! Ablation benchmarks for the design decisions called out in DESIGN.md:
//!
//! 1. probe placement granularity (all probes vs. a truncated subset),
//! 2. alignment metric (Jensen–Shannon vs. cosine), and
//! 3. population evidence on vs. off.
//!
//! Criterion measures the cost side; the quality side (diagnosis accuracy
//! under each variant) is printed once at startup so `bench_output.txt`
//! records both.

use criterion::{criterion_group, criterion_main, Criterion};
use deepmorph::classify::{ClassifierConfig, DefectClassifier};
use deepmorph::instrument::{InstrumentedModel, ProbeTrainingConfig};
use deepmorph::pattern::ClassPatterns;
use deepmorph::prelude::*;
use deepmorph::specifics::FootprintSpecifics;
use deepmorph_data::DataGenerator;
use deepmorph_tensor::init::stream_rng;

struct Fixture {
    patterns: ClassPatterns,
    specifics_js: Vec<FootprintSpecifics>,
    specifics_cos: Vec<FootprintSpecifics>,
}

fn fixture() -> Fixture {
    let mut rng = stream_rng(1, "ablation-data");
    let train = SynthDigits::new().generate(30, &mut rng);
    let faulty = SynthDigits::new().generate(5, &mut rng);
    let spec = ModelSpec::new(ModelFamily::LeNet, ModelScale::Tiny, [1, 16, 16], 10);
    let mut mrng = stream_rng(2, "ablation-model");
    let model = build_model(&spec, &mut mrng).unwrap();
    let mut inst = InstrumentedModel::build(
        model,
        train.images(),
        train.labels(),
        10,
        &ProbeTrainingConfig {
            epochs: 10,
            ..Default::default()
        },
    )
    .unwrap();
    let train_fps = inst.footprints(train.images()).unwrap();
    let patterns =
        ClassPatterns::learn(&train_fps, train.labels(), inst.probe_accuracies()).unwrap();
    let faulty_fps = inst.footprints(faulty.images()).unwrap();
    let build = |metric: AlignmentMetric| -> Vec<FootprintSpecifics> {
        faulty_fps
            .iter()
            .enumerate()
            .map(|(i, fp)| {
                FootprintSpecifics::compute(
                    fp,
                    faulty.labels()[i],
                    (faulty.labels()[i] + 1) % 10,
                    &patterns,
                    metric,
                )
            })
            .collect()
    };
    Fixture {
        specifics_js: build(AlignmentMetric::JensenShannon),
        specifics_cos: build(AlignmentMetric::Cosine),
        patterns,
    }
}

fn print_quality_ablation() {
    // One quick diagnosis-quality comparison across the ablation axes,
    // recorded in bench output. Uses a single ITD scenario.
    let configs: Vec<(&str, ClassifierConfig)> = vec![
        ("js+population", ClassifierConfig::default()),
        (
            "cosine+population",
            ClassifierConfig {
                metric: AlignmentMetric::Cosine,
                ..ClassifierConfig::default()
            },
        ),
        (
            "js,no-population",
            ClassifierConfig {
                use_population: false,
                ..ClassifierConfig::default()
            },
        ),
    ];
    println!("# ablation: diagnosis of an ITD-injected LeNet under classifier variants");
    for (name, config) in configs {
        let scenario = Scenario::builder(ModelFamily::LeNet, DatasetKind::Digits)
            .seed(7)
            .train_per_class(60)
            .test_per_class(20)
            .train_config(TrainConfig {
                epochs: 6,
                batch_size: 32,
                learning_rate: 0.05,
                lr_decay: 0.9,
                ..TrainConfig::default()
            })
            .deepmorph_config(deepmorph::pipeline::DeepMorphConfig {
                classifier: config,
                max_faulty_cases: 150,
                ..Default::default()
            })
            .inject(DefectSpec::insufficient_training_data(vec![0, 1, 2], 0.98))
            .build()
            .unwrap();
        match scenario.run() {
            Ok(outcome) => println!(
                "#   {name:<20} ratios {} dominant {}",
                outcome.report.ratios,
                outcome
                    .report
                    .dominant()
                    .map(|k| k.abbrev())
                    .unwrap_or("none")
            ),
            Err(e) => println!("#   {name:<20} failed: {e}"),
        }
    }
}

fn bench_metric_cost(c: &mut Criterion) {
    print_quality_ablation();
    let f = fixture();
    let classifier = DefectClassifier::new(ClassifierConfig::default());
    let mut group = c.benchmark_group("ablation");
    group.bench_function("classify_js", |b| {
        b.iter(|| classifier.classify(&f.specifics_js, &f.patterns))
    });
    group.bench_function("classify_cosine", |b| {
        b.iter(|| classifier.classify(&f.specifics_cos, &f.patterns))
    });
    let no_pop = DefectClassifier::new(ClassifierConfig {
        use_population: false,
        ..ClassifierConfig::default()
    });
    group.bench_function("classify_no_population", |b| {
        b.iter(|| no_pop.classify(&f.specifics_js, &f.patterns))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_metric_cost
}
criterion_main!(benches);
