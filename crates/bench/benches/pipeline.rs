//! DeepMorph pipeline-stage benchmarks: instrumentation (probe training),
//! footprint extraction, pattern learning, and defect classification —
//! the cost profile behind every Table I cell.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use deepmorph::classify::{ClassifierConfig, DefectClassifier};
use deepmorph::instrument::{InstrumentedModel, ProbeTrainingConfig};
use deepmorph::pattern::ClassPatterns;
use deepmorph::prelude::*;
use deepmorph::specifics::FootprintSpecifics;
use deepmorph_data::DataGenerator;
use deepmorph_tensor::init::stream_rng;

struct Prepared {
    model_seed: u64,
    train: deepmorph_data::Dataset,
    faulty: deepmorph_data::Dataset,
}

fn prepare() -> Prepared {
    let mut rng = stream_rng(1, "bench-pipeline-data");
    let train = SynthDigits::new().generate(30, &mut rng);
    let faulty = SynthDigits::new().generate(5, &mut rng);
    Prepared {
        model_seed: 11,
        train,
        faulty,
    }
}

fn build_lenet(seed: u64) -> ModelHandle {
    let spec = ModelSpec::new(ModelFamily::LeNet, ModelScale::Tiny, [1, 16, 16], 10);
    let mut rng = stream_rng(seed, "bench-pipeline-model");
    build_model(&spec, &mut rng).unwrap()
}

fn probe_config() -> ProbeTrainingConfig {
    ProbeTrainingConfig {
        epochs: 10,
        ..Default::default()
    }
}

fn bench_instrumentation(c: &mut Criterion) {
    let prepared = prepare();
    c.bench_function("pipeline/instrument_lenet_300_samples", |b| {
        b.iter_batched(
            || build_lenet(prepared.model_seed),
            |model| {
                InstrumentedModel::build(
                    model,
                    prepared.train.images(),
                    prepared.train.labels(),
                    10,
                    &probe_config(),
                )
                .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_footprint_extraction(c: &mut Criterion) {
    let prepared = prepare();
    let model = build_lenet(prepared.model_seed);
    let mut inst = InstrumentedModel::build(
        model,
        prepared.train.images(),
        prepared.train.labels(),
        10,
        &probe_config(),
    )
    .unwrap();
    c.bench_function("pipeline/footprints_50_cases", |b| {
        b.iter(|| inst.footprints(prepared.faulty.images()).unwrap())
    });
}

fn bench_pattern_learning(c: &mut Criterion) {
    let prepared = prepare();
    let model = build_lenet(prepared.model_seed);
    let mut inst = InstrumentedModel::build(
        model,
        prepared.train.images(),
        prepared.train.labels(),
        10,
        &probe_config(),
    )
    .unwrap();
    let fps = inst.footprints(prepared.train.images()).unwrap();
    let accs = inst.probe_accuracies();
    c.bench_function("pipeline/learn_patterns_300_footprints", |b| {
        b.iter(|| ClassPatterns::learn(&fps, prepared.train.labels(), accs.clone()).unwrap())
    });
}

fn bench_classification(c: &mut Criterion) {
    let prepared = prepare();
    let model = build_lenet(prepared.model_seed);
    let mut inst = InstrumentedModel::build(
        model,
        prepared.train.images(),
        prepared.train.labels(),
        10,
        &probe_config(),
    )
    .unwrap();
    let train_fps = inst.footprints(prepared.train.images()).unwrap();
    let patterns =
        ClassPatterns::learn(&train_fps, prepared.train.labels(), inst.probe_accuracies()).unwrap();
    let faulty_fps = inst.footprints(prepared.faulty.images()).unwrap();
    let specifics: Vec<FootprintSpecifics> = faulty_fps
        .iter()
        .enumerate()
        .map(|(i, fp)| {
            FootprintSpecifics::compute(
                fp,
                prepared.faulty.labels()[i],
                (prepared.faulty.labels()[i] + 1) % 10,
                &patterns,
                AlignmentMetric::JensenShannon,
            )
        })
        .collect();
    let classifier = DefectClassifier::new(ClassifierConfig::default());
    c.bench_function("pipeline/classify_50_cases", |b| {
        b.iter(|| classifier.classify(&specifics, &patterns))
    });
    c.bench_function("pipeline/specifics_50_cases", |b| {
        b.iter(|| {
            faulty_fps.iter().enumerate().fold(0usize, |acc, (i, fp)| {
                criterion::black_box(FootprintSpecifics::compute(
                    fp,
                    prepared.faulty.labels()[i],
                    (prepared.faulty.labels()[i] + 1) % 10,
                    &patterns,
                    AlignmentMetric::JensenShannon,
                ));
                acc + 1
            })
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_instrumentation, bench_footprint_extraction,
              bench_pattern_learning, bench_classification
}
criterion_main!(benches);
