//! Substrate throughput benchmarks: the tensor/NN kernels every
//! experiment spends its time in.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use deepmorph_nn::prelude::*;
use deepmorph_data::{DataGenerator, SynthDigits};
use deepmorph_tensor::conv::{im2col, Conv2dGeometry};
use deepmorph_tensor::init::stream_rng;
use deepmorph_tensor::Tensor;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor");
    for &n in &[32usize, 128] {
        let a = Tensor::from_vec(
            (0..n * n).map(|i| (i % 13) as f32 - 6.0).collect(),
            &[n, n],
        )
        .unwrap();
        let b = a.clone();
        group.bench_function(format!("matmul_{n}x{n}"), |bench| {
            bench.iter(|| a.matmul(&b).unwrap())
        });
    }
    group.finish();
}

fn bench_im2col(c: &mut Criterion) {
    let geo = Conv2dGeometry::new(8, 16, 16, 16, 3, 3, 1, 1).unwrap();
    let x = Tensor::from_vec(
        (0..8 * 8 * 256).map(|i| (i % 7) as f32).collect(),
        &[8, 8, 16, 16],
    )
    .unwrap();
    c.bench_function("tensor/im2col_8x8x16x16_k3", |b| {
        b.iter(|| im2col(&x, &geo).unwrap())
    });
}

fn bench_conv_layer(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn");
    let mut rng = stream_rng(1, "bench");
    let mut layer = Conv2d::new(8, 16, 16, 16, 3, 1, 1, &mut rng).unwrap();
    let x = Tensor::from_vec(
        (0..8 * 8 * 256).map(|i| ((i % 11) as f32 - 5.0) * 0.1).collect(),
        &[8, 8, 16, 16],
    )
    .unwrap();
    group.bench_function("conv2d_forward_8x8x16x16", |b| {
        b.iter(|| layer.forward(&[&x], Mode::Eval).unwrap())
    });
    group.bench_function("conv2d_forward_backward_8x8x16x16", |b| {
        b.iter_batched(
            || Tensor::ones(&[8, 16, 16, 16]),
            |grad| {
                let _ = layer.forward(&[&x], Mode::Train).unwrap();
                layer.backward(&grad).unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_batchnorm(c: &mut Criterion) {
    let mut bn = BatchNorm2d::new(16);
    let x = Tensor::from_vec(
        (0..8 * 16 * 64).map(|i| ((i % 19) as f32 - 9.0) * 0.2).collect(),
        &[8, 16, 8, 8],
    )
    .unwrap();
    c.bench_function("nn/batchnorm_train_8x16x8x8", |b| {
        b.iter(|| bn.forward(&[&x], Mode::Train).unwrap())
    });
}

fn bench_data_generation(c: &mut Criterion) {
    let gen = SynthDigits::new();
    c.bench_function("data/synth_digits_100_images", |b| {
        b.iter_batched(
            || stream_rng(7, "bench-data"),
            |mut rng| gen.generate(10, &mut rng),
            BatchSize::SmallInput,
        )
    });
}

fn bench_training_epoch(c: &mut Criterion) {
    let gen = SynthDigits::new();
    let mut rng = stream_rng(3, "bench-train");
    let data = gen.generate(10, &mut rng);
    c.bench_function("nn/lenet_one_epoch_100_samples", |b| {
        b.iter_batched(
            || {
                let spec = deepmorph_models::ModelSpec::new(
                    deepmorph_models::ModelFamily::LeNet,
                    deepmorph_models::ModelScale::Tiny,
                    [1, 16, 16],
                    10,
                );
                let mut mrng = stream_rng(4, "bench-model");
                deepmorph_models::build_model(&spec, &mut mrng).unwrap()
            },
            |mut model| {
                let mut trainer = Trainer::new(TrainConfig {
                    epochs: 1,
                    batch_size: 32,
                    ..TrainConfig::default()
                });
                let mut trng = stream_rng(5, "bench-train-loop");
                trainer
                    .fit(&mut model.graph, data.images(), data.labels(), &mut trng)
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_matmul, bench_im2col, bench_conv_layer, bench_batchnorm,
              bench_data_generation, bench_training_epoch
}
criterion_main!(benches);
