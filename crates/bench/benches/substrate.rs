//! Substrate throughput benchmarks: the tensor/NN kernels every
//! experiment spends its time in.
//!
//! The `*_serial` vs `*_parallel` pairs compare the pinned single-threaded
//! reference kernels against the default dispatch (threaded + ILP-blocked
//! under the `parallel` feature); `scripts/record_baseline.sh` captures
//! their ratio into `BENCH_baseline.json`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use deepmorph_data::{DataGenerator, SynthDigits};
use deepmorph_nn::prelude::*;
use deepmorph_tensor::conv::{im2col, Conv2dGeometry};
use deepmorph_tensor::init::stream_rng;
use deepmorph_tensor::{workspace, Tensor};

/// Deterministic pseudo-random activations in `[-1, 1]` (never exactly
/// zero, so the zero-skip branch in the matmul kernels stays cold, as it
/// is for real activations).
fn synth_tensor(shape: &[usize], salt: u64) -> Tensor {
    let len: usize = shape.iter().product();
    let data: Vec<f32> = (0..len)
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(salt);
            ((h >> 40) as f32 / (1u64 << 24) as f32).mul_add(2.0, -1.0) + 1e-4
        })
        .collect();
    Tensor::from_vec(data, shape).unwrap()
}

fn bench_matmul_serial_vs_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor");
    for &n in &[128usize, 256] {
        let a = synth_tensor(&[n, n], 1);
        let b = synth_tensor(&[n, n], 2);
        group.bench_function(format!("matmul_serial_{n}x{n}"), |bench| {
            bench.iter(|| a.matmul_serial(&b).unwrap())
        });
        group.bench_function(format!("matmul_parallel_{n}x{n}"), |bench| {
            bench.iter(|| a.matmul(&b).unwrap())
        });
    }
    group.finish();
}

fn bench_conv_batch64_serial_vs_parallel(c: &mut Criterion) {
    // The batch-64 convolution hot path: im2col lowering plus the
    // `patches @ W^T` GEMM of a LeNet-scale 8→16 channel 3x3 layer.
    let mut group = c.benchmark_group("conv_b64");
    let geo = Conv2dGeometry::new(8, 16, 16, 16, 3, 3, 1, 1).unwrap();
    let x = synth_tensor(&[64, 8, 16, 16], 3);
    let cols = im2col(&x, &geo).unwrap(); // [64*256, 72]
    let mut wrng = stream_rng(1, "bench-conv-w");
    let w = deepmorph_tensor::init::Init::HeNormal.materialize(
        &[16, geo.patch_len()],
        geo.patch_len(),
        16,
        &mut wrng,
    );
    group.bench_function("gemm_serial", |b| {
        b.iter(|| cols.matmul_nt_serial(&w).unwrap())
    });
    group.bench_function("gemm_parallel", |b| b.iter(|| cols.matmul_nt(&w).unwrap()));
    group.bench_function("im2col", |b| b.iter(|| im2col(&x, &geo).unwrap()));
    let mut rng = stream_rng(2, "bench-conv-layer");
    let mut layer = Conv2d::new(8, 16, 16, 16, 3, 1, 1, &mut rng).unwrap();
    group.bench_function("layer_forward", |b| {
        b.iter(|| layer.forward(&[&x], Mode::Eval).unwrap())
    });
    group.bench_function("layer_forward_backward", |b| {
        b.iter_batched(
            || Tensor::ones(&[64, 16, 16, 16]),
            |grad| {
                let _ = layer.forward(&[&x], Mode::Train).unwrap();
                layer.backward(&grad).unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// One conv training step with full workspace recycling — the per-batch
/// shape the graph executor drives.
fn conv_train_step(layer: &mut Conv2d, x: &Tensor, grad: &Tensor) {
    let y = layer.forward(&[x], Mode::Train).unwrap();
    workspace::recycle_tensor(y);
    let gx = layer.backward(grad).unwrap().into_first();
    workspace::recycle_tensor(gx);
}

/// Steady-state benches: the same hot loops as above, measured *warm* —
/// after the thread's workspace arena has absorbed every buffer the loop
/// needs, so iterations perform zero heap allocations
/// (`tests/alloc_regression.rs` pins that).
fn bench_steady_state(c: &mut Criterion) {
    let mut group = c.benchmark_group("steady");

    // Warm batch-64 conv forward+backward.
    let mut rng = stream_rng(11, "bench-steady-conv");
    let mut layer = Conv2d::new(8, 16, 16, 16, 3, 1, 1, &mut rng).unwrap();
    let x = synth_tensor(&[64, 8, 16, 16], 13);
    let grad = Tensor::ones(&[64, 16, 16, 16]);
    for _ in 0..3 {
        conv_train_step(&mut layer, &x, &grad);
    }
    group.bench_function("conv_b64_step_warm", |b| {
        b.iter(|| conv_train_step(&mut layer, &x, &grad))
    });

    // Warm probe-training epoch: the softmax-regression loop
    // `core::instrument::fit_probe` runs per probe point (1500 samples ×
    // 64 features × 10 classes, batch 128, fixed order).
    let (n, f, classes, batch) = (1500usize, 64usize, 10usize, 128usize);
    let feats = synth_tensor(&[n, f], 17);
    let labels: Vec<usize> = (0..n).map(|i| i % classes).collect();
    let order: Vec<usize> = (0..n).collect();
    let mut wrng = stream_rng(19, "bench-steady-probe");
    let mut weight = deepmorph_tensor::init::Init::XavierUniform.materialize(
        &[classes, f],
        f,
        classes,
        &mut wrng,
    );
    let mut bias = Tensor::zeros(&[classes]);
    let loss = SoftmaxCrossEntropy::new();
    let mut by: Vec<usize> = Vec::with_capacity(batch);
    let mut probe_epoch = |weight: &mut Tensor, bias: &mut Tensor| {
        for chunk in order.chunks(batch) {
            let bx = deepmorph_nn::train::gather_batch(&feats, chunk).unwrap();
            by.clear();
            by.extend(chunk.iter().map(|&i| labels[i]));
            let mut logits = bx.matmul_nt(weight).unwrap();
            logits.add_row_broadcast(bias).unwrap();
            let (_, g) = loss.compute(&logits, &by).unwrap();
            workspace::recycle_tensor(logits);
            let dw = g.matmul_tn(&bx).unwrap();
            workspace::recycle_tensor(bx);
            weight.axpy(-0.3, &dw).unwrap();
            workspace::recycle_tensor(dw);
            let db = g.sum_axis0().unwrap();
            bias.axpy(-0.3, &db).unwrap();
            workspace::recycle_tensor(db);
            workspace::recycle_tensor(g);
        }
    };
    for _ in 0..2 {
        probe_epoch(&mut weight, &mut bias);
    }
    group.bench_function("probe_epoch_warm", |b| {
        b.iter(|| probe_epoch(&mut weight, &mut bias))
    });
    group.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor");
    for &n in &[32usize, 128] {
        let a =
            Tensor::from_vec((0..n * n).map(|i| (i % 13) as f32 - 6.0).collect(), &[n, n]).unwrap();
        let b = a.clone();
        group.bench_function(format!("matmul_{n}x{n}"), |bench| {
            bench.iter(|| a.matmul(&b).unwrap())
        });
    }
    group.finish();
}

fn bench_im2col(c: &mut Criterion) {
    let geo = Conv2dGeometry::new(8, 16, 16, 16, 3, 3, 1, 1).unwrap();
    let x = Tensor::from_vec(
        (0..8 * 8 * 256).map(|i| (i % 7) as f32).collect(),
        &[8, 8, 16, 16],
    )
    .unwrap();
    c.bench_function("tensor/im2col_8x8x16x16_k3", |b| {
        b.iter(|| im2col(&x, &geo).unwrap())
    });
}

fn bench_conv_layer(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn");
    let mut rng = stream_rng(1, "bench");
    let mut layer = Conv2d::new(8, 16, 16, 16, 3, 1, 1, &mut rng).unwrap();
    let x = Tensor::from_vec(
        (0..8 * 8 * 256)
            .map(|i| ((i % 11) as f32 - 5.0) * 0.1)
            .collect(),
        &[8, 8, 16, 16],
    )
    .unwrap();
    group.bench_function("conv2d_forward_8x8x16x16", |b| {
        b.iter(|| layer.forward(&[&x], Mode::Eval).unwrap())
    });
    group.bench_function("conv2d_forward_backward_8x8x16x16", |b| {
        b.iter_batched(
            || Tensor::ones(&[8, 16, 16, 16]),
            |grad| {
                let _ = layer.forward(&[&x], Mode::Train).unwrap();
                layer.backward(&grad).unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_batchnorm(c: &mut Criterion) {
    let mut bn = BatchNorm2d::new(16);
    let x = Tensor::from_vec(
        (0..8 * 16 * 64)
            .map(|i| ((i % 19) as f32 - 9.0) * 0.2)
            .collect(),
        &[8, 16, 8, 8],
    )
    .unwrap();
    c.bench_function("nn/batchnorm_train_8x16x8x8", |b| {
        b.iter(|| bn.forward(&[&x], Mode::Train).unwrap())
    });
}

fn bench_data_generation(c: &mut Criterion) {
    let gen = SynthDigits::new();
    c.bench_function("data/synth_digits_100_images", |b| {
        b.iter_batched(
            || stream_rng(7, "bench-data"),
            |mut rng| gen.generate(10, &mut rng),
            BatchSize::SmallInput,
        )
    });
}

fn bench_training_epoch(c: &mut Criterion) {
    let gen = SynthDigits::new();
    let mut rng = stream_rng(3, "bench-train");
    let data = gen.generate(10, &mut rng);
    c.bench_function("nn/lenet_one_epoch_100_samples", |b| {
        b.iter_batched(
            || {
                let spec = deepmorph_models::ModelSpec::new(
                    deepmorph_models::ModelFamily::LeNet,
                    deepmorph_models::ModelScale::Tiny,
                    [1, 16, 16],
                    10,
                );
                let mut mrng = stream_rng(4, "bench-model");
                deepmorph_models::build_model(&spec, &mut mrng).unwrap()
            },
            |mut model| {
                let mut trainer = Trainer::new(TrainConfig {
                    epochs: 1,
                    batch_size: 32,
                    ..TrainConfig::default()
                });
                let mut trng = stream_rng(5, "bench-train-loop");
                trainer
                    .fit(&mut model.graph, data.images(), data.labels(), &mut trng)
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_matmul, bench_matmul_serial_vs_parallel,
              bench_conv_batch64_serial_vs_parallel, bench_steady_state,
              bench_im2col, bench_conv_layer, bench_batchnorm,
              bench_data_generation, bench_training_epoch
}
criterion_main!(benches);
