//! Experiment harness regenerating the paper's evaluation artifacts.
//!
//! * [`table1`] — the defect-ratio matrix of Table I: for each of the four
//!   models and each injected defect, train the defective model and report
//!   DeepMorph's `[ITD, UTD, SD]` ratios.
//! * Binaries: `table1` (regenerates the table; `--scale`, `--seed`) and
//!   `figure1` (runs one scenario and prints the stage-by-stage pipeline
//!   trace matching the paper's Figure 1 schematic).
//! * [`chaos`] — the serving fault-storm harness behind `chaos_smoke`
//!   and the chaos phase of `serve_bench`: deterministic fault
//!   injection with a zero-loss, zero-corruption acceptance bar.
//! * [`storm`] — the connection-storm harness behind `storm_smoke` and
//!   the storm phase of `serve_bench`: thousands of idle sockets on a
//!   flat thread count while an active, bitwise-verified predict load
//!   keeps its latency.
//! * Criterion benches in `benches/` measure substrate and pipeline
//!   throughput plus the DESIGN.md ablations.

pub mod chaos;
pub mod repair_fixture;
pub mod storm;
pub mod table1;

pub use table1::{
    aggregate_tables, default_defects, render_table, run_cell, run_table, run_table_seeds,
    run_table_seeds_with_store, run_table_with_store, CellResult, Table1Config, TableResult,
};
