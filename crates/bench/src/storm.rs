//! The connection-storm harness behind `storm_smoke` and the storm
//! phase of `serve_bench`.
//!
//! The claim under test is the event-loop rewrite's headline: one
//! `deepmorph-serve` process holds **tens of thousands of mostly idle
//! sockets on a constant thread count**, while an active predict load
//! through the same process keeps its low-connection-count latency.
//! The harness:
//!
//! 1. starts a paper-scale AlexNet server and measures an active
//!    pipelined predict load alone (**baseline**), verifying every
//!    response's logits bitwise against a local forward;
//! 2. opens `idle_connections` sockets that send nothing, paced in
//!    batches against the server's own accept counter so the listen
//!    backlog never overflows, and asserts the server process's thread
//!    count did not grow by even one;
//! 3. re-runs the identical active load with the idle sockets attached
//!    (**storm**), again verifying bitwise;
//! 4. spot-checks that long-idle sockets still get service (a `Ping`
//!    round trip), and that the event-loop counters published in the
//!    `Stats` frame saw the storm (gauge ≥ idle count, loop wakeups
//!    nonzero).
//!
//! Any lost response, corrupt logit, thread growth, or dead idle socket
//! panics the harness: the acceptance bar is zero-loss, not a score.
//! The p50 ratio (storm / baseline) is *reported* here and asserted by
//! the caller (`serve_bench` full mode enforces ≤ 1.15 with a retry;
//! the CI smoke run only requires the machinery to hold together).
//!
//! # The idle herd is a child process
//!
//! Server and load generator share one process here, so every idle
//! connection would cost the *bench* process two fds — and this
//! container's `RLIMIT_NOFILE` hard cap (20 000, not raisable without
//! `CAP_SYS_RESOURCE`) cannot hold both ends of 10k+ connections. The
//! harness therefore re-execs itself as an **idle-herd child** that
//! owns the client ends, leaving the server process with only the
//! accepted sockets. Binaries embedding this harness must call
//! [`maybe_idle_herd`] first thing in `main` and return if it handled
//! the invocation. The herd is driven over its stdio in lockstep: it
//! connects one batch, reports, and waits for the parent (which
//! watches the server's live connection gauge) before the next — so
//! the accept queue can never overflow, regardless of host speed.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

use deepmorph_json::Json;
use deepmorph_models::{build_model, ModelFamily, ModelScale, ModelSpec};
use deepmorph_serve::prelude::*;
use deepmorph_serve::protocol::{self, PredictRequest, Request, Response};
use deepmorph_telemetry::LogHistogram;
use deepmorph_tensor::init::stream_rng;
use deepmorph_tensor::Tensor;

/// Model name served by the storm harness.
pub const MODEL: &str = "alexnet-storm";
const ROW_ELEMS: usize = 256; // [1, 16, 16]

/// Requests pipelined per active connection.
const WINDOW: usize = 4;

/// Idle sockets opened per pacing batch. Kept well under the listen
/// backlog (4096) so a batch can never overflow it even if the accept
/// loop lags a full batch behind.
const IDLE_BATCH: usize = 256;

/// Storm shape.
#[derive(Debug, Clone)]
pub struct StormConfig {
    /// Sockets opened and then left silent for the storm phase.
    pub idle_connections: usize,
    /// In-flight predict requests held by the active load
    /// (over `active_concurrency / 4` pipelined connections).
    pub active_concurrency: usize,
    /// Predict requests per measured phase (baseline and storm each).
    pub total_requests: usize,
    /// Distinct input rows cycled by the load; every response is
    /// verified bitwise against a local forward of its row.
    pub distinct_rows: usize,
    /// Idle sockets ping-checked after the storm phase.
    pub spot_checks: usize,
}

impl StormConfig {
    /// CI shape: hundreds of idle sockets, seconds of wall time.
    pub fn smoke() -> StormConfig {
        StormConfig {
            idle_connections: 512,
            active_concurrency: 8,
            total_requests: 240,
            distinct_rows: 16,
            spot_checks: 8,
        }
    }

    /// Full shape: the 10k-socket headline measurement.
    pub fn full() -> StormConfig {
        StormConfig {
            idle_connections: 10_240,
            active_concurrency: 8,
            total_requests: 1_280,
            distinct_rows: 16,
            spot_checks: 16,
        }
    }
}

/// One measured active-load pass.
#[derive(Debug, Clone, Copy)]
pub struct PhaseResult {
    pub throughput_rows_per_s: f64,
    pub p50_us: f64,
    pub p95_us: f64,
    pub p99_us: f64,
    /// Responses whose logits were compared bitwise (all of them).
    pub rows_verified: usize,
}

/// What one storm run measured. Construction implies the zero-loss
/// bar already held: any lost/corrupt response, thread growth, or dead
/// idle socket panics inside [`run`].
#[derive(Debug, Clone)]
pub struct StormResult {
    pub idle_connections: usize,
    pub baseline: PhaseResult,
    pub storm: PhaseResult,
    /// Process thread count before/after attaching the idle sockets
    /// (measured with no load-generator threads alive).
    pub threads_before_idle: usize,
    pub threads_with_idle: usize,
    /// Idle sockets that answered a `Ping` after the storm.
    pub spot_checks_ok: usize,
    /// Server-reported counters at storm peak.
    pub active_connections: u64,
    pub conns_accepted: u64,
    pub loop_wakeups: u64,
    pub outbound_hwm_bytes: u64,
    /// `storm.p50_us / baseline.p50_us` — the caller's acceptance knob.
    pub p50_ratio: f64,
}

impl StormResult {
    /// JSON block for `BENCH_serve.json`.
    pub fn to_json(&self, config: &StormConfig) -> Json {
        Json::obj([
            ("idle_connections", Json::usize(self.idle_connections)),
            ("active_concurrency", Json::usize(config.active_concurrency)),
            ("requests_per_phase", Json::usize(config.total_requests)),
            (
                "baseline",
                Json::obj([
                    (
                        "throughput_rows_per_s",
                        Json::num(self.baseline.throughput_rows_per_s),
                    ),
                    ("p50_us", Json::num(self.baseline.p50_us)),
                    ("p95_us", Json::num(self.baseline.p95_us)),
                    ("p99_us", Json::num(self.baseline.p99_us)),
                ]),
            ),
            (
                "storm",
                Json::obj([
                    (
                        "throughput_rows_per_s",
                        Json::num(self.storm.throughput_rows_per_s),
                    ),
                    ("p50_us", Json::num(self.storm.p50_us)),
                    ("p95_us", Json::num(self.storm.p95_us)),
                    ("p99_us", Json::num(self.storm.p99_us)),
                ]),
            ),
            ("p50_ratio", Json::num(self.p50_ratio)),
            ("threads_before_idle", Json::usize(self.threads_before_idle)),
            ("threads_with_idle", Json::usize(self.threads_with_idle)),
            (
                "rows_verified_bitwise",
                Json::usize(self.baseline.rows_verified + self.storm.rows_verified),
            ),
            ("idle_spot_checks_ok", Json::usize(self.spot_checks_ok)),
            (
                "server_active_connections",
                Json::usize(self.active_connections as usize),
            ),
            (
                "server_conns_accepted",
                Json::usize(self.conns_accepted as usize),
            ),
            (
                "server_loop_wakeups",
                Json::usize(self.loop_wakeups as usize),
            ),
            (
                "server_outbound_hwm_bytes",
                Json::usize(self.outbound_hwm_bytes as usize),
            ),
        ])
    }
}

fn input_row(i: usize) -> Tensor {
    let data = (0..ROW_ELEMS)
        .map(|j| {
            let h = (i.wrapping_mul(ROW_ELEMS).wrapping_add(j) as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ((h >> 40) as f32 / (1u64 << 24) as f32).fract()
        })
        .collect();
    Tensor::from_vec(data, &[1, 1, 16, 16]).unwrap()
}

/// Kernel-reported thread count of this process (`Threads:` in
/// `/proc/self/status`) — counts what exists, not what we spawned.
fn process_threads() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("/proc/self/status");
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|rest| rest.trim().parse().ok())
        .expect("Threads: line in /proc/self/status")
}

/// One pipelined load connection: `window` want-logits predicts in
/// flight, every response verified bitwise against the local forward of
/// its row. Panics on anything less than a perfect pass.
fn drive_verified(
    addr: SocketAddr,
    window: usize,
    requests: usize,
    start_row: usize,
    expected: &[Vec<u32>],
    latencies: &LogHistogram,
) {
    let wires: Vec<Vec<u8>> = (0..requests)
        .map(|i| {
            protocol::encode_request(
                i as u64 + 1,
                &Request::Predict(PredictRequest {
                    model: MODEL.to_string(),
                    rows: input_row((start_row + i) % expected.len()),
                    want_logits: true,
                    true_labels: Vec::new(),
                    deadline_ms: 0,
                }),
            )
        })
        .collect();
    let mut stream = TcpStream::connect(addr).expect("active connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut in_flight: HashMap<u64, Instant> = HashMap::new();
    let mut sent = 0usize;
    let mut done = 0usize;
    while done < requests {
        while sent < requests && in_flight.len() < window {
            in_flight.insert(sent as u64 + 1, Instant::now());
            stream.write_all(&wires[sent]).expect("send");
            sent += 1;
        }
        let mut prefix = [0u8; 4];
        stream.read_exact(&mut prefix).expect("read prefix");
        let mut frame = vec![0u8; u32::from_le_bytes(prefix) as usize];
        stream.read_exact(&mut frame).expect("read frame");
        let (id, response) = protocol::decode_response(&frame).expect("decode");
        let started = in_flight.remove(&id).expect("known id");
        latencies.record(started.elapsed().as_micros() as u64);
        let row = (start_row + (id as usize - 1)) % expected.len();
        match response {
            Response::Predict(p) => {
                assert_eq!(p.predictions.len(), 1, "single-row predict");
                let logits = p.logits.expect("want_logits was set");
                let want = &expected[row];
                assert_eq!(logits.data().len(), want.len());
                for (k, (got, want)) in logits.data().iter().zip(want).enumerate() {
                    assert_eq!(
                        got.to_bits(),
                        *want,
                        "storm load: logit {k} of row {row} corrupted under load"
                    );
                }
            }
            other => panic!("unexpected response under storm load: {other:?}"),
        }
        done += 1;
    }
}

/// Runs one verified active-load phase at `concurrency`.
fn run_phase(
    addr: SocketAddr,
    concurrency: usize,
    total_requests: usize,
    expected: &[Vec<u32>],
) -> PhaseResult {
    let window = WINDOW.min(concurrency);
    let connections = concurrency / window;
    let requests_each = total_requests / connections;
    // Shared log₂ histogram (`deepmorph-telemetry`): one relaxed atomic
    // add per response, quantiles straight from the bucket counts.
    let latencies = LogHistogram::new();
    let start = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                let latencies = &latencies;
                scope.spawn(move || {
                    drive_verified(
                        addr,
                        window,
                        requests_each,
                        c * requests_each,
                        expected,
                        latencies,
                    )
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("active load thread");
        }
    });
    let wall = start.elapsed().as_secs_f64();
    let rows = connections * requests_each;
    let snapshot = latencies.snapshot();
    PhaseResult {
        throughput_rows_per_s: rows as f64 / wall,
        p50_us: snapshot.quantile(0.50) as f64,
        p95_us: snapshot.quantile(0.95) as f64,
        p99_us: snapshot.quantile(0.99) as f64,
        rows_verified: rows,
    }
}

/// The argv[1] sentinel that re-enters a storm binary as the idle herd.
const HERD_ARG: &str = "__idle_herd";

/// To be called first thing in `main` of every binary that embeds this
/// harness: if this process was re-exec'd as the idle-herd child,
/// runs the herd to completion and returns `true` (the caller must
/// then return without doing anything else).
pub fn maybe_idle_herd() -> bool {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) != Some(HERD_ARG) {
        return false;
    }
    let addr: SocketAddr = args[2].parse().expect("herd addr");
    let count: usize = args[3].parse().expect("herd count");
    idle_herd_main(addr, count);
    true
}

/// The idle-herd child: connects `count` silent sockets in parent-paced
/// batches, then answers ping-check commands until told to quit.
///
/// Protocol (lines on stdio): child emits `batch <total>` after each
/// connect batch and blocks for `go`; emits `herd <count>` when the
/// full herd is attached; then serves `ping <n>` → `pong <ok>` and
/// exits on `done` or EOF, dropping every socket.
fn idle_herd_main(addr: SocketAddr, count: usize) {
    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    let mut idle: Vec<TcpStream> = Vec::with_capacity(count);
    while idle.len() < count {
        let batch = IDLE_BATCH.min(count - idle.len());
        for _ in 0..batch {
            idle.push(TcpStream::connect(addr).expect("idle connect"));
        }
        println!("batch {}", idle.len());
        match lines.next() {
            Some(Ok(line)) if line == "go" => {}
            other => panic!("idle herd expected `go`, got {other:?}"),
        }
    }
    println!("herd {}", idle.len());
    for line in lines {
        let line = line.expect("herd stdin");
        if line == "done" {
            break;
        }
        if let Some(n) = line.strip_prefix("ping ") {
            let n: usize = n.parse().expect("ping count");
            let step = (idle.len() / n.max(1)).max(1);
            let picks: Vec<usize> = (0..idle.len()).step_by(step).take(n).collect();
            let mut ok = 0usize;
            for i in picks {
                if ping_idle(&mut idle[i]) {
                    ok += 1;
                }
            }
            println!("pong {ok}");
        }
    }
}

/// The parent's handle on the idle-herd child process.
struct IdleHerd {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl IdleHerd {
    /// Re-execs the current binary as the herd and walks it through the
    /// paced attach, gating each batch on the server's live connection
    /// gauge (nothing else is connected while this runs).
    fn attach(addr: SocketAddr, count: usize, server: &Server) -> IdleHerd {
        let exe = std::env::current_exe().expect("current_exe");
        let mut child = Command::new(exe)
            .arg(HERD_ARG)
            .arg(addr.to_string())
            .arg(count.to_string())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn idle herd");
        let stdin = child.stdin.take().expect("herd stdin");
        let stdout = BufReader::new(child.stdout.take().expect("herd stdout"));
        let mut herd = IdleHerd {
            child,
            stdin,
            stdout,
        };
        loop {
            let line = herd.read_line();
            if let Some(total) = line.strip_prefix("batch ") {
                let target: u64 = total.parse().expect("batch total");
                let deadline = Instant::now() + Duration::from_secs(30);
                loop {
                    if server.stats().active_connections >= target {
                        break;
                    }
                    assert!(
                        Instant::now() < deadline,
                        "server accepted only {} of {target} idle connections in 30s",
                        server.stats().active_connections
                    );
                    std::thread::sleep(Duration::from_millis(2));
                }
                writeln!(herd.stdin, "go").expect("herd go");
            } else if let Some(total) = line.strip_prefix("herd ") {
                assert_eq!(total.parse::<usize>().expect("herd total"), count);
                return herd;
            } else {
                panic!("unexpected idle-herd line: {line:?}");
            }
        }
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        let n = self.stdout.read_line(&mut line).expect("herd stdout");
        assert!(n > 0, "idle herd exited early");
        line.trim_end().to_string()
    }

    /// Ping-checks `n` evenly spaced idle sockets; returns how many
    /// answered with a well-formed `Pong`.
    fn ping(&mut self, n: usize) -> usize {
        writeln!(self.stdin, "ping {n}").expect("herd ping");
        let line = self.read_line();
        line.strip_prefix("pong ")
            .unwrap_or_else(|| panic!("unexpected idle-herd line: {line:?}"))
            .parse()
            .expect("pong count")
    }

    /// Drops the herd (closing every idle socket) and reaps the child.
    fn finish(mut self) {
        let _ = writeln!(self.stdin, "done");
        drop(self.stdin);
        let _ = self.child.wait();
    }
}

/// Ping over a raw idle socket; returns whether a well-formed `Pong`
/// came back.
fn ping_idle(stream: &mut TcpStream) -> bool {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let wire = protocol::encode_request(7, &Request::Ping);
    if stream.write_all(&wire).is_err() {
        return false;
    }
    let mut prefix = [0u8; 4];
    if stream.read_exact(&mut prefix).is_err() {
        return false;
    }
    let mut frame = vec![0u8; u32::from_le_bytes(prefix) as usize];
    if stream.read_exact(&mut frame).is_err() {
        return false;
    }
    matches!(
        protocol::decode_response(&frame),
        Ok((7, Response::Pong { .. }))
    )
}

/// Runs one full storm: baseline load, idle attach (flat-thread
/// assertion), storm load, idle spot checks, counter assertions.
pub fn run(config: &StormConfig) -> StormResult {
    let spec = ModelSpec::new(ModelFamily::AlexNet, ModelScale::Paper, [1, 16, 16], 10);
    let mut model = build_model(&spec, &mut stream_rng(42, "storm-bench")).unwrap();
    let mut registry = ModelRegistry::new();
    registry.register(MODEL, &mut model, None).unwrap();
    let server = Server::start(
        registry,
        ServerConfig {
            batch: BatchConfig {
                max_batch: 32,
                max_wait: Duration::ZERO,
                workers: 1,
                ..BatchConfig::default()
            },
            max_connections: config.idle_connections + config.active_concurrency + 256,
            ..ServerConfig::default()
        },
    )
    .expect("storm server");
    let addr = server.local_addr();

    // Local reference forwards: the bitwise oracle for every response.
    let expected: Vec<Vec<u32>> = (0..config.distinct_rows.max(1))
        .map(|r| {
            model
                .graph
                .forward_inference(&input_row(r))
                .expect("local forward")
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect()
        })
        .collect();

    // Warm up replicas and pools before anything is timed.
    {
        let mut client = Client::connect(addr).expect("warmup connect");
        for i in 0..8 {
            let _ = client
                .predict(MODEL, &input_row(usize::MAX - i))
                .expect("warmup");
        }
    }

    let baseline = run_phase(
        addr,
        config.active_concurrency,
        config.total_requests,
        &expected,
    );

    // Attach the idle herd; the whole point is that this does not cost
    // threads. Measured with zero load-generator threads alive.
    let threads_before_idle = process_threads();
    let mut herd = IdleHerd::attach(addr, config.idle_connections, &server);
    let threads_with_idle = process_threads();
    assert!(
        threads_with_idle <= threads_before_idle,
        "thread count grew from {threads_before_idle} to {threads_with_idle} while attaching \
         {} idle connections — the event loop must absorb them",
        config.idle_connections
    );

    let storm = run_phase(
        addr,
        config.active_concurrency,
        config.total_requests,
        &expected,
    );

    let stats = server.stats();
    assert!(
        stats.active_connections >= config.idle_connections as u64,
        "gauge says {} live connections with {} idle sockets attached",
        stats.active_connections,
        config.idle_connections
    );
    assert!(stats.loop_wakeups > 0, "event loops reported zero wakeups");
    assert!(
        stats.outbound_hwm_bytes > 0,
        "outbound high-water mark never moved despite predict responses"
    );

    // Long-idle sockets must still be live connections, not zombies.
    let spot_checks_ok = herd.ping(config.spot_checks);
    assert_eq!(
        spot_checks_ok, config.spot_checks,
        "only {spot_checks_ok} of {} idle sockets answered a ping after the storm",
        config.spot_checks
    );

    herd.finish();
    server.shutdown();

    StormResult {
        idle_connections: config.idle_connections,
        baseline,
        storm,
        threads_before_idle,
        threads_with_idle,
        spot_checks_ok,
        active_connections: stats.active_connections,
        conns_accepted: stats.conns_accepted,
        loop_wakeups: stats.loop_wakeups,
        outbound_hwm_bytes: stats.outbound_hwm_bytes,
        p50_ratio: if baseline.p50_us > 0.0 {
            storm.p50_us / baseline.p50_us
        } else {
            f64::INFINITY
        },
    }
}
