//! Chaos phase for the serving bench: a deterministic fault storm with a
//! zero-loss, zero-corruption acceptance bar.
//!
//! The storm installs a seeded [`deepmorph_faults`] plan that drops,
//! truncates, stalls, and resets response frames on the wire and panics
//! or stalls worker batches mid-compute, then drives retrying clients
//! through a fixed set of predict requests. Every response is compared
//! **bitwise** against a locally computed fault-free reference. The
//! contract — the one the fault-injection seams, panic containment,
//! retry policy, and deadline plumbing exist to uphold — is that the
//! storm costs latency, never answers: zero requests lost, zero
//! responses wrong.
//!
//! The same harness backs the `chaos_smoke` CI binary and the chaos
//! phase of `serve_bench`, which records the outcome in
//! `BENCH_serve.json`.

use std::time::{Duration, Instant};

use deepmorph_faults::{Fault, FaultPlan};
use deepmorph_json::Json;
use deepmorph_models::{build_model, ModelFamily, ModelScale, ModelSpec};
use deepmorph_serve::prelude::*;
use deepmorph_telemetry::LogHistogram;
use deepmorph_tensor::init::stream_rng;
use deepmorph_tensor::Tensor;

/// The model name the chaos server registers.
pub const MODEL: &str = "chaos-lenet";
const ROW_ELEMS: usize = 256; // [1, 16, 16]

/// Storm shape: how many clients, how much work, which seed.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Concurrent retrying clients.
    pub clients: usize,
    /// Distinct predict requests each client must land.
    pub requests_per_client: usize,
    /// Seed for the fault plan (and, offset, for the model weights).
    pub seed: u64,
}

impl ChaosConfig {
    /// The small storm CI runs on every push.
    pub fn smoke() -> Self {
        ChaosConfig {
            clients: 2,
            requests_per_client: 8,
            seed: 0xC4A0,
        }
    }

    /// The storm the full bench records.
    pub fn full() -> Self {
        ChaosConfig {
            clients: 4,
            requests_per_client: 24,
            seed: 0xC4A0,
        }
    }
}

/// Outcome of one storm, with the counters the acceptance bar reads.
#[derive(Clone, Debug)]
pub struct ChaosResult {
    /// Logical requests issued (clients × requests_per_client).
    pub requests: usize,
    /// Requests that never produced a response (retry budget exhausted).
    pub lost: usize,
    /// Responses whose logits were not bitwise equal to the reference.
    pub corrupted: usize,
    /// Total faults injected across all seams during the storm.
    pub faults_injected: u64,
    /// Per-fault injection counts (`name → injected`), nonzero only.
    pub injected_by_fault: Vec<(&'static str, u64)>,
    /// Worker panics contained (and recovered from) by the server.
    pub worker_panics: u64,
    /// Wire-level requests the server saw, including retries.
    pub server_requests: u64,
    /// Storm wall time.
    pub wall: Duration,
    /// End-to-end latency percentiles of the *landed* requests, retries
    /// included — the price the storm extracts instead of answers.
    pub p50_us: f64,
    pub p95_us: f64,
    pub p99_us: f64,
}

impl ChaosResult {
    /// The acceptance bar: the storm cost latency, never answers.
    pub fn assert_zero_loss(&self) {
        assert_eq!(
            self.lost, 0,
            "chaos storm lost {} of {} requests",
            self.lost, self.requests
        );
        assert_eq!(
            self.corrupted, 0,
            "chaos storm corrupted {} of {} responses",
            self.corrupted, self.requests
        );
        assert!(
            self.faults_injected > 0,
            "the chaos storm injected no faults — the bar was not exercised"
        );
    }

    /// The `chaos` object recorded in `BENCH_serve.json`.
    pub fn to_json(&self, config: &ChaosConfig) -> Json {
        Json::obj([
            ("clients", Json::usize(config.clients)),
            ("requests", Json::usize(self.requests)),
            ("lost", Json::usize(self.lost)),
            ("corrupted", Json::usize(self.corrupted)),
            (
                "faults_injected",
                Json::usize(self.faults_injected as usize),
            ),
            (
                "injected_by_fault",
                Json::Obj(
                    self.injected_by_fault
                        .iter()
                        .map(|(name, n)| ((*name).to_string(), Json::usize(*n as usize)))
                        .collect(),
                ),
            ),
            (
                "worker_panics_contained",
                Json::usize(self.worker_panics as usize),
            ),
            (
                "server_requests_with_retries",
                Json::usize(self.server_requests as usize),
            ),
            ("wall_ms", Json::num(self.wall.as_secs_f64() * 1e3)),
            ("p50_us", Json::num(self.p50_us)),
            ("p95_us", Json::num(self.p95_us)),
            ("p99_us", Json::num(self.p99_us)),
        ])
    }
}

/// Deterministic distinct input rows (salted per client).
fn input_row(i: usize) -> Tensor {
    let data = (0..ROW_ELEMS)
        .map(|j| {
            let h = (i.wrapping_mul(ROW_ELEMS).wrapping_add(j) as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ((h >> 40) as f32 / (1u64 << 24) as f32).fract()
        })
        .collect();
    Tensor::from_vec(data, &[1, 1, 16, 16]).unwrap()
}

/// Runs one storm. Installs a process-global fault plan for its duration
/// (callers must not run concurrent fault-sensitive work) and clears it
/// before returning, storm or shine.
///
/// A tiny LeNet serves here rather than the paper-scale AlexNet the
/// throughput phases use: the storm measures the recovery machinery
/// (retries, containment, reconnects), and every injected panic re-runs
/// a forward — kernel weight would only stretch wall time without
/// exercising anything extra.
pub fn run(config: &ChaosConfig) -> ChaosResult {
    let spec = ModelSpec::new(ModelFamily::LeNet, ModelScale::Tiny, [1, 16, 16], 10);
    let mut model =
        build_model(&spec, &mut stream_rng(config.seed ^ 0x5EED, "chaos-bench")).unwrap();
    let mut registry = ModelRegistry::new();
    registry.register(MODEL, &mut model, None).unwrap();
    let server = Server::start(
        registry,
        ServerConfig {
            batch: BatchConfig {
                workers: 2,
                ..BatchConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("chaos server");
    let addr = server.local_addr();

    // Fault-free reference logits, computed before the storm arms.
    let expected: Vec<Vec<Tensor>> = (0..config.clients)
        .map(|c| {
            (0..config.requests_per_client)
                .map(|i| {
                    model
                        .graph
                        .forward_inference(&input_row(c * 1_000_000 + i))
                        .expect("reference forward")
                })
                .collect()
        })
        .collect();

    deepmorph_faults::install(
        FaultPlan::new(config.seed)
            .with(Fault::NetDropFrame, 0.12)
            .with(Fault::NetPartialFrame, 0.08)
            .with(Fault::NetStallFrame, 0.05)
            .with(Fault::NetResetFrame, 0.05)
            .with(Fault::ComputePanic, 0.06)
            .with(Fault::ComputeSlowBatch, 0.05)
            .with_stall(Duration::from_millis(30))
            .with_slow(Duration::from_millis(10)),
    );
    // Latency of every landed request (retries folded in): one shared
    // `deepmorph-telemetry` histogram, recorded with a relaxed add.
    let latencies = LogHistogram::new();
    let start = Instant::now();
    let per_client: Vec<(usize, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = expected
            .iter()
            .enumerate()
            .map(|(c, expected)| {
                let latencies = &latencies;
                scope.spawn(move || {
                    let mut client = Client::connect_with(
                        addr,
                        ClientConfig {
                            response_timeout: Duration::from_millis(750),
                            retry: RetryPolicy {
                                max_attempts: 25,
                                base_backoff: Duration::from_millis(2),
                                max_backoff: Duration::from_millis(40),
                                jitter_seed: c as u64,
                            },
                        },
                    )
                    .expect("chaos client connect");
                    let mut lost = 0usize;
                    let mut corrupted = 0usize;
                    for (i, expect) in expected.iter().enumerate() {
                        let input = input_row(c * 1_000_000 + i);
                        let issued = Instant::now();
                        match client.predict_full(MODEL, &input, true, &[]) {
                            Err(_) => lost += 1,
                            Ok(response) => {
                                latencies.record(issued.elapsed().as_micros() as u64);
                                let got = response.logits.expect("asked for logits");
                                let equal = expect.shape() == got.shape()
                                    && expect
                                        .data()
                                        .iter()
                                        .zip(got.data())
                                        .all(|(a, b)| a.to_bits() == b.to_bits());
                                if !equal {
                                    corrupted += 1;
                                }
                            }
                        }
                    }
                    (lost, corrupted)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("chaos client thread"))
            .collect()
    });
    let wall = start.elapsed();
    let report = deepmorph_faults::report();
    deepmorph_faults::clear();

    // With the storm over, the server must still be healthy.
    let mut probe = Client::connect(addr).expect("post-storm connect");
    let response = probe
        .predict(MODEL, &input_row(0))
        .expect("post-storm predict");
    assert_eq!(response.predictions.len(), 1);
    let stats = server.stats();
    server.shutdown();

    let injected_by_fault: Vec<(&'static str, u64)> = report
        .iter()
        .filter(|c| c.injected > 0)
        .map(|c| (c.fault, c.injected))
        .collect();
    let latency_snapshot = latencies.snapshot();
    ChaosResult {
        requests: config.clients * config.requests_per_client,
        lost: per_client.iter().map(|(l, _)| l).sum(),
        corrupted: per_client.iter().map(|(_, c)| c).sum(),
        faults_injected: injected_by_fault.iter().map(|(_, n)| n).sum(),
        injected_by_fault,
        worker_panics: stats.worker_panics,
        server_requests: stats.requests,
        wall,
        p50_us: latency_snapshot.quantile(0.50) as f64,
        p95_us: latency_snapshot.quantile(0.95) as f64,
        p99_us: latency_snapshot.quantile(0.99) as f64,
    }
}
