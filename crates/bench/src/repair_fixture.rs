//! The canonical defect-injected deployment the repair smoke and the
//! swap-under-load bench phase serve and fix.
//!
//! One seeded scenario (LeNet on synth-digits, ITD starving classes
//! 0–2 at fraction 0.98 — the configuration `tests/repair.rs` pins as
//! reliably repairable), deployed the way an operator would: model
//! container plus provenance sidecar in a directory the versioned
//! registry opens. Everything is deterministic, so callers can assert
//! concrete outcomes (the repair swaps, held-out accuracy improves).
//!
//! The serve crate's integration tests intentionally keep their own
//! copy of this fixture: a dev-dependency from `deepmorph-serve` back
//! onto this crate would be circular.

use std::path::PathBuf;

use deepmorph::pipeline::DeepMorphConfig;
use deepmorph::prelude::{DatasetKind, DefectSpec, ModelFamily, Scenario, StagedEngine};
use deepmorph_models::save_model;
use deepmorph_nn::prelude::TrainConfig;
use deepmorph_serve::prelude::*;

/// Registered name of the deployed model.
pub const MODEL: &str = "digits";

/// Training configuration of the defective deployment (and of its
/// repair retrain, via the sidecar).
pub fn train_config() -> TrainConfig {
    TrainConfig {
        epochs: 6,
        batch_size: 32,
        learning_rate: 0.05,
        lr_decay: 0.9,
        ..TrainConfig::default()
    }
}

/// The injected defect: starve classes 0–2 of 98% of their samples.
pub fn defect() -> DefectSpec {
    DefectSpec::insufficient_training_data(vec![0, 1, 2], 0.98)
}

/// The full scenario the deployment is produced under.
pub fn scenario() -> Scenario {
    Scenario::builder(ModelFamily::LeNet, DatasetKind::Digits)
        .seed(7)
        .train_per_class(80)
        .test_per_class(25)
        .train_config(train_config())
        .inject(defect())
        .build()
        .expect("repair fixture scenario")
}

/// The same deployment without the defect: a healthy, accurate model.
/// The quantized-serving bench phase promotes this one — its i8 replica
/// deterministically clears the held-out promotion gate, which the
/// starved model cannot be relied on for.
pub fn healthy_scenario() -> Scenario {
    Scenario::builder(ModelFamily::LeNet, DatasetKind::Digits)
        .seed(7)
        .train_per_class(80)
        .test_per_class(25)
        .train_config(train_config())
        .build()
        .expect("healthy fixture scenario")
}

/// Trains the defective model and deploys it — `digits.dmmd` plus its
/// provenance sidecar — into a fresh temp directory tagged `tag`.
/// Returns the directory (callers remove it when done) and the
/// deployment's clean-test accuracy.
pub fn deploy(tag: &str) -> (PathBuf, f32) {
    deploy_scenario(tag, &scenario(), Some(defect()))
}

/// Deploys the defect-free variant of the fixture (sidecar included, so
/// quantized promotion can gate on the held-out set).
pub fn deploy_healthy(tag: &str) -> (PathBuf, f32) {
    deploy_scenario(tag, &healthy_scenario(), None)
}

fn deploy_scenario(tag: &str, scenario: &Scenario, defect: Option<DefectSpec>) -> (PathBuf, f32) {
    let dir = std::env::temp_dir().join(format!("deepmorph-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("fixture dir");
    let trained = StagedEngine::ephemeral()
        .trained(scenario)
        .expect("train the fixture model");
    save_model(
        dir.join(format!("{MODEL}.dmmd")),
        &mut trained.instantiate().expect("instantiate"),
    )
    .expect("save model");
    let mut ctx = DiagnosisContext::new(DatasetKind::Digits, 7, 80)
        .with_test_per_class(25)
        .with_train_config(train_config());
    if let Some(defect) = defect {
        ctx = ctx.with_defect(defect);
    }
    std::fs::write(dir.join(format!("{MODEL}.meta.json")), ctx.to_json()).expect("save sidecar");
    (dir, trained.test_accuracy)
}

/// Serves a deployed directory with the scenario-matched DeepMorph
/// configuration.
pub fn serve(dir: &std::path::Path) -> Server {
    Server::start(
        ModelRegistry::open(dir).expect("open registry"),
        ServerConfig {
            deepmorph: DeepMorphConfig {
                max_faulty_cases: 200,
                ..DeepMorphConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("start server")
}

/// Sends the scenario's labeled held-out set through the server so the
/// live-cases buffer fills with real misclassifications.
pub fn send_labeled_traffic(client: &mut Client) {
    let (_, test) = scenario().injected_data().expect("held-out data");
    client
        .predict_full(MODEL, test.images(), false, test.labels())
        .expect("labeled traffic");
}
