//! Table I regeneration.
//!
//! Paper protocol (Section IV): for each DL model (LeNet, AlexNet on the
//! MNIST-like dataset; ResNet, DenseNet on the CIFAR-like dataset) and each
//! injected defect (ITD, UTD, SD), train the defective model, feed the
//! faulty test cases to DeepMorph, and report the ratio of each defect
//! type. The injected defect should receive the largest ratio in every
//! cell (diagonal dominance).

use deepmorph::prelude::*;
use deepmorph_json::Json;

/// Experiment scale knobs for the Table I sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Config {
    /// Model scale (width/depth).
    pub scale: ModelScale,
    /// Training samples generated per class (before injection).
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Backbone training epochs.
    pub epochs: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for Table1Config {
    fn default() -> Self {
        Table1Config {
            scale: ModelScale::Tiny,
            train_per_class: 120,
            test_per_class: 40,
            epochs: 8,
            seed: 7,
        }
    }
}

impl Table1Config {
    /// Per-family training epochs: AlexNet's deeper/pooled stack
    /// undertrains at the shared budget, so it gets extra epochs (the
    /// paper likewise trains each model to its own convergence).
    pub fn epochs_for(&self, family: ModelFamily) -> usize {
        match family {
            ModelFamily::AlexNet => self.epochs + 4,
            _ => self.epochs,
        }
    }
}

/// The three injected defects used for the sweep, in the paper's row order.
///
/// * ITD: remove 98% of the training data of classes 0–2 — severe enough
///   that the starved classes' test inputs are genuinely out of the
///   learned distribution (the synthetic datasets are easier than
///   MNIST/CIFAR, so a 90% cut would still be learnable).
/// * UTD: mislabel 40% of class 3 as class 5.
/// * SD: remove 6 conv units (saturates at each family's maximum).
pub fn default_defects() -> [DefectSpec; 3] {
    [
        DefectSpec::insufficient_training_data(vec![0, 1, 2], 0.98),
        DefectSpec::unreliable_training_data(3, 5, 0.5),
        DefectSpec::structure_defect(6),
    ]
}

/// One (model, injected-defect) cell of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Model family name.
    pub model: String,
    /// Dataset name.
    pub dataset: String,
    /// Injected defect abbreviation (row).
    pub injected: String,
    /// Reported `[ITD, UTD, SD]` ratios.
    pub ratios: [f32; 3],
    /// Defect with the largest ratio.
    pub reported: String,
    /// Whether the injected defect was identified (diagonal win).
    pub correct: bool,
    /// Clean-test accuracy of the defective model.
    pub test_accuracy: f32,
    /// Number of faulty cases diagnosed.
    pub faulty_cases: usize,
    /// Model health as seen by DeepMorph.
    pub model_health: f32,
}

/// The full Table I result set.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TableResult {
    /// All cells, row-major (defect-major, model-minor).
    pub cells: Vec<CellResult>,
}

impl TableResult {
    /// Fraction of cells where the injected defect won.
    pub fn diagonal_accuracy(&self) -> f32 {
        if self.cells.is_empty() {
            return 0.0;
        }
        self.cells.iter().filter(|c| c.correct).count() as f32 / self.cells.len() as f32
    }

    /// The result set as a [`Json`] value (for `--json` output).
    pub fn to_json_value(&self) -> Json {
        Json::obj([
            (
                "diagonal_accuracy",
                Json::num(f64::from(self.diagonal_accuracy())),
            ),
            (
                "cells",
                Json::arr(self.cells.iter().map(|c| {
                    Json::obj([
                        ("model", Json::str(c.model.clone())),
                        ("dataset", Json::str(c.dataset.clone())),
                        ("injected", Json::str(c.injected.clone())),
                        (
                            "ratios",
                            Json::arr(c.ratios.iter().map(|&v| Json::num(f64::from(v)))),
                        ),
                        ("reported", Json::str(c.reported.clone())),
                        ("correct", Json::Bool(c.correct)),
                        ("test_accuracy", Json::num(f64::from(c.test_accuracy))),
                        ("faulty_cases", Json::num(c.faulty_cases as f64)),
                        ("model_health", Json::num(f64::from(c.model_health))),
                    ])
                })),
            ),
        ])
    }
}

/// The dataset each model family is evaluated on (paper Section IV).
pub fn dataset_for(family: ModelFamily) -> DatasetKind {
    match family {
        ModelFamily::LeNet | ModelFamily::AlexNet => DatasetKind::Digits,
        ModelFamily::ResNet | ModelFamily::DenseNet => DatasetKind::Objects,
    }
}

/// Builds the scenario of one table cell at a given retry attempt.
fn cell_scenario(
    family: ModelFamily,
    defect: &DefectSpec,
    config: &Table1Config,
    attempt: u64,
) -> Result<Scenario, DeepMorphError> {
    Scenario::builder(family, dataset_for(family))
        .seed(config.seed + attempt * 1000)
        .scale(config.scale)
        .train_per_class(config.train_per_class)
        .test_per_class(config.test_per_class)
        .train_config(TrainConfig {
            epochs: config.epochs_for(family),
            batch_size: 32,
            learning_rate: 0.05,
            lr_decay: 0.9,
            ..TrainConfig::default()
        })
        .inject(defect.clone())
        .build()
}

/// Converts one sweep outcome into a table cell.
fn cell_result(family: ModelFamily, defect: &DefectSpec, outcome: &ScenarioOutcome) -> CellResult {
    let injected = defect.kind().map(|k| k.abbrev()).unwrap_or("none");
    let reported = outcome
        .report
        .dominant()
        .map(|k| k.abbrev().to_string())
        .unwrap_or_else(|| "none".into());
    CellResult {
        model: family.name().to_string(),
        dataset: dataset_for(family).name().to_string(),
        injected: injected.to_string(),
        ratios: outcome.report.ratios.as_array(),
        correct: reported == injected,
        reported,
        test_accuracy: outcome.test_accuracy,
        faulty_cases: outcome.faulty_count,
        model_health: outcome.report.model_health,
    }
}

/// Runs one cell: inject `defect` into `family`'s scenario and diagnose.
///
/// A mild defect occasionally leaves the model perfect on the small test
/// set; in that case the cell retries with a shifted seed (up to 3 times),
/// mirroring the paper's implicit requirement that faulty cases exist.
///
/// # Errors
///
/// Propagates scenario errors.
pub fn run_cell(
    family: ModelFamily,
    defect: &DefectSpec,
    config: &Table1Config,
) -> Result<CellResult, DeepMorphError> {
    for attempt in 0..3 {
        let scenario = cell_scenario(family, defect, config, attempt)?;
        match scenario.run() {
            Ok(o) => return Ok(cell_result(family, defect, &o)),
            Err(DeepMorphError::NoFaultyCases) => continue,
            Err(e) => return Err(e),
        }
    }
    Err(DeepMorphError::NoFaultyCases)
}

/// Runs the full 3×4 sweep (3 defects × 4 models) with a disabled
/// artifact store (compute everything fresh).
///
/// `progress` is called after each cell with the finished result.
///
/// # Errors
///
/// Propagates the first cell error.
pub fn run_table(
    config: &Table1Config,
    progress: impl FnMut(&CellResult),
) -> Result<TableResult, DeepMorphError> {
    run_table_with_store(config, ArtifactStore::disabled(), progress)
}

/// Runs the full 3×4 sweep through the staged engine: all cells of a
/// retry round execute **concurrently** on the `deepmorph-parallel` pool,
/// and every stage is persisted in (and reloaded from) `store` — a rerun
/// against a warm store recomputes nothing. Cells whose model was perfect
/// on the test set retry with a shifted seed (up to 3 rounds), exactly
/// like [`run_cell`].
///
/// # Errors
///
/// Propagates the first non-retryable cell error;
/// [`DeepMorphError::NoFaultyCases`] if a cell stayed perfect through
/// every retry.
pub fn run_table_with_store(
    config: &Table1Config,
    store: ArtifactStore,
    progress: impl FnMut(&CellResult),
) -> Result<TableResult, DeepMorphError> {
    run_table_on(&SweepRunner::new(store), config, progress)
}

/// [`run_table_with_store`] against an existing runner, so several table
/// runs (e.g. the multi-seed sweep) can share one store.
fn run_table_on(
    runner: &SweepRunner,
    config: &Table1Config,
    mut progress: impl FnMut(&CellResult),
) -> Result<TableResult, DeepMorphError> {
    let grid: Vec<(DefectSpec, ModelFamily)> = default_defects()
        .into_iter()
        .flat_map(|defect| ModelFamily::all().map(|family| (defect.clone(), family)))
        .collect();
    let mut results: Vec<Option<CellResult>> = vec![None; grid.len()];
    let mut pending: Vec<usize> = (0..grid.len()).collect();

    for attempt in 0..3u64 {
        if pending.is_empty() {
            break;
        }
        let mut plan = ExperimentPlan::new().with_baseline(false);
        for &i in &pending {
            plan = plan.with_cell(cell_scenario(grid[i].1, &grid[i].0, config, attempt)?);
        }
        let sweep = runner.run(&plan);
        let mut still_pending = Vec::new();
        for (&i, cell) in pending.iter().zip(&sweep.cells) {
            match &cell.outcome {
                Ok(outcome) => {
                    let result = cell_result(grid[i].1, &grid[i].0, outcome);
                    progress(&result);
                    results[i] = Some(result);
                }
                Err(DeepMorphError::NoFaultyCases) => still_pending.push(i),
                Err(e) => return Err(e.clone()),
            }
        }
        pending = still_pending;
    }
    if !pending.is_empty() {
        return Err(DeepMorphError::NoFaultyCases);
    }
    Ok(TableResult {
        cells: results
            .into_iter()
            .map(|c| c.expect("every non-pending cell resolved"))
            .collect(),
    })
}

/// Runs the sweep across several seeds and averages the ratio cells —
/// the robustness check behind the single-seed table.
///
/// The aggregated cell's `correct` flag reflects the *mean* ratios (does
/// the diagonal win on average); accuracy/faulty-count fields are means.
///
/// # Errors
///
/// Propagates the first cell error.
pub fn run_table_seeds(
    config: &Table1Config,
    seeds: &[u64],
    progress: impl FnMut(u64, &CellResult),
) -> Result<TableResult, DeepMorphError> {
    run_table_seeds_with_store(config, seeds, ArtifactStore::disabled(), progress)
}

/// [`run_table_seeds`] with every per-seed table sharing one artifact
/// store, so rerunning the multi-seed sweep (or extending its seed list)
/// reloads every already-computed cell.
///
/// # Errors
///
/// Propagates the first cell error.
pub fn run_table_seeds_with_store(
    config: &Table1Config,
    seeds: &[u64],
    store: ArtifactStore,
    mut progress: impl FnMut(u64, &CellResult),
) -> Result<TableResult, DeepMorphError> {
    let runner = SweepRunner::new(store);
    let mut per_seed = Vec::new();
    for &seed in seeds {
        let cfg = Table1Config { seed, ..*config };
        let result = run_table_on(&runner, &cfg, |cell| progress(seed, cell))?;
        per_seed.push(result);
    }
    Ok(aggregate_tables(&per_seed))
}

/// Averages matching cells across per-seed tables.
pub fn aggregate_tables(tables: &[TableResult]) -> TableResult {
    let Some(first) = tables.first() else {
        return TableResult::default();
    };
    let mut cells = Vec::new();
    for proto in &first.cells {
        let matching: Vec<&CellResult> = tables
            .iter()
            .filter_map(|t| {
                t.cells
                    .iter()
                    .find(|c| c.model == proto.model && c.injected == proto.injected)
            })
            .collect();
        let n = matching.len() as f32;
        let mut ratios = [0.0f32; 3];
        let mut test_accuracy = 0.0;
        let mut faulty = 0.0;
        let mut health = 0.0;
        for c in &matching {
            for (acc, v) in ratios.iter_mut().zip(&c.ratios) {
                *acc += v / n;
            }
            test_accuracy += c.test_accuracy / n;
            faulty += c.faulty_cases as f32 / n;
            health += c.model_health / n;
        }
        let reported_idx = ratios
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("ratios are finite"))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let reported = ["ITD", "UTD", "SD"][reported_idx].to_string();
        cells.push(CellResult {
            model: proto.model.clone(),
            dataset: proto.dataset.clone(),
            injected: proto.injected.clone(),
            ratios,
            correct: reported == proto.injected,
            reported,
            test_accuracy,
            faulty_cases: faulty.round() as usize,
            model_health: health,
        });
    }
    TableResult { cells }
}

/// Formats results in the paper's layout: rows = injected defect, columns
/// = (model × reported ratio).
pub fn render_table(result: &TableResult) -> String {
    let mut out = String::new();
    out.push_str("RESULTS ON DL MODELS WITH INJECTED DEFECTS (reproduction of Table I)\n");
    out.push_str("                 |        synth-digits         |        synth-objects        \n");
    out.push_str("Injected         |    LeNet     |   AlexNet    |    ResNet    |   DenseNet   \n");
    out.push_str("                 | ITD  UTD  SD | ITD  UTD  SD | ITD  UTD  SD | ITD  UTD  SD \n");
    out.push_str(&"-".repeat(78));
    out.push('\n');
    for injected in ["ITD", "UTD", "SD"] {
        let mut row = format!("{injected:<17}|");
        for model in ["LeNet", "AlexNet", "ResNet", "DenseNet"] {
            let cell = result
                .cells
                .iter()
                .find(|c| c.injected == injected && c.model == model);
            match cell {
                Some(c) => {
                    row.push_str(&format!(
                        " {:.2} {:.2} {:.2}{}|",
                        c.ratios[0],
                        c.ratios[1],
                        c.ratios[2],
                        if c.correct { " " } else { "!" }
                    ));
                }
                None => row.push_str("      (missing)     |"),
            }
        }
        out.push_str(&row);
        out.push('\n');
    }
    out.push_str(&format!(
        "diagonal accuracy: {:.0}% ({} of {} cells; '!' marks misses)\n",
        result.diagonal_accuracy() * 100.0,
        result.cells.iter().filter(|c| c.correct).count(),
        result.cells.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_all_three_defects() {
        let kinds: Vec<_> = default_defects()
            .iter()
            .map(|d| d.kind().unwrap().abbrev())
            .collect();
        assert_eq!(kinds, vec!["ITD", "UTD", "SD"]);
    }

    #[test]
    fn dataset_assignment_matches_paper() {
        assert_eq!(dataset_for(ModelFamily::LeNet), DatasetKind::Digits);
        assert_eq!(dataset_for(ModelFamily::AlexNet), DatasetKind::Digits);
        assert_eq!(dataset_for(ModelFamily::ResNet), DatasetKind::Objects);
        assert_eq!(dataset_for(ModelFamily::DenseNet), DatasetKind::Objects);
    }

    #[test]
    fn render_handles_missing_cells() {
        let table = TableResult { cells: vec![] };
        let s = render_table(&table);
        assert!(s.contains("missing"));
        assert_eq!(table.diagonal_accuracy(), 0.0);
    }

    #[test]
    fn render_formats_cells() {
        let table = TableResult {
            cells: vec![CellResult {
                model: "LeNet".into(),
                dataset: "synth-digits".into(),
                injected: "ITD".into(),
                ratios: [0.7, 0.2, 0.1],
                reported: "ITD".into(),
                correct: true,
                test_accuracy: 0.8,
                faulty_cases: 50,
                model_health: 0.9,
            }],
        };
        let s = render_table(&table);
        assert!(s.contains("0.70 0.20 0.10"));
        assert!(s.contains("diagonal accuracy"));
    }
}
