//! CI telemetry smoke: arms the process-global `deepmorph-telemetry`
//! registry against a live server, drives labeled and unlabeled predict
//! traffic through it, and asserts the observability surface end to
//! end — the `Telemetry` wire frame round-trips, per-version live
//! stats move under load (including the misclassification rate), the
//! Prometheus-style exposition parses, and the disarmed path reports
//! itself disarmed.
//!
//! ```text
//! cargo run --release -p deepmorph-bench --bin telemetry_smoke
//! ```
//!
//! Runs on both the default and `--no-default-features` build paths in
//! CI (the telemetry crate itself has no features to disagree about).

use deepmorph_models::{build_model, ModelFamily, ModelScale, ModelSpec};
use deepmorph_serve::prelude::*;
use deepmorph_serve::protocol::{self, Response};
use deepmorph_tensor::init::stream_rng;
use deepmorph_tensor::Tensor;

const MODEL: &str = "telemetry-lenet";
const ROW_ELEMS: usize = 256; // [1, 16, 16]

fn input_row(i: usize) -> Tensor {
    let data = (0..ROW_ELEMS)
        .map(|j| {
            let h = (i.wrapping_mul(ROW_ELEMS).wrapping_add(j) as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ((h >> 40) as f32 / (1u64 << 24) as f32).fract()
        })
        .collect();
    Tensor::from_vec(data, &[1, 1, 16, 16]).unwrap()
}

/// Every non-comment exposition line must be `name{labels} value` with
/// a parseable finite value. Returns the number of sample lines.
fn assert_exposition_parses(text: &str) -> usize {
    let mut samples = 0;
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("exposition line without a value: {line:?}"));
        assert!(
            !name.is_empty(),
            "exposition line with an empty metric name: {line:?}"
        );
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("unparseable exposition value in {line:?}"));
        assert!(value.is_finite(), "non-finite exposition value: {line:?}");
        samples += 1;
    }
    samples
}

fn main() {
    let spec = ModelSpec::new(ModelFamily::LeNet, ModelScale::Tiny, [1, 16, 16], 10);
    let mut model = build_model(&spec, &mut stream_rng(0x7E1E, "telemetry-smoke")).unwrap();
    let mut registry = ModelRegistry::new();
    registry.register(MODEL, &mut model, None).unwrap();
    let server = Server::start(registry, ServerConfig::default()).expect("server");
    let mut client = Client::connect(server.local_addr()).expect("client");

    deepmorph_telemetry::install(TelemetryConfig::default());

    // Unlabeled traffic, then labeled traffic with one deliberately
    // wrong label and one right one, so every per-version counter —
    // requests, labeled cases, misclassifications — has to move.
    let total = 16usize;
    let mut predicted = 0usize;
    for i in 0..total {
        let out = client.predict(MODEL, &input_row(i)).expect("predict");
        assert_eq!(out.predictions.len(), 1);
        if i == 0 {
            predicted = out.predictions[0];
        }
    }
    let wrong = (predicted + 1) % 10;
    client
        .predict_full(MODEL, &input_row(0), false, &[wrong])
        .expect("mislabeled predict");
    client
        .predict_full(MODEL, &input_row(0), false, &[predicted])
        .expect("correctly labeled predict");

    // The armed report, fetched over the wire: this exercises the
    // KIND_TELEMETRY request frame, the versioned payload encode on the
    // server, and the decode in the client.
    let report = client.telemetry().expect("telemetry frame");
    assert!(report.armed, "registry is installed — report must say so");
    assert!(
        report.stats.requests >= (total + 2) as u64,
        "server stats did not count the load"
    );
    let recorded = report.snapshot.request_us.count();
    assert!(
        recorded >= (total + 2) as u64,
        "request histogram recorded {recorded} responses, expected >= {}",
        total + 2
    );
    let version = report
        .snapshot
        .versions
        .iter()
        .find(|v| v.requests > 0)
        .expect("per-version stats moved under load");
    assert!(
        version.labeled >= 2,
        "labeled traffic did not reach the per-version stats"
    );
    assert!(
        version.misclassified >= 1,
        "the deliberately wrong label did not count as a misclassification"
    );
    assert!(
        version.misclassification_rate() > 0.0,
        "live misclassification rate must be nonzero after a wrong label"
    );

    let exposition = report.to_prometheus();
    let samples = assert_exposition_parses(&exposition);
    assert!(
        samples > 20,
        "exposition suspiciously small: {samples} sample lines"
    );
    print!("{exposition}");

    // Round-trip equality at the codec level, independent of the wire.
    let wire = protocol::encode_response(7, &Response::Telemetry(report.clone()));
    let (id, decoded) = protocol::decode_response(&wire[4..]).expect("decode telemetry frame");
    assert_eq!(id, 7);
    assert_eq!(
        decoded,
        Response::Telemetry(report),
        "telemetry frame must round-trip bitwise through the codec"
    );

    // Disarm: the frame still answers, but reports itself disarmed.
    deepmorph_telemetry::clear();
    let disarmed = client.telemetry().expect("disarmed telemetry frame");
    assert!(!disarmed.armed, "cleared registry must report disarmed");
    assert_eq!(
        disarmed.snapshot.request_us.count(),
        0,
        "disarmed report must carry an empty snapshot"
    );

    server.shutdown();
    println!("telemetry smoke OK: {samples} exposition samples, {recorded} latencies recorded");
}
