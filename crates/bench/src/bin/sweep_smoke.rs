//! Cached-sweep smoke for CI: cold vs. warm artifact store.
//!
//! ```text
//! cargo run --release -p deepmorph-bench --bin sweep_smoke
//! ```
//!
//! Runs one tiny severity sweep twice against the same fresh artifact
//! store and asserts the caching contract the staged engine promises:
//!
//! * the **cold** pass trains the shared base stage once (every cell's
//!   baseline lookup after that is a hit),
//! * the **warm** pass recomputes nothing (zero misses, zero writes), and
//! * warm per-cell reports are **identical** to cold ones, bit for bit.
//!
//! Exits non-zero on any violation, so cache reuse is exercised on every
//! CI run.

use std::time::Instant;

use deepmorph::prelude::*;

fn tiny_plan() -> Result<ExperimentPlan, DeepMorphError> {
    let base = Scenario::builder(ModelFamily::LeNet, DatasetKind::Digits)
        .seed(5)
        .train_per_class(24)
        .test_per_class(10)
        .train_config(TrainConfig {
            epochs: 2,
            batch_size: 16,
            learning_rate: 0.05,
            ..TrainConfig::default()
        });
    ExperimentPlan::from_defects(
        base,
        [0.4f32, 0.7, 0.9].map(|f| DefectSpec::unreliable_training_data(3, 5, f)),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("deepmorph-sweep-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let runner = SweepRunner::new(ArtifactStore::open(&dir)?);
    let plan = tiny_plan()?;

    let start = Instant::now();
    let cold = runner.run(&plan);
    let cold_time = start.elapsed();
    println!(
        "cold sweep: {} cells ({} diagnosed) in {:.2}s — store {}",
        plan.len(),
        cold.succeeded(),
        cold_time.as_secs_f32(),
        cold.store
    );
    assert!(
        cold.store.hits >= plan.len() as u64,
        "cold sweep must reuse the shared base stage across cells ({})",
        cold.store
    );
    assert!(
        cold.store.writes > 0,
        "cold sweep must persist stage artifacts ({})",
        cold.store
    );

    let start = Instant::now();
    let warm = runner.run(&plan);
    let warm_time = start.elapsed();
    println!(
        "warm sweep: in {:.2}s — store {}",
        warm_time.as_secs_f32(),
        warm.store
    );
    assert_eq!(
        warm.store.misses, 0,
        "warm sweep must load every stage from the store ({})",
        warm.store
    );
    assert_eq!(
        warm.store.writes, 0,
        "warm sweep must not rewrite artifacts ({})",
        warm.store
    );

    // Per-cell results must be identical whether computed or loaded.
    assert_eq!(cold.cells.len(), warm.cells.len());
    for (a, b) in cold.cells.iter().zip(&warm.cells) {
        assert_eq!(a, b, "cached cell diverged from computed cell");
    }
    println!(
        "cache reuse OK: warm == cold bitwise, {:.1}x faster",
        cold_time.as_secs_f32() / warm_time.as_secs_f32().max(1e-6)
    );

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
