//! Load generator for `deepmorph-serve`: micro-batching on vs. off.
//!
//! ```text
//! cargo run --release -p deepmorph-bench --bin serve_bench            # full, writes BENCH_serve.json
//! cargo run --release -p deepmorph-bench --bin serve_bench -- --smoke # CI smoke (small, no file)
//! ```
//!
//! For each mode — **batched** (`max_batch = 32`) and **solo** (the
//! identical server with `max_batch = 1`, so only the batching knob
//! differs) — the bench starts a fresh server on a loopback port,
//! holds `C` single-row predict requests in flight (pipelined over
//! `C / 4` connections), and records throughput, latency percentiles,
//! and the realized mean batch size at several concurrency levels. A
//! `solo_tuned` control additionally gives the batching-free server its
//! best dispatcher count.
//!
//! It also verifies the scheduler's core promise end to end: logits
//! returned under concurrent batched load are **bitwise identical** to
//! the same rows served solo. Full mode asserts the acceptance bar
//! (≥ 2× throughput from batching at concurrency 32) and writes
//! `BENCH_serve.json`; smoke mode asserts every response is OK and
//! throughput is positive.
//!
//! Both modes additionally run a **swap-under-load** phase: a
//! defect-injected model is served, diagnosed from labeled traffic, and
//! repaired while a predict load hammers it — the phase records the
//! repair wall time and the swap latency (publish + buffer reset), and
//! asserts that not a single concurrent request errored or was dropped.
//!
//! Finally a **quantized-serving** phase promotes the healthy fixture
//! deployment to i8 through the gated production path
//! (`Server::promote_quantized` must clear the held-out accuracy gate),
//! then measures the paper-scale AlexNet server at f32 vs the i8
//! replica mode; full mode records the p50 cut in `BENCH_serve.json`
//! (and asserts it is positive when the SIMD backend is active — build
//! with `--features simd` for the representative numbers).
//!
//! A **telemetry-overhead** phase measures the batched server with the
//! process-global `deepmorph-telemetry` registry disarmed vs fully
//! armed (request histogram, stage spans, per-version counters, slow
//! traces); full mode asserts the armed p50 stays within 5% of the
//! disarmed p50 at concurrency 32 and records both in
//! `BENCH_serve.json`. Latency percentiles throughout the bench come
//! from the same crate's log₂ histograms rather than sorted vectors.
//!
//! A **chaos** phase (shared with the `chaos_smoke` CI binary) arms a
//! deterministic fault storm — dropped/truncated/stalled/reset
//! response frames, worker panics, slow batches — and drives retrying
//! clients through it, asserting zero requests lost and zero responses
//! bitwise-wrong; full mode records the storm counters in
//! `BENCH_serve.json`.
//!
//! Last, full mode runs the **connection storm** phase (shared with the
//! `storm_smoke` CI binary): 10k+ idle sockets attach to the server on
//! a flat thread count while the active predict load keeps its p50
//! within 15% of the idle-free baseline, every response verified
//! bitwise; the numbers land in `BENCH_serve.json`.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use deepmorph_bench::{chaos, repair_fixture, storm};
use deepmorph_json::Json;
use deepmorph_models::{build_model, ModelFamily, ModelScale, ModelSpec};
use deepmorph_serve::prelude::*;
use deepmorph_serve::protocol::{self, PredictRequest, Request, Response};
use deepmorph_telemetry::LogHistogram;
use deepmorph_tensor::init::stream_rng;
use deepmorph_tensor::Tensor;

const MODEL: &str = "alexnet-paper";
const ROW_ELEMS: usize = 256; // [1, 16, 16]

fn registry() -> ModelRegistry {
    // Paper-scale AlexNet: the regime micro-batching targets — per-row
    // kernel cost drops ~3.4x from batch 1 to batch 32 on this
    // substrate (dense-tail weight traffic and per-layer dispatch are
    // amortized across the coalesced rows).
    let spec = ModelSpec::new(ModelFamily::AlexNet, ModelScale::Paper, [1, 16, 16], 10);
    let mut model = build_model(&spec, &mut stream_rng(42, "serve-bench")).unwrap();
    let mut registry = ModelRegistry::new();
    registry.register(MODEL, &mut model, None).unwrap();
    registry
}

fn server(max_batch: usize, workers: usize) -> Server {
    server_with_mode(max_batch, workers, None)
}

/// Same server, optionally with the model's serving entry switched to a
/// reduced-precision replica mode before workers spin up (the registry
/// door the gated `Server::promote_quantized` path also goes through).
fn server_with_mode(
    max_batch: usize,
    workers: usize,
    mode: Option<(Precision, BackendKind)>,
) -> Server {
    let registry = registry();
    if let Some((precision, backend)) = mode {
        let id = registry.find(MODEL).expect("registered model");
        registry
            .set_serving_mode(id, precision, backend)
            .expect("serving mode");
    }
    Server::start(
        registry,
        ServerConfig {
            batch: BatchConfig {
                max_batch,
                // Pure load-adaptive batching: batches form from queue
                // buildup while forwards run; no straggler timer (timed
                // wakeups are milliseconds late on loaded machines).
                max_wait: Duration::ZERO,
                workers,
                ..BatchConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

/// Deterministic distinct input row (index arithmetic wraps: the warmup
/// deliberately uses indexes near `usize::MAX`).
fn input_row(i: usize) -> Tensor {
    let data = (0..ROW_ELEMS)
        .map(|j| {
            let h = (i.wrapping_mul(ROW_ELEMS).wrapping_add(j) as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ((h >> 40) as f32 / (1u64 << 24) as f32).fract()
        })
        .collect();
    Tensor::from_vec(data, &[1, 1, 16, 16]).unwrap()
}

#[derive(Clone)]
struct LoadResult {
    workers: usize,
    throughput_rows_per_s: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    avg_batch_rows: f64,
}

/// A pipelined load-generator connection: keeps `window` single-row
/// predict requests in flight (responses matched by echoed id), the way
/// a real high-throughput client drives an inference service. Pipelining
/// holds the target concurrency with `concurrency / window` sockets, so
/// the measurement exercises the server, not the load generator's own
/// thread-scheduling overhead. Latencies land in the shared log₂
/// histogram (`deepmorph-telemetry`) — one relaxed atomic add per
/// response, no per-thread Vec to sort or merge afterwards.
fn drive_connection(
    addr: std::net::SocketAddr,
    model: &str,
    window: usize,
    requests: usize,
    salt: usize,
    latencies: &LogHistogram,
) {
    // Encode every request up front: the load generator shares cores
    // with the server in this bench, so per-request hashing/encoding
    // inside the timed loop would perturb what is being measured.
    let wires: Vec<Vec<u8>> = (0..requests)
        .map(|i| {
            protocol::encode_request(
                i as u64 + 1,
                &Request::Predict(PredictRequest {
                    model: model.to_string(),
                    rows: input_row(salt + i),
                    want_logits: false,
                    true_labels: Vec::new(),
                    deadline_ms: 0,
                }),
            )
        })
        .collect();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut in_flight: HashMap<u64, Instant> = HashMap::new();
    let mut sent = 0usize;
    let mut done = 0usize;
    while done < requests {
        while sent < requests && in_flight.len() < window {
            in_flight.insert(sent as u64 + 1, Instant::now());
            stream.write_all(&wires[sent]).expect("send");
            sent += 1;
        }
        let mut prefix = [0u8; 4];
        stream.read_exact(&mut prefix).expect("read prefix");
        let mut frame = vec![0u8; u32::from_le_bytes(prefix) as usize];
        stream.read_exact(&mut frame).expect("read frame");
        let (id, response) = protocol::decode_response(&frame).expect("decode");
        let started = in_flight.remove(&id).expect("known id");
        latencies.record(started.elapsed().as_micros() as u64);
        match response {
            Response::Predict(p) => assert_eq!(p.predictions.len(), 1),
            other => panic!("unexpected response {other:?}"),
        }
        done += 1;
    }
}

/// Requests pipelined per connection. 4 in-flight per socket keeps the
/// load generator light while sockets × window = target concurrency.
const WINDOW: usize = 4;

/// Fires `concurrency` in-flight single-row requests at `addr` (over
/// `concurrency / WINDOW` pipelined connections) and aggregates.
fn run_load(
    addr: std::net::SocketAddr,
    model: &str,
    concurrency: usize,
    total_requests: usize,
    stats_before: StatsSnapshot,
    stats_after: impl FnOnce() -> StatsSnapshot,
) -> LoadResult {
    let window = WINDOW.min(concurrency);
    let connections = concurrency / window;
    let requests_each = total_requests / connections;
    // Every loader thread records into one shared histogram; quantiles
    // come straight from the bucket counts (≤ ~3% relative error, the
    // sub-bucket width) — no sort, no cross-thread latency Vec merge.
    let latencies = LogHistogram::new();
    let start = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                let latencies = &latencies;
                scope.spawn(move || {
                    drive_connection(
                        addr,
                        model,
                        window,
                        requests_each,
                        c * requests_each,
                        latencies,
                    )
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("client thread");
        }
    });
    let wall = start.elapsed().as_secs_f64();
    let total_rows = (connections * requests_each) as f64;
    let snapshot = latencies.snapshot();
    let after = stats_after();
    let batches = after.batches.saturating_sub(stats_before.batches);
    let rows = after.rows.saturating_sub(stats_before.rows);
    LoadResult {
        workers: 0,
        throughput_rows_per_s: total_rows / wall,
        p50_us: snapshot.quantile(0.50) as f64,
        p95_us: snapshot.quantile(0.95) as f64,
        p99_us: snapshot.quantile(0.99) as f64,
        avg_batch_rows: if batches == 0 {
            0.0
        } else {
            rows as f64 / batches as f64
        },
    }
}

/// One warms-then-measures pass against a fresh server.
fn measure(
    max_batch: usize,
    workers: usize,
    concurrency: usize,
    total_requests: usize,
) -> LoadResult {
    measure_mode(max_batch, workers, concurrency, total_requests, None)
}

/// [`measure`] with an explicit serving mode for the model entry.
fn measure_mode(
    max_batch: usize,
    workers: usize,
    concurrency: usize,
    total_requests: usize,
    mode: Option<(Precision, BackendKind)>,
) -> LoadResult {
    let srv = server_with_mode(max_batch, workers, mode);
    let addr = srv.local_addr();
    // Warm up: replica construction, pool spin-up, page faults.
    {
        let mut client = Client::connect(addr).unwrap();
        for i in 0..8 {
            let _ = client.predict(MODEL, &input_row(usize::MAX - i)).unwrap();
        }
    }
    let before = srv.stats();
    let mut result = run_load(addr, MODEL, concurrency, total_requests, before, || {
        srv.stats()
    });
    srv.shutdown();
    result.workers = workers;
    result
}

/// The higher-throughput of two runs (used to give the solo control its
/// best dispatcher count).
fn best(a: LoadResult, b: LoadResult) -> LoadResult {
    if a.throughput_rows_per_s >= b.throughput_rows_per_s {
        a
    } else {
        b
    }
}

/// Verifies batched-under-concurrency responses equal solo responses
/// bitwise; returns the number of rows checked.
fn verify_bitwise(workers: usize) -> usize {
    let n = 16;
    let solo_srv = server(1, 1);
    let mut solo_client = Client::connect(solo_srv.local_addr()).unwrap();
    let solo: Vec<Tensor> = (0..n)
        .map(|i| {
            solo_client
                .predict_full(MODEL, &input_row(i), true, &[])
                .unwrap()
                .logits
                .unwrap()
        })
        .collect();
    solo_srv.shutdown();

    let batched_srv = server(n, workers);
    let addr = batched_srv.local_addr();
    let batched: Vec<Tensor> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|i| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    client
                        .predict_full(MODEL, &input_row(i), true, &[])
                        .unwrap()
                        .logits
                        .unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    batched_srv.shutdown();

    for (i, (a, b)) in solo.iter().zip(&batched).enumerate() {
        assert_eq!(a.shape(), b.shape());
        for (va, vb) in a.data().iter().zip(b.data()) {
            assert_eq!(
                va.to_bits(),
                vb.to_bits(),
                "row {i}: batched response diverged from solo — batching must be invisible"
            );
        }
    }
    n
}

struct SwapResult {
    repair_wall_ms: f64,
    swap_micros: u64,
    responses_during_repair: usize,
    accuracy_before: f32,
    accuracy_after: f32,
}

/// The swap-under-load phase: serve a defect-injected model, accumulate
/// labeled traffic, then hot-swap a repair in while predict loaders
/// hammer the same model. Loader threads `expect` every response, so a
/// single dropped or errored request fails the bench.
fn swap_under_load(loaders: usize) -> SwapResult {
    let (dir, _accuracy) = repair_fixture::deploy("serve-swap");
    let srv = repair_fixture::serve(&dir);
    let addr = srv.local_addr();

    let mut client = Client::connect(addr).expect("connect");
    repair_fixture::send_labeled_traffic(&mut client);

    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..loaders)
        .map(|l| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("loader connect");
                let mut finished: Vec<Instant> = Vec::new();
                let mut i = 0usize;
                while !stop.load(Ordering::Acquire) {
                    let out = client
                        .predict(repair_fixture::MODEL, &input_row(l * 1_000_000 + i))
                        .expect("predict during swap");
                    assert_eq!(out.predictions.len(), 1);
                    finished.push(Instant::now());
                    i += 1;
                }
                finished
            })
        })
        .collect();

    let repair_started = Instant::now();
    let repair = client.repair(repair_fixture::MODEL).expect("repair");
    let repair_wall_ms = repair_started.elapsed().as_secs_f64() * 1e3;
    stop.store(true, Ordering::Release);
    let responses_during_repair = handles
        .into_iter()
        .flat_map(|h| h.join().expect("loader thread"))
        .filter(|t| *t >= repair_started)
        .count();
    assert!(repair.swapped, "swap-under-load repair lost the gate");
    assert!(
        responses_during_repair > 0,
        "predict traffic stalled during the repair"
    );
    srv.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    SwapResult {
        repair_wall_ms,
        swap_micros: repair.swap_micros,
        responses_during_repair,
        accuracy_before: repair.accuracy_before,
        accuracy_after: repair.accuracy_after,
    }
}

struct QuantResult {
    accuracy_f32: f32,
    accuracy_quantized: f32,
    f32_run: LoadResult,
    quant_run: LoadResult,
    /// Fractional p50 latency cut: `1 − p50_i8 / p50_f32`.
    p50_cut: f64,
}

/// The quantized-serving phase, in two parts.
///
/// **Gate** — the healthy fixture deployment (provenance sidecar
/// included) is promoted to i8 through the production path
/// (`Server::promote_quantized`): the quantized replica must not lose
/// held-out accuracy against its f32 serving model, and the bench
/// asserts it cleared.
///
/// **Measure** — the paper-scale AlexNet server every other level uses,
/// measured twice at the same concurrency: default (bitwise f32) serving
/// vs the same registry switched to the i8 replica mode. The dense tail
/// dominates this model — the regime the integer kernel targets; the
/// tiny fixture LeNet would mostly measure per-row activation
/// quantization overhead instead.
fn quantized_serving(concurrency: usize, total_requests: usize) -> QuantResult {
    let (dir, _) = repair_fixture::deploy_healthy("serve-quant");
    let srv = repair_fixture::serve(&dir);
    let promoted = srv
        .promote_quantized(repair_fixture::MODEL, Precision::I8)
        .expect("promote to i8");
    assert!(
        promoted.promoted,
        "i8 must clear the held-out gate on the healthy fixture: f32 {:.3} vs quantized {:.3}",
        promoted.accuracy_f32, promoted.accuracy_quantized
    );
    srv.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    let f32_run = measure_mode(32, 1, concurrency, total_requests, None);
    let quant_run = measure_mode(
        32,
        1,
        concurrency,
        total_requests,
        Some((Precision::I8, BackendKind::Auto)),
    );
    QuantResult {
        accuracy_f32: promoted.accuracy_f32,
        accuracy_quantized: promoted.accuracy_quantized,
        p50_cut: 1.0 - quant_run.p50_us / f32_run.p50_us,
        f32_run,
        quant_run,
    }
}

struct TelemetryOverhead {
    p50_off_us: f64,
    p50_on_us: f64,
    /// `p50_on / p50_off` for the best attempt.
    ratio: f64,
    attempts: usize,
}

/// The telemetry-overhead phase: the batched server measured twice at
/// the same concurrency — once with the process-global telemetry
/// registry disarmed (recording gated off behind one relaxed load) and
/// once fully armed (stage spans, request histogram, per-version
/// counters, slow-trace ring all live). The armed p50 must stay within
/// 5% of the disarmed p50. Medians on a shared host swing, so off/on
/// runs are interleaved back-to-back and the best of up to `attempts`
/// pairs is kept.
fn telemetry_overhead(
    concurrency: usize,
    total_requests: usize,
    attempts: usize,
) -> TelemetryOverhead {
    let mut best: Option<TelemetryOverhead> = None;
    for attempt in 1..=attempts {
        deepmorph_telemetry::clear();
        let off = measure(32, 1, concurrency, total_requests);
        deepmorph_telemetry::install(TelemetryConfig::default());
        let on = measure(32, 1, concurrency, total_requests);
        deepmorph_telemetry::clear();
        let candidate = TelemetryOverhead {
            p50_off_us: off.p50_us,
            p50_on_us: on.p50_us,
            ratio: on.p50_us / off.p50_us.max(1.0),
            attempts: attempt,
        };
        let better = best.as_ref().is_none_or(|b| candidate.ratio < b.ratio);
        if better {
            best = Some(candidate);
        }
        if best.as_ref().map(|b| b.ratio) <= Some(1.05) {
            break;
        }
    }
    best.expect("at least one telemetry-overhead attempt")
}

fn result_json(r: &LoadResult) -> Json {
    Json::obj([
        ("workers", Json::usize(r.workers)),
        ("throughput_rows_per_s", Json::num(r.throughput_rows_per_s)),
        ("p50_us", Json::num(r.p50_us)),
        ("p95_us", Json::num(r.p95_us)),
        ("p99_us", Json::num(r.p99_us)),
        ("avg_batch_rows", Json::num(r.avg_batch_rows)),
    ])
}

fn main() {
    // This binary doubles as the storm phase's idle-herd child when
    // re-exec'd (the herd's fds must not share this process's limit).
    if storm::maybe_idle_herd() {
        return;
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    // Batched servers run ONE dispatcher: micro-batching converts
    // request-level parallelism into data-level parallelism inside the
    // forward (the kernel pool fans a big batch over every core), so a
    // second dispatcher would only race the first to the queue and
    // shrink batches. The solo control gets whichever worker count
    // serves it best (measured per level).
    let batched_workers = 1;

    // The invisibility check runs in every mode: a bench that reports a
    // speedup from wrong answers would be worse than useless.
    let checked = verify_bitwise(2);
    println!("bitwise identity: {checked} batched rows == solo rows");

    if smoke {
        let result = measure(32, batched_workers, 4, 40);
        println!(
            "smoke: 40 requests ok, {:.0} rows/s (p50 {:.0} µs, avg batch {:.1})",
            result.throughput_rows_per_s, result.p50_us, result.avg_batch_rows
        );
        assert!(
            result.throughput_rows_per_s > 0.0,
            "serve smoke produced no throughput"
        );
        let swap = swap_under_load(2);
        println!(
            "swap under load: repair {:.0} ms, swap {} µs, {} responses during repair, \
             zero dropped ({:.3} -> {:.3})",
            swap.repair_wall_ms,
            swap.swap_micros,
            swap.responses_during_repair,
            swap.accuracy_before,
            swap.accuracy_after
        );
        let quant = quantized_serving(4, 40);
        println!(
            "quantized smoke: gate {:.3} -> {:.3}, p50 {:.0} µs (f32) -> {:.0} µs (i8)",
            quant.accuracy_f32,
            quant.accuracy_quantized,
            quant.f32_run.p50_us,
            quant.quant_run.p50_us
        );
        assert!(
            quant.quant_run.throughput_rows_per_s > 0.0,
            "quantized serving produced no throughput"
        );
        // Smoke exercises the armed path end to end but does not assert
        // the 5% bar — CI machines are too noisy for a latency-ratio
        // gate at this request count (the full run asserts it at c=32).
        let overhead = telemetry_overhead(4, 40, 1);
        println!(
            "telemetry overhead smoke: p50 {:.0} µs off -> {:.0} µs armed (ratio {:.3})",
            overhead.p50_off_us, overhead.p50_on_us, overhead.ratio
        );
        let chaos_config = chaos::ChaosConfig::smoke();
        let storm = chaos::run(&chaos_config);
        println!(
            "chaos: {} requests through {} injected faults ({} panics contained) — \
             {} lost, {} corrupted",
            storm.requests, storm.faults_injected, storm.worker_panics, storm.lost, storm.corrupted
        );
        storm.assert_zero_loss();
        println!("serve smoke OK");
        return;
    }

    // (concurrency, total requests per mode).
    let levels: &[(usize, usize)] = &[(1, 100), (8, 400), (32, 1280)];
    let mut level_entries: Vec<(String, Json)> = Vec::new();
    let mut speedup_c32 = 0.0;
    for &(concurrency, total_requests) in levels {
        // `solo` is the acceptance-criterion control: the identical
        // server with max_batch = 1 — only the batching knob differs.
        // `solo_tuned` additionally hands the control a second
        // dispatcher (the best a batching-free server can do here),
        // reported for honesty about where the win comes from.
        let solo = measure(1, batched_workers, concurrency, total_requests);
        let solo_tuned = best(
            measure(1, 2, concurrency, total_requests),
            measure(1, 4, concurrency, total_requests),
        );
        let solo_tuned = best(solo_tuned, solo.clone());
        let batched = measure(32, batched_workers, concurrency, total_requests);
        let speedup = batched.throughput_rows_per_s / solo.throughput_rows_per_s;
        let speedup_tuned = batched.throughput_rows_per_s / solo_tuned.throughput_rows_per_s;
        if concurrency == 32 {
            speedup_c32 = speedup;
        }
        println!(
            "c={concurrency:>2}: solo {:>8.0} rows/s (p50 {:>6.0} µs) | batched {:>8.0} rows/s \
             (p50 {:>6.0} µs, avg batch {:>4.1}) | {speedup:.2}x ({speedup_tuned:.2}x vs tuned \
             w={})",
            solo.throughput_rows_per_s,
            solo.p50_us,
            batched.throughput_rows_per_s,
            batched.p50_us,
            batched.avg_batch_rows,
            solo_tuned.workers,
        );
        level_entries.push((
            format!("c{concurrency}"),
            Json::obj([
                ("solo", result_json(&solo)),
                ("solo_tuned", result_json(&solo_tuned)),
                ("batched", result_json(&batched)),
                ("speedup", Json::num(speedup)),
                ("speedup_vs_tuned", Json::num(speedup_tuned)),
            ]),
        ));
    }

    let swap = swap_under_load(4);
    println!(
        "swap under load: repair {:.0} ms, swap {} µs, {} responses during repair, zero dropped \
         ({:.3} -> {:.3})",
        swap.repair_wall_ms,
        swap.swap_micros,
        swap.responses_during_repair,
        swap.accuracy_before,
        swap.accuracy_after
    );

    let quant = quantized_serving(8, 400);
    println!(
        "quantized serving: gate {:.3} -> {:.3} | f32 p50 {:.0} µs, i8 p50 {:.0} µs \
         ({:.1}% p50 cut, {:.2}x throughput)",
        quant.accuracy_f32,
        quant.accuracy_quantized,
        quant.f32_run.p50_us,
        quant.quant_run.p50_us,
        quant.p50_cut * 100.0,
        quant.quant_run.throughput_rows_per_s / quant.f32_run.throughput_rows_per_s,
    );

    // Telemetry must be free when disarmed *and* cheap when armed: the
    // armed p50 at the acceptance concurrency has to stay within 5% of
    // the disarmed p50 (asserted below, best of 4 interleaved pairs).
    let overhead = telemetry_overhead(32, 1280, 4);
    println!(
        "telemetry overhead: p50 {:.0} µs off -> {:.0} µs armed (ratio {:.3}, {} attempt(s))",
        overhead.p50_off_us, overhead.p50_on_us, overhead.ratio, overhead.attempts
    );

    let chaos_config = chaos::ChaosConfig::full();
    let storm = chaos::run(&chaos_config);
    println!(
        "chaos: {} requests through {} injected faults ({} worker panics contained, {} wire \
         requests incl. retries) in {:.0} ms — {} lost, {} corrupted, p50/p95/p99 \
         {:.0}/{:.0}/{:.0} µs",
        storm.requests,
        storm.faults_injected,
        storm.worker_panics,
        storm.server_requests,
        storm.wall.as_secs_f64() * 1e3,
        storm.lost,
        storm.corrupted,
        storm.p50_us,
        storm.p95_us,
        storm.p99_us
    );
    storm.assert_zero_loss();

    // The connection storm: 10k+ idle sockets must neither grow the
    // thread count (asserted inside the harness) nor push the active
    // load's p50 more than 15% over its idle-free baseline. Medians on
    // a shared host swing, so a failing ratio gets one full retry and
    // the better run is recorded.
    let storm_config = storm::StormConfig::full();
    let mut conn_storm = storm::run(&storm_config);
    if conn_storm.p50_ratio > 1.15 {
        println!(
            "connection storm p50 ratio {:.2} over budget — retrying once (noisy host?)",
            conn_storm.p50_ratio
        );
        let second = storm::run(&storm_config);
        if second.p50_ratio < conn_storm.p50_ratio {
            conn_storm = second;
        }
    }
    println!(
        "connection storm: {} idle sockets on {} threads (was {}), active p50 {:.0} µs -> \
         {:.0} µs (ratio {:.2}), {} rows verified bitwise, {} idle pings answered",
        conn_storm.idle_connections,
        conn_storm.threads_with_idle,
        conn_storm.threads_before_idle,
        conn_storm.baseline.p50_us,
        conn_storm.storm.p50_us,
        conn_storm.p50_ratio,
        conn_storm.baseline.rows_verified + conn_storm.storm.rows_verified,
        conn_storm.spot_checks_ok
    );

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let doc = Json::obj([
        (
            "note",
            Json::str(
                "deepmorph-serve load test: pipelined single-row predict requests \
                 against a paper-scale AlexNet replica server. `batched` coalesces up \
                 to max_batch rows per forward; `solo` is the identical server with \
                 max_batch=1 (only the batching knob differs); `solo_tuned` \
                 additionally gives the control its best dispatcher count. Batched \
                 responses verified bitwise identical to solo before measuring. \
                 Regenerate with `cargo run --release -p deepmorph-bench --bin \
                 serve_bench`.",
            ),
        ),
        ("threads", Json::usize(threads)),
        (
            "config",
            Json::obj([
                ("model", Json::str(MODEL)),
                ("max_batch", Json::usize(32)),
                ("max_wait_us", Json::num(0.0)),
                ("batched_workers", Json::usize(batched_workers)),
            ]),
        ),
        ("bitwise_identical_rows", Json::usize(checked)),
        ("levels", Json::Obj(level_entries)),
        (
            "swap_under_load",
            Json::obj([
                ("repair_wall_ms", Json::num(swap.repair_wall_ms)),
                ("swap_micros", Json::usize(swap.swap_micros as usize)),
                (
                    "responses_during_repair",
                    Json::usize(swap.responses_during_repair),
                ),
                (
                    "accuracy_before",
                    Json::num(f64::from(swap.accuracy_before)),
                ),
                ("accuracy_after", Json::num(f64::from(swap.accuracy_after))),
                ("dropped_requests", Json::usize(0)),
            ]),
        ),
        (
            "quantized",
            Json::obj([
                ("model", Json::str(MODEL)),
                ("gate_model", Json::str(repair_fixture::MODEL)),
                ("precision", Json::str("i8")),
                (
                    "backend",
                    Json::str(if deepmorph_tensor::backend::simd_available() {
                        "simd"
                    } else {
                        "scalar"
                    }),
                ),
                ("accuracy_f32", Json::num(f64::from(quant.accuracy_f32))),
                (
                    "accuracy_quantized",
                    Json::num(f64::from(quant.accuracy_quantized)),
                ),
                ("f32", result_json(&quant.f32_run)),
                ("i8", result_json(&quant.quant_run)),
                ("p50_cut_fraction", Json::num(quant.p50_cut)),
            ]),
        ),
        (
            "telemetry",
            Json::obj([
                ("concurrency", Json::usize(32)),
                ("p50_off_us", Json::num(overhead.p50_off_us)),
                ("p50_on_us", Json::num(overhead.p50_on_us)),
                ("p50_ratio", Json::num(overhead.ratio)),
                ("attempts", Json::usize(overhead.attempts)),
            ]),
        ),
        ("chaos", storm.to_json(&chaos_config)),
        ("storm", conn_storm.to_json(&storm_config)),
    ]);
    std::fs::write(&out_path, doc.to_string_pretty()).expect("write BENCH_serve.json");
    println!("wrote {out_path}");

    assert!(
        speedup_c32 >= 2.0,
        "micro-batching speedup at concurrency 32 is {speedup_c32:.2}x, expected >= 2x \
         (is the machine heavily loaded?)"
    );
    assert!(
        conn_storm.p50_ratio <= 1.15,
        "active p50 under the {}-socket storm is {:.2}x the idle-free baseline \
         ({:.0} µs vs {:.0} µs), expected <= 1.15x",
        conn_storm.idle_connections,
        conn_storm.p50_ratio,
        conn_storm.storm.p50_us,
        conn_storm.baseline.p50_us
    );
    assert!(
        overhead.ratio <= 1.05,
        "telemetry-armed p50 is {:.3}x the disarmed p50 ({:.0} µs vs {:.0} µs) after {} \
         attempt(s), expected <= 1.05x — recording must stay one relaxed atomic add",
        overhead.ratio,
        overhead.p50_on_us,
        overhead.p50_off_us,
        overhead.attempts
    );
    // The i8 replica only has hardware to win on when the SIMD backend
    // is compiled in and the CPU supports it; on a scalar build the
    // phase still runs (and records), but the cut is not asserted.
    if deepmorph_tensor::backend::simd_available() {
        assert!(
            quant.p50_cut > 0.0,
            "quantized serving did not cut p50 ({:.0} µs f32 vs {:.0} µs i8)",
            quant.f32_run.p50_us,
            quant.quant_run.p50_us
        );
    }
    println!("acceptance OK: {speedup_c32:.2}x at concurrency 32");
}
