//! CI connection-storm smoke: hundreds of idle sockets attached to a
//! live server on a flat thread count while a bitwise-verified predict
//! load runs through it.
//!
//! ```text
//! cargo run --release -p deepmorph-bench --bin storm_smoke
//! ```
//!
//! The harness lives in [`deepmorph_bench::storm`] and is shared with
//! the storm phase of `serve_bench`; the full 10k-socket shape runs
//! there. No fault plan is installed here, so the per-binary
//! `FAULT_GUARD` serialization convention (for binaries that arm the
//! process-global fault registry) does not apply.
//!
//! The smoke bar is the zero-loss machinery, not latency: CI runners
//! are too noisy for a p50 assertion, which `serve_bench` full mode
//! enforces instead.

use deepmorph_bench::storm;

fn main() {
    // This binary doubles as the idle-herd child when re-exec'd.
    if storm::maybe_idle_herd() {
        return;
    }
    // `--full` runs the 10k-socket shape `serve_bench` uses, without
    // the rest of that bench — handy when iterating on the event loop.
    let config = if std::env::args().any(|a| a == "--full") {
        storm::StormConfig::full()
    } else {
        storm::StormConfig::smoke()
    };
    let result = storm::run(&config);
    println!(
        "storm smoke: {} idle sockets on {} threads (was {}), active p50 {:.0} µs -> {:.0} µs \
         (ratio {:.2}), {} rows verified bitwise, {} idle pings answered",
        result.idle_connections,
        result.threads_with_idle,
        result.threads_before_idle,
        result.baseline.p50_us,
        result.storm.p50_us,
        result.p50_ratio,
        result.baseline.rows_verified + result.storm.rows_verified,
        result.spot_checks_ok
    );
    println!("storm smoke OK");
}
