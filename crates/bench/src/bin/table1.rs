//! Regenerates the paper's Table I.
//!
//! Usage:
//! ```text
//! cargo run --release -p deepmorph-bench --bin table1 [-- --scale tiny|small|paper]
//!     [--seed N] [--train-per-class N] [--test-per-class N] [--epochs N]
//!     [--json PATH]
//! ```

use std::time::Instant;

use deepmorph::prelude::ModelScale;
use deepmorph_bench::{render_table, run_table, run_table_seeds, Table1Config};

fn parse_args() -> (Table1Config, Option<String>, usize) {
    let mut config = Table1Config::default();
    let mut json_path = None;
    let mut num_seeds = 1usize;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let key = args[i].as_str();
        let value = args.get(i + 1).cloned();
        let take = |v: Option<String>| -> String {
            v.unwrap_or_else(|| {
                eprintln!("missing value for {key}");
                std::process::exit(2);
            })
        };
        match key {
            "--scale" => {
                config.scale = match take(value).as_str() {
                    "tiny" => ModelScale::Tiny,
                    "small" => ModelScale::Small,
                    "paper" => ModelScale::Paper,
                    other => {
                        eprintln!("unknown scale `{other}` (tiny|small|paper)");
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            "--seed" => {
                config.seed = take(value).parse().expect("--seed takes a u64");
                i += 2;
            }
            "--train-per-class" => {
                config.train_per_class = take(value).parse().expect("usize");
                i += 2;
            }
            "--test-per-class" => {
                config.test_per_class = take(value).parse().expect("usize");
                i += 2;
            }
            "--epochs" => {
                config.epochs = take(value).parse().expect("usize");
                i += 2;
            }
            "--json" => {
                json_path = Some(take(value));
                i += 2;
            }
            "--seeds" => {
                num_seeds = take(value).parse().expect("--seeds takes a count");
                i += 2;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    (config, json_path, num_seeds)
}

/// The persistent artifact store, when `DEEPMORPH_ARTIFACTS` opts in.
fn env_store() -> Option<deepmorph::artifact::ArtifactStore> {
    std::env::var_os(deepmorph::artifact::ARTIFACTS_ENV)?;
    Some(deepmorph::artifact::ArtifactStore::from_env().expect("artifact store directory"))
}

fn main() {
    let (config, json_path, num_seeds) = parse_args();
    println!("Table I sweep: {config:?} ({num_seeds} seed(s))\n");
    let start = Instant::now();
    let print_cell = |seed: u64, cell: &deepmorph_bench::CellResult| {
        println!(
            "[{:>7.1}s] seed {:<5} {:<8} x {:<3} -> reported {:<3} {} \
             (ratios ITD={:.2} UTD={:.2} SD={:.2}, test acc {:.2}, {} faulty, health {:.2})",
            start.elapsed().as_secs_f32(),
            seed,
            cell.model,
            cell.injected,
            cell.reported,
            if cell.correct { "ok " } else { "MISS" },
            cell.ratios[0],
            cell.ratios[1],
            cell.ratios[2],
            cell.test_accuracy,
            cell.faulty_cases,
            cell.model_health,
        );
    };
    let result = if num_seeds <= 1 {
        // With DEEPMORPH_ARTIFACTS set, stages persist across runs: a
        // repeated sweep (or one that only tweaks the classifier) reloads
        // every unchanged stage instead of retraining.
        match env_store() {
            Some(store) => deepmorph_bench::run_table_with_store(&config, store, |cell| {
                print_cell(config.seed, cell)
            }),
            None => run_table(&config, |cell| print_cell(config.seed, cell)),
        }
    } else {
        let seeds: Vec<u64> = (0..num_seeds as u64)
            .map(|i| config.seed + i * 101)
            .collect();
        match env_store() {
            Some(store) => {
                deepmorph_bench::run_table_seeds_with_store(&config, &seeds, store, print_cell)
            }
            None => run_table_seeds(&config, &seeds, print_cell),
        }
    }
    .unwrap_or_else(|e| {
        eprintln!("table sweep failed: {e}");
        std::process::exit(1);
    });

    println!("\n{}", render_table(&result));
    println!("total wall time: {:.1}s", start.elapsed().as_secs_f32());

    if let Some(path) = json_path {
        std::fs::write(&path, result.to_json_value().to_string_pretty())
            .unwrap_or_else(|e| eprintln!("could not write {path}: {e}"));
        println!("wrote JSON results to {path}");
    }
}
