//! Calibration diagnostics.
//!
//! Default mode: prints the mean footprint-specifics features per
//! injected defect so the signature weights in
//! `deepmorph::classify::SignatureWeights` can be grounded in data. Not
//! part of the paper's artifacts; used to document how the default
//! weights were derived (see DESIGN.md).
//!
//! `calibrate gemm [--force]`: measures SIMD GEMM block-size candidates
//! on this machine and persists the winner keyed by CPU features (see
//! `deepmorph_tensor::backend::tune`), so the measurement runs **once**
//! and every later process loads the stored tuning instead of
//! re-measuring. Without `--force`, an existing tuning is reported and
//! kept.

use deepmorph::classify::PopulationEvidence;
use deepmorph::instrument::InstrumentedModel;
use deepmorph::pattern::ClassPatterns;
use deepmorph::prelude::*;
use deepmorph::specifics::FootprintSpecifics;
use deepmorph_bench::table1::{dataset_for, default_defects};
use deepmorph_tensor::init::stream_rng;

fn main() -> Result<(), DeepMorphError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("gemm") {
        calibrate_gemm(args.iter().any(|a| a == "--force"));
        return Ok(());
    }
    let families = if args.is_empty() {
        vec![ModelFamily::LeNet, ModelFamily::ResNet]
    } else {
        ModelFamily::all()
            .into_iter()
            .filter(|f| args.contains(&f.name().to_lowercase()))
            .collect()
    };
    for family in families {
        for defect in default_defects() {
            analyze(family, &defect)?;
        }
    }
    Ok(())
}

/// The `gemm` subcommand: load-if-present (block sizes are a property of
/// the CPU, not the run), measure only when missing or `--force`d.
fn calibrate_gemm(force: bool) {
    use deepmorph_tensor::backend::tune;
    let key = tune::cpu_key();
    let dir = tune::tune_dir();
    if !force {
        if let Some(existing) = tune::load_from(&dir, &key) {
            println!(
                "existing tuning for {key}: {existing} ({}; rerun with --force to re-measure)",
                tune::tuning_path(&dir, &key).display()
            );
            return;
        }
    }
    measure_and_store(&dir, &key);
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn measure_and_store(dir: &std::path::Path, key: &str) {
    use deepmorph_tensor::backend::{simd_with_tuning, tune, GemmSpec};
    use std::time::Instant;

    // The workspace GEMM shapes the SIMD bench tracks (conv2/conv3
    // lowerings and the dense head at serving batch sizes): a tuning that
    // wins across all four wins where it matters.
    const SHAPES: [(usize, usize, usize); 4] = [
        (2048, 216, 48),
        (512, 432, 64),
        (256, 192, 256),
        (256, 256, 128),
    ];

    let fill = |len: usize, salt: u64| -> Vec<f32> {
        (0..len)
            .map(|i| {
                let h = (i as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(salt);
                ((h >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect()
    };

    let mut best: Option<(f64, tune::GemmTuning)> = None;
    for &mc in &[48, 96, 192] {
        for &kc in &[128, 256, 512] {
            for &nc in &[256, 1024, 4096] {
                let t = tune::GemmTuning { mc, kc, nc };
                let Some(backend) = simd_with_tuning(t) else {
                    println!("cpu lacks AVX2+FMA; nothing to calibrate");
                    return;
                };
                let mut total = 0.0f64;
                for &(m, k, n) in &SHAPES {
                    let a = fill(m * k, 3);
                    let b = fill(n * k, 17);
                    let mut out = vec![0.0f32; m * n];
                    let spec = GemmSpec::nt(m, k, n);
                    // One warm-up rep, then best-of-3: the minimum is the
                    // least noise-contaminated estimate.
                    let mut fastest = f64::INFINITY;
                    for rep in 0..4 {
                        out.fill(0.0);
                        let start = Instant::now();
                        backend.gemm(&spec, &a, &b, &mut out);
                        let dt = start.elapsed().as_secs_f64();
                        if rep > 0 {
                            fastest = fastest.min(dt);
                        }
                    }
                    total += fastest;
                }
                println!("{t}  {:8.3} ms", total * 1e3);
                if best.is_none_or(|(bt, _)| total < bt) {
                    best = Some((total, t));
                }
            }
        }
    }
    let (_, winner) = best.expect("grid is non-empty");
    match tune::store_to(dir, key, &winner) {
        Ok(path) => println!("winner {winner} -> {}", path.display()),
        Err(e) => eprintln!("cannot persist tuning: {e}"),
    }
}

#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
fn measure_and_store(_dir: &std::path::Path, _key: &str) {
    println!("this build has no SIMD backend; rebuild with `--features simd` to calibrate");
}

fn analyze(family: ModelFamily, defect: &DefectSpec) -> Result<(), DeepMorphError> {
    let dataset = dataset_for(family);
    let scenario = Scenario::builder(family, dataset)
        .seed(7)
        .train_per_class(120)
        .test_per_class(40)
        .train_config(TrainConfig {
            epochs: 10,
            batch_size: 32,
            learning_rate: 0.05,
            ..TrainConfig::default()
        })
        .inject(defect.clone())
        .build()?;

    // Re-run the pipeline manually to get raw specifics.
    let (clean_train, test) = scenario.generate_data();
    let mut inject_rng = stream_rng(7, "scenario-inject");
    let train = defect.apply_to_dataset(&clean_train, &mut inject_rng)?;
    let input_shape = [dataset.channels(), dataset.side(), dataset.side()];
    let spec =
        defect.apply_to_model_spec(ModelSpec::new(family, ModelScale::Tiny, input_shape, 10));
    let mut model_rng = stream_rng(7, "scenario-model");
    let mut model = build_model(&spec, &mut model_rng)?;
    let mut train_rng = stream_rng(7, "scenario-train");
    Trainer::new(TrainConfig {
        epochs: 10,
        batch_size: 32,
        learning_rate: 0.05,
        ..TrainConfig::default()
    })
    .fit(
        &mut model.graph,
        train.images(),
        train.labels(),
        &mut train_rng,
    )?;
    let test_acc = evaluate_accuracy(&mut model.graph, test.images(), test.labels(), 64)?;
    let mut faulty = FaultyCases::collect(&mut model, &test)?;
    faulty.truncate(200)?;

    // Mirror the pipeline's fit/holdout split.
    let mut split_rng = stream_rng(ProbeTrainingConfig::default().seed, "holdout-split");
    let (fit, holdout) = train.split_stratified(0.85, &mut split_rng);
    let mut inst =
        InstrumentedModel::build(model, fit.images(), fit.labels(), 10, &Default::default())?;
    let train_fps = inst.footprints(fit.images())?;
    let holdout_fps = inst.footprints(holdout.images())?;
    let patterns = ClassPatterns::learn_with_holdout(
        &train_fps,
        fit.labels(),
        &holdout_fps,
        holdout.labels(),
        inst.probe_accuracies(),
    )?;
    let faulty_fps = inst.footprints(&faulty.images)?;
    let specifics: Vec<FootprintSpecifics> = faulty_fps
        .iter()
        .zip(faulty.true_labels.iter().zip(&faulty.predicted))
        .map(|(fp, (&t, &p))| {
            FootprintSpecifics::compute(fp, t, p, &patterns, AlignmentMetric::JensenShannon)
        })
        .collect();
    let pop = PopulationEvidence::compute(&specifics, 10);

    let mean = |f: &dyn Fn(&FootprintSpecifics) -> f32| -> f32 {
        if specifics.is_empty() {
            return 0.0;
        }
        specifics.iter().map(f).sum::<f32>() / specifics.len() as f32
    };
    println!(
        "{:<8} {:<28} acc={:.2} n={:<3} health={:.2} | nov={:.3} ent={:.3} conf={:.3} \
         latep={:.3} latet={:.3} earlyt={:.3} marg={:.3} (base {:.3}) flip={:.2} | \
         pair={:.2} tconc={:.2} pconc={:.2}",
        family.name(),
        defect.describe(),
        test_acc,
        specifics.len(),
        patterns.health(),
        mean(&|s| s.novelty),
        mean(&|s| s.final_entropy),
        mean(&|s| s.final_conf_pred),
        mean(&|s| s.late_align_pred),
        mean(&|s| s.late_align_true),
        mean(&|s| s.early_align_true),
        mean(&|s| s.early_margin),
        patterns.early_margin_baseline(),
        mean(&|s| s.flip_fraction),
        pop.pair_concentration,
        pop.true_concentration,
        pop.pred_concentration,
    );
    let mean_cont = mean(&|s| patterns.contamination(s.predicted, s.true_label));
    let mean_starv = mean(&|s| patterns.starvation(s.true_label));
    println!(
        "         noise_conc={:.3} disagreement_rate={:.3} mean cont(p,t)={:.3} mean starv(t)={:.3}",
        patterns.concentrated_label_noise(),
        patterns.disagreement_rate(),
        mean_cont,
        mean_starv,
    );
    Ok(())
}
