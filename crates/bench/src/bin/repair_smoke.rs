//! CI smoke for the online diagnose → repair → hot-swap loop.
//!
//! ```text
//! cargo run --release -p deepmorph-bench --bin repair_smoke
//! ```
//!
//! Reproduces the paper's closed loop against a *running server*: train a
//! model on a defect-injected training set, deploy it (model container +
//! provenance sidecar), accumulate labeled traffic, diagnose it live,
//! repair, and assert the hot-swapped version measurably improves
//! held-out accuracy and survives a registry restart. Everything is
//! seeded, so the asserted outcome is deterministic.

use deepmorph::prelude::{DefectKind, DefectReport};
use deepmorph_bench::repair_fixture::{self, MODEL};
use deepmorph_serve::prelude::*;

fn main() {
    // Deploy: train on the injected data, persist container + sidecar.
    let (dir, deployed_accuracy) = repair_fixture::deploy("repair-smoke");
    println!("deployed defective model: test accuracy {deployed_accuracy:.3}");

    // Serve it and accumulate labeled traffic.
    let server = repair_fixture::serve(&dir);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    repair_fixture::send_labeled_traffic(&mut client);

    // Diagnose live.
    let diagnosis = client.diagnose(MODEL).expect("diagnose");
    let report = DefectReport::from_json(&diagnosis.report_json).expect("report json");
    println!(
        "live diagnosis over {} cases: {}",
        diagnosis.cases, report.ratios
    );
    assert_eq!(
        report.dominant(),
        Some(DefectKind::InsufficientTrainingData),
        "live diagnosis must attribute the injected ITD defect"
    );

    // Repair + hot-swap.
    let started = std::time::Instant::now();
    let repair = client.repair(MODEL).expect("repair");
    println!(
        "repair `{}`: {:.3} -> {:.3}, swapped={} (v{}, swap {} µs, loop {:.1} s)",
        repair.plan,
        repair.accuracy_before,
        repair.accuracy_after,
        repair.swapped,
        repair.version,
        repair.swap_micros,
        started.elapsed().as_secs_f64()
    );
    assert!(repair.swapped, "gate rejected the repair");
    assert!(
        repair.accuracy_after > repair.accuracy_before,
        "repair must improve held-out accuracy"
    );
    assert_eq!(repair.version, 2);
    server.shutdown();

    // Restart resumes the repaired chain.
    let reopened = ModelRegistry::open(&dir).expect("reopen registry");
    let id = reopened.find(MODEL).expect("model survives restart");
    assert_eq!(reopened.current(id).version, 2);
    assert_eq!(reopened.current(id).fingerprint, repair.fingerprint);
    let _ = std::fs::remove_dir_all(&dir);
    println!("repair smoke OK");
}
